"""CFG construction and reaching-definitions data-flow."""

from __future__ import annotations

import ast

import pytest

from repro.devtools.cfg import CFG
from repro.devtools.dataflow import (
    Definition,
    ReachingDefinitions,
    assigned_names,
    pruned_walk,
    shallow_expressions,
    statement_definitions,
)


def _cfg_of(source: str) -> CFG:
    tree = ast.parse(source)
    assert isinstance(tree.body[0], ast.FunctionDef)
    return CFG.from_function(tree.body[0])


def _rd_of(source: str, parameters: "list[str] | None" = None):
    return ReachingDefinitions(_cfg_of(source), parameters=parameters)


def _defs_at_return(rd: ReachingDefinitions, name: str) -> "list[int]":
    """Line numbers of the definitions of ``name`` reaching the return."""
    for block_id, stmt in rd.iter_statements():
        if isinstance(stmt, ast.Return):
            env = rd.reaching_at(block_id, stmt)
            return sorted(d.line for d in env.get(name, []))
    raise AssertionError("no return statement found")


# -- CFG shape ----------------------------------------------------------------------


def test_straight_line_is_one_block_between_entry_and_exit():
    cfg = _cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
    entry = cfg.blocks[cfg.entry_id]
    assert [type(s).__name__ for s in entry.statements] == [
        "Assign",
        "Assign",
        "Return",
    ]
    assert cfg.exit_id in entry.successors


def test_if_else_branches_rejoin():
    cfg = _cfg_of(
        "def f(c):\n"
        "    if c:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    return x\n"
    )
    entry = cfg.blocks[cfg.entry_id]
    # The test expression stays in the entry block; two branch successors.
    assert len(entry.successors) == 2
    # Both branches converge on the block holding the return.
    return_blocks = [
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, ast.Return) for s in b.statements)
    ]
    assert len(return_blocks) == 1
    assert len(return_blocks[0].predecessors) == 2


def test_loop_has_zero_trip_and_back_edges():
    cfg = _cfg_of(
        "def f(xs):\n"
        "    out = []\n"
        "    for x in xs:\n"
        "        out.append(x)\n"
        "    return out\n"
    )
    header = next(
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, ast.For) for s in b.statements)
    )
    # Header reaches both the after-loop block and the body.
    assert len(header.successors) == 2
    # Some body block loops back to the header.
    assert any(
        header.block_id in cfg.blocks[s].successors
        for s in header.successors
    )


def test_break_exits_loop_and_continue_returns_to_header():
    cfg = _cfg_of(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        if x:\n"
        "            break\n"
        "        continue\n"
        "    return 1\n"
    )
    header = next(
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, ast.For) for s in b.statements)
    )
    break_block = next(
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, ast.Break) for s in b.statements)
    )
    continue_block = next(
        b
        for b in cfg.blocks.values()
        if any(isinstance(s, ast.Continue) for s in b.statements)
    )
    after = [s for s in header.successors][0]  # zero-trip target
    assert after in break_block.successors
    assert header.block_id in continue_block.successors


def test_try_wires_handlers_from_body_entry():
    cfg = _cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        x = 1\n"
        "    return 2\n"
    )
    # Reverse postorder covers every block exactly once.
    order = cfg.reverse_postorder()
    assert sorted(order) == sorted(cfg.blocks)


def test_return_in_every_branch_leaves_no_fallthrough():
    cfg = _cfg_of(
        "def f(c):\n"
        "    if c:\n"
        "        return 1\n"
        "    else:\n"
        "        return 2\n"
    )
    exit_preds = cfg.blocks[cfg.exit_id].predecessors
    assert len(exit_preds) == 2


# -- walk helpers -------------------------------------------------------------------


def test_pruned_walk_actually_skips_nested_function_bodies():
    outer = ast.parse(
        "def outer():\n"
        "    def inner():\n"
        "        hidden = {1, 2}\n"
        "    visible = [1]\n"
    ).body[0]
    names: set[str] = set()
    for stmt in outer.body:
        names |= {
            n.id for n in pruned_walk(stmt) if isinstance(n, ast.Name)
        }
    assert "visible" in names
    assert "hidden" not in names


def test_shallow_expressions_excludes_compound_bodies():
    for_stmt = ast.parse("for x in xs:\n    body_call()\n").body[0]
    roots = shallow_expressions(for_stmt)
    rendered = [ast.unparse(r) for r in roots]
    assert "xs" in rendered
    assert all("body_call" not in text for text in rendered)


def test_statement_definitions_cover_binding_forms():
    bindings = {
        "a = 1": ["a"],
        "a, b = pair": ["a", "b"],
        "a: int = 1": ["a"],
        "a += 1": ["a"],
        "import os.path": ["os"],
        "from x import y as z": ["z"],
        "q = (w := 3)": ["q", "w"],
    }
    for source, expected in bindings.items():
        stmt = ast.parse(source).body[0]
        names = sorted(d.name for d in statement_definitions(stmt))
        assert names == sorted(expected), source


def test_assigned_names_recurses_compounds_not_nested_defs():
    body = ast.parse(
        "x = 1\n"
        "for i in r:\n"
        "    y = 2\n"
        "def g():\n"
        "    z = 3\n"
    ).body
    names = assigned_names(body)
    assert {"x", "i", "y", "g"} <= names
    assert "z" not in names


# -- reaching definitions -----------------------------------------------------------


def test_branches_merge_both_definitions():
    rd = _rd_of(
        "def f(c):\n"
        "    if c:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    return x\n"
    )
    assert _defs_at_return(rd, "x") == [3, 5]


def test_unconditional_rebind_kills_the_old_definition():
    rd = _rd_of(
        "def f(xs):\n"
        "    s = set(xs)\n"
        "    s = sorted(s)\n"
        "    return s\n"
    )
    assert _defs_at_return(rd, "s") == [3]


def test_partial_rebind_in_branch_keeps_both():
    rd = _rd_of(
        "def f(xs, c):\n"
        "    s = set(xs)\n"
        "    if c:\n"
        "        s = sorted(s)\n"
        "    return s\n"
    )
    assert _defs_at_return(rd, "s") == [2, 4]


def test_loop_body_definition_reaches_after_loop():
    rd = _rd_of(
        "def f(xs):\n"
        "    y = 0\n"
        "    for x in xs:\n"
        "        y = x\n"
        "    return y\n"
    )
    assert _defs_at_return(rd, "y") == [2, 4]


def test_parameters_reach_until_shadowed():
    rd = _rd_of(
        "def f(a, b):\n"
        "    a = 1\n"
        "    return a\n",
        parameters=["a", "b"],
    )
    for block_id, stmt in rd.iter_statements():
        if isinstance(stmt, ast.Return):
            env = rd.reaching_at(block_id, stmt)
            assert [d.line for d in env["a"]] == [2]
            assert [d.line for d in env["b"]] == [0]  # still the parameter
            break
    else:  # pragma: no cover
        pytest.fail("no return found")


def test_definition_records_value_expression():
    rd = _rd_of("def f(xs):\n    s = set(xs)\n    return s\n")
    (definition,) = rd.definitions_of("s")
    assert isinstance(definition, Definition)
    assert isinstance(definition.value, ast.Call)
    assert ast.unparse(definition.value) == "set(xs)"
