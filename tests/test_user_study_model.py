"""Tests for the user-study behavioural model internals."""

from __future__ import annotations

import pytest

from repro.core.interface import FacetedInterface
from repro.eval.user_study import (
    FACET_AFFINITY_BASE,
    FACET_AFFINITY_CAP,
    SessionLog,
    UserStudy,
    UserStudyResult,
)


class TestAffinity:
    def test_grows_with_repetition(self, builder, snyt, config):
        result = builder.build().run(snyt.documents)
        study = UserStudy(FacetedInterface.from_result(result), builder.world, config)
        values = [study._facet_affinity(r) for r in range(5)]
        assert values == sorted(values)
        assert values[0] == FACET_AFFINITY_BASE
        assert values[-1] <= FACET_AFFINITY_CAP


class TestMetrics:
    def test_per_user_search_reduction(self):
        result = UserStudyResult(
            sessions=[
                SessionLog(user=0, repetition=0, searches=4),
                SessionLog(user=0, repetition=1, searches=2),
                SessionLog(user=1, repetition=0, searches=3),
                SessionLog(user=1, repetition=1, searches=3),
            ]
        )
        reductions = result.per_user_search_reduction()
        assert reductions[0] == pytest.approx(0.5)
        assert reductions[1] == 0.0
        assert result.max_search_reduction == pytest.approx(0.5)

    def test_zero_search_user_handled(self):
        result = UserStudyResult(
            sessions=[
                SessionLog(user=0, repetition=0, searches=0),
                SessionLog(user=0, repetition=1, searches=0),
            ]
        )
        assert result.max_search_reduction == 0.0

    def test_empty_result(self):
        result = UserStudyResult()
        assert result.max_search_reduction == 0.0
        assert result.search_reduction == 0.0
        assert result.time_reduction == 0.0
        assert result.mean_satisfaction == 0.0


class TestTasks:
    @pytest.fixture(scope="class")
    def study(self, builder, snyt, config):
        result = builder.build().run(snyt.documents)
        return UserStudy(FacetedInterface.from_result(result), builder.world, config)

    def test_task_stable_across_repetitions(self, study):
        q1, on1, f1, v1 = study._pick_task(0)
        q2, on2, f2, v2 = study._pick_task(0)
        assert q1 == q2
        assert on1 == on2
        assert f1 == f2

    def test_tasks_vary_across_users(self, study):
        tasks = {study._pick_task(u)[0] for u in range(5)}
        assert len(tasks) >= 2

    def test_facet_terms_sorted_specific_first(self, study):
        for user in range(5):
            _, _, facet_terms, _ = study._pick_task(user)
            counts = [study._interface.node(t).count for t in facet_terms]
            assert counts == sorted(counts)

    def test_query_is_entity_anchored(self, study):
        query, on_topic, _, _ = study._pick_task(0)
        # Queries carry more than a bare topic word when prominent
        # entities exist in the user's area.
        assert len(query.split()) >= 2 or not on_topic


class TestMemory:
    def test_memory_learned_after_completion(self, builder, snyt, config):
        result = builder.build().run(snyt.documents)
        study = UserStudy(
            FacetedInterface.from_result(result), builder.world, config, users=1, repetitions=2
        )
        out = study.run()
        completed = [s for s in out.sessions if s.completed]
        if completed and completed[0].facet_clicks:
            assert study._memory  # the user remembered their path
