"""Smoke tests: every example script must run to completion."""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "facet terms" in out
        assert "Top facets" in out

    def test_news_browsing(self, capsys):
        out = run_example("news_browsing", capsys)
        assert "Facet sidebar" in out
        assert "Dice" in out

    def test_financial_facets(self, capsys):
        out = run_example("financial_facets", capsys)
        assert "Domain facet terms" in out
        assert "corporate transactions" in out

    def test_offline_snapshot(self, capsys):
        out = run_example("offline_snapshot", capsys)
        assert "reloaded" in out
        assert "important terms" in out
        assert "dynamic facets" in out

    def test_incremental_archive(self, capsys):
        out = run_example("incremental_archive", capsys)
        assert "day 3" in out
        assert "top facets" in out

    def test_reproduce_paper_listing(self, capsys):
        module = importlib.import_module("reproduce_paper")
        assert module.main(["prog"]) == 0
        assert "EXP-T1" in capsys.readouterr().out

    def test_reproduce_paper_unknown(self, capsys):
        module = importlib.import_module("reproduce_paper")
        assert module.main(["prog", "EXP-NOPE"]) == 1
