"""Tests for Sanderson-Croft subsumption and facet hierarchy building."""

from __future__ import annotations

import pytest

from repro.core.subsumption import (
    build_subsumption_hierarchy,
)
from repro.errors import HierarchyError


def docs(*ids):
    return set(ids)


class TestSubsumption:
    def test_classic_subsumption(self):
        # "animal" appears in every doc that mentions "dog"; the reverse
        # does not hold -> animal subsumes dog.
        doc_sets = {
            "animal": docs(1, 2, 3, 4),
            "dog": docs(1, 2),
        }
        hierarchy = build_subsumption_hierarchy(["animal", "dog"], doc_sets)
        assert hierarchy.parent("dog") == "animal"
        assert hierarchy.parent("animal") is None

    def test_threshold_respected(self):
        doc_sets = {
            "animal": docs(1, 2, 3, 4),
            "dog": docs(1, 2, 5),  # P(animal|dog) = 2/3 < 0.8
        }
        hierarchy = build_subsumption_hierarchy(["animal", "dog"], doc_sets)
        assert hierarchy.parent("dog") is None

    def test_identical_sets_do_not_subsume(self):
        doc_sets = {"a": docs(1, 2), "b": docs(1, 2)}
        hierarchy = build_subsumption_hierarchy(["a", "b"], doc_sets)
        # P(y|x) < 1 fails in both directions.
        assert hierarchy.parent("a") is None
        assert hierarchy.parent("b") is None

    def test_most_specific_parent_chosen(self):
        doc_sets = {
            "animal": docs(1, 2, 3, 4, 5, 6),
            "canine": docs(1, 2, 3),
            "dog": docs(1, 2),
        }
        hierarchy = build_subsumption_hierarchy(
            ["animal", "canine", "dog"], doc_sets
        )
        assert hierarchy.parent("dog") == "canine"
        assert hierarchy.parent("canine") == "animal"

    def test_no_cycles(self):
        doc_sets = {
            "a": docs(1, 2, 3),
            "b": docs(1, 2, 3, 4),
            "c": docs(1, 2, 3, 4, 5),
        }
        hierarchy = build_subsumption_hierarchy(["a", "b", "c"], doc_sets)
        for term in hierarchy.terms():
            seen = set()
            current = term
            while current is not None:
                assert current not in seen
                seen.add(current)
                current = hierarchy.parents.get(current)

    def test_empty_doc_sets_dropped(self):
        hierarchy = build_subsumption_hierarchy(
            ["a", "b"], {"a": docs(1), "b": set()}
        )
        assert hierarchy.terms() == ["a"]

    def test_max_df_ratio_blocks_huge_parents(self):
        doc_sets = {
            "universal": set(range(100)),
            "rare": docs(1, 2),
        }
        free = build_subsumption_hierarchy(["universal", "rare"], doc_sets)
        assert free.parent("rare") == "universal"
        capped = build_subsumption_hierarchy(
            ["universal", "rare"], doc_sets, max_df_ratio=10
        )
        assert capped.parent("rare") is None

    def test_max_parent_df(self):
        doc_sets = {
            "universal": set(range(100)),
            "mid": set(range(40)),
        }
        hierarchy = build_subsumption_hierarchy(
            ["universal", "mid"], doc_sets, max_parent_df=50
        )
        assert hierarchy.parent("mid") is None

    def test_edge_validator(self):
        doc_sets = {"animal": docs(1, 2, 3, 4), "dog": docs(1, 2)}
        hierarchy = build_subsumption_hierarchy(
            ["animal", "dog"], doc_sets, edge_validator=lambda child, parent: False
        )
        assert hierarchy.parent("dog") is None

    def test_invalid_threshold(self):
        with pytest.raises(HierarchyError):
            build_subsumption_hierarchy([], {}, threshold=0)

    def test_invalid_ratio(self):
        with pytest.raises(HierarchyError):
            build_subsumption_hierarchy([], {}, max_df_ratio=0.5)


class TestHierarchyNavigation:
    @pytest.fixture()
    def hierarchy(self):
        doc_sets = {
            "animal": set(range(20)),
            "canine": set(range(8)),
            "dog": set(range(4)),
            "plant": set(range(20, 30)),
        }
        return build_subsumption_hierarchy(
            ["animal", "canine", "dog", "plant"], doc_sets
        )

    def test_roots(self, hierarchy):
        assert set(hierarchy.roots) == {"animal", "plant"}

    def test_depth(self, hierarchy):
        assert hierarchy.depth("animal") == 0
        assert hierarchy.depth("dog") == 2

    def test_subtree(self, hierarchy):
        assert hierarchy.subtree("animal") == ["animal", "canine", "dog"]

    def test_children(self, hierarchy):
        assert hierarchy.children_of("canine") == ["dog"]

    def test_unknown_term(self, hierarchy):
        with pytest.raises(HierarchyError):
            hierarchy.parent("fungus")
