"""Crash/resume certification for the streaming supervisor.

Faults are injected at the three checkpoint stages ("pre-checkpoint",
"mid-write", "post-write"); after each simulated kill a fresh
:class:`StreamSupervisor` over the same run directory must recover and
land on output byte-identical to a from-scratch run of the full corpus.
The atomic-write contract (temp file + ``os.replace``; the target is
never half-written) and the recovery policy (scan beats manifest,
damaged snapshots are skipped, orphan temp files are removed) are each
pinned individually.
"""

from __future__ import annotations

import filecmp

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ParallelConfig, ReproConfig
from repro.corpus import build_snyt
from repro.core.export import to_dict
from repro.errors import StorageError
from repro.incremental import (
    CheckpointError,
    CheckpointStore,
    CrashInjected,
    FaultInjector,
    StreamSupervisor,
    atomic_write_text,
    canonical_json,
    make_batch_files,
    read_batch_file,
    split_into_batches,
)
from repro.incremental.checkpoint import MANIFEST_NAME

SCALE = 0.05
BATCHES = 5


@pytest.fixture(scope="module")
def inc_config() -> ReproConfig:
    return ReproConfig(scale=SCALE)


@pytest.fixture(scope="module")
def docs(inc_config: ReproConfig):
    return build_snyt(inc_config).documents


def build_pipeline(inc_config: ReproConfig):
    """A fresh pipeline per extractor — backgrounds bind on first use."""
    builder = FacetPipelineBuilder(inc_config)
    builder.with_parallel(ParallelConfig(workers=1))
    return builder.build()


def result_bytes(result) -> bytes:
    payload = {
        "facet_terms": [
            [c.term, c.df_original, c.df_contextualized, c.score.hex()]
            for c in result.facet_terms
        ],
        "hierarchies": to_dict(result.hierarchies, include_docs=True),
    }
    return canonical_json(payload).encode("utf-8")


@pytest.fixture(scope="module")
def baseline_bytes(inc_config: ReproConfig, docs) -> bytes:
    return result_bytes(build_pipeline(inc_config).run(docs))


@pytest.fixture()
def input_dir(tmp_path, docs):
    directory = tmp_path / "input"
    make_batch_files(directory, docs, BATCHES)
    return directory


class TestCrashAndResume:
    @pytest.mark.parametrize("stage", FaultInjector.STAGES)
    def test_resume_after_injected_crash_is_byte_identical(
        self, inc_config, docs, baseline_bytes, input_dir, tmp_path, stage
    ):
        run_dir = tmp_path / "run"
        injector = FaultInjector(stage, occurrence=3)
        crashed = StreamSupervisor(
            build_pipeline(inc_config), run_dir, fault_hook=injector
        )
        with pytest.raises(CrashInjected):
            crashed.run(input_dir)
        assert injector.fired
        # The kill must leave no torn file and no stray temp file.
        assert not list(run_dir.glob("*.tmp"))

        resumed = StreamSupervisor(build_pipeline(inc_config), run_dir)
        # post-write crashes after the snapshot landed, so batch 3 is
        # already durable; the earlier stages lose it and replay it.
        surviving = 3 if stage == "post-write" else 2
        assert len(resumed.extractor.batches_done) == surviving
        report = resumed.run(input_dir)
        assert report.resumed_at is not None
        assert sorted(report.skipped) == [
            f"batch-{i:06d}.jsonl" for i in range(surviving)
        ]
        assert len(report.ingested) == BATCHES - surviving
        assert result_bytes(resumed.extractor.snapshot_result()) == (
            baseline_bytes
        )
        assert "resumed with" in report.format_summary()

    def test_post_write_crash_outruns_the_manifest(
        self, inc_config, input_dir, tmp_path
    ):
        """The scan must trust directory contents over MANIFEST.json."""
        import json

        run_dir = tmp_path / "run"
        supervisor = StreamSupervisor(
            build_pipeline(inc_config),
            run_dir,
            fault_hook=FaultInjector("post-write", occurrence=3),
        )
        with pytest.raises(CrashInjected):
            supervisor.run(input_dir)
        manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
        assert manifest["sequence"] == 2  # stale: snapshot 3 exists
        latest = supervisor.store.load_latest()
        assert latest is not None and latest[0] == 3

    def test_fresh_run_dir_is_a_cold_start(
        self, inc_config, baseline_bytes, input_dir, tmp_path
    ):
        supervisor = StreamSupervisor(
            build_pipeline(inc_config), tmp_path / "run"
        )
        report = supervisor.run(input_dir)
        assert report.resumed_at is None
        assert len(report.ingested) == BATCHES
        assert not report.skipped
        assert result_bytes(supervisor.extractor.snapshot_result()) == (
            baseline_bytes
        )
        assert "cold start" in report.format_summary()


class TestAtomicWrite:
    def test_failed_replace_leaves_target_untouched(self, tmp_path, monkeypatch):
        import repro.incremental.checkpoint as checkpoint_module

        target = tmp_path / "file.json"
        atomic_write_text(target, "original\n")
        real_replace = checkpoint_module.os.replace

        def failing_replace(src, dst, *args, **kwargs):
            if str(dst) == str(target):
                raise OSError("injected replace failure")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(checkpoint_module.os, "replace", failing_replace)
        with pytest.raises(OSError, match="injected replace failure"):
            atomic_write_text(target, "new contents\n")
        assert target.read_text() == "original\n"
        assert not list(tmp_path.glob("*.tmp"))

    def test_orphan_tmp_files_removed_on_store_open(self, tmp_path):
        orphan = tmp_path / "checkpoint-000007.json.tmp"
        orphan.write_text("half-written")
        manifest_orphan = tmp_path / (MANIFEST_NAME + ".tmp")
        manifest_orphan.write_text("{")
        CheckpointStore(tmp_path)
        assert not orphan.exists()
        assert not manifest_orphan.exists()

    def test_same_state_saves_identical_bytes(self, tmp_path):
        state = {"b": [3, 1], "a": {"nested": True}, "n": None}
        first = CheckpointStore(tmp_path / "one").save(state, sequence=4)
        second = CheckpointStore(tmp_path / "two").save(state, sequence=4)
        assert filecmp.cmp(first, second, shallow=False)


class TestRecoveryPolicy:
    def _store_with_snapshots(self, tmp_path) -> CheckpointStore:
        store = CheckpointStore(tmp_path / "run")
        store.save({"documents": 10}, sequence=1)
        store.save({"documents": 20}, sequence=2)
        return store

    def test_damaged_newest_snapshot_falls_back(self, tmp_path):
        store = self._store_with_snapshots(tmp_path)
        store.snapshot_path(2).write_text("{ not json")
        latest = store.load_latest()
        assert latest == (1, {"documents": 10})

    def test_checksum_mismatch_is_damage(self, tmp_path):
        import json

        store = self._store_with_snapshots(tmp_path)
        path = store.snapshot_path(2)
        payload = json.loads(path.read_text())
        payload["state"]["documents"] = 999  # bit-flip the state
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            store.load(2)
        assert store.load_latest() == (1, {"documents": 10})

    def test_every_snapshot_damaged_means_cold_start(self, tmp_path):
        store = self._store_with_snapshots(tmp_path)
        store.snapshot_path(1).write_text("")
        store.snapshot_path(2).write_text("")
        assert store.load_latest() is None

    def test_prune_respects_keep_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", keep_snapshots=2)
        for sequence in range(1, 6):
            store.save({"documents": sequence}, sequence=sequence)
        assert store.sequences() == [4, 5]


class TestFaultInjector:
    def test_rejects_unknown_stage_and_bad_occurrence(self):
        with pytest.raises(ValueError, match="unknown fault stage"):
            FaultInjector("between-writes")
        with pytest.raises(ValueError, match="occurrence must be >= 1"):
            FaultInjector("mid-write", occurrence=0)

    def test_fires_on_nth_occurrence_then_disarms(self):
        injector = FaultInjector("mid-write", occurrence=2)
        injector("mid-write")  # first: armed, no fire
        injector("post-write")  # other stages never count
        with pytest.raises(CrashInjected):
            injector("mid-write")
        assert injector.fired
        injector("mid-write")  # disarmed: a resumed run completes


class TestBatchFiles:
    def test_round_trip_and_split_shapes(self, tmp_path, docs):
        paths = make_batch_files(tmp_path, docs, BATCHES)
        assert [p.name for p in paths] == [
            f"batch-{i:06d}.jsonl" for i in range(BATCHES)
        ]
        recovered = [doc for path in paths for doc in read_batch_file(path)]
        assert [d.doc_id for d in recovered] == [d.doc_id for d in docs]
        sizes = [len(part) for part in split_into_batches(docs, BATCHES)]
        assert sum(sizes) == len(docs)
        assert max(sizes) - min(sizes) <= 1

    def test_bad_batch_lines_raise_storage_error(self, tmp_path):
        bad = tmp_path / "batch-000000.jsonl"
        bad.write_text('{"doc_id": "x"}\nnot json\n')
        with pytest.raises(StorageError, match="bad document"):
            read_batch_file(bad)
        with pytest.raises(StorageError, match="unreadable batch file"):
            read_batch_file(tmp_path / "missing.jsonl")

    def test_split_rejects_nonpositive_batch_count(self, docs):
        with pytest.raises(ValueError, match="batches must be >= 1"):
            split_into_batches(docs, 0)
