"""Tests for the distributional-analysis module."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.distributional import (
    collection_distribution,
    divergence_scores,
    kl_divergence,
    skew_divergence,
)
from repro.text.vocabulary import Vocabulary


def vocab(*docs):
    vocabulary = Vocabulary()
    for doc in docs:
        vocabulary.add_document(list(doc))
    return vocabulary


class TestDistribution:
    def test_sums_to_one(self):
        dist = collection_distribution(vocab(["a", "b"], ["a"]))
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["a"] == pytest.approx(2 / 3)

    def test_empty(self):
        assert collection_distribution(Vocabulary()) == {}


class TestKL:
    def test_zero_for_identical(self):
        p = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_positive_for_different(self):
        assert kl_divergence({"a": 1.0}, {"a": 0.5, "b": 0.5}) > 0

    def test_asymmetric(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.1, "b": 0.9}
        assert kl_divergence(p, q) != kl_divergence(q, p) or True
        # KL here happens to be symmetric for swapped distributions;
        # check a genuinely asymmetric pair:
        p2 = {"a": 1.0}
        q2 = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p2, q2) != kl_divergence(q2, p2)

    def test_handles_missing_mass(self):
        assert math.isfinite(kl_divergence({"a": 1.0}, {"b": 1.0}))


class TestSkewDivergence:
    def test_zero_for_identical(self):
        p = {"a": 0.5, "b": 0.5}
        assert skew_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_asymmetry_fruit_apple(self):
        # "fruit" (general) spreads over more contexts than "apple".
        apple = {"pie": 0.6, "tree": 0.4}
        fruit = {"pie": 0.3, "tree": 0.3, "salad": 0.2, "juice": 0.2}
        # fruit approximates apple better than apple approximates fruit.
        assert skew_divergence(apple, fruit) < skew_divergence(fruit, apple)

    def test_always_finite(self):
        assert math.isfinite(skew_divergence({"a": 1.0}, {"b": 1.0}))

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            skew_divergence({"a": 1.0}, {"a": 1.0}, alpha=0)

    @given(
        st.dictionaries(
            st.sampled_from("abcde"), st.floats(0.01, 1.0), min_size=1, max_size=5
        )
    )
    def test_nonnegative(self, raw):
        total = sum(raw.values())
        p = {k: v / total for k, v in raw.items()}
        assert skew_divergence(p, p) >= -1e-9


class TestDivergenceScores:
    def test_expanded_terms_score_positive(self):
        original = vocab(["a", "b"], ["a"])
        contextualized = vocab(["a", "b", "new"], ["a", "new"])
        scores = divergence_scores(original, contextualized)
        assert scores.get("new", 0) > 0

    def test_shrinking_terms_excluded(self):
        original = vocab(["a", "a2"], ["a", "a3"], ["a", "a4"])
        contextualized = vocab(["a", "a2", "x"], ["a3", "x"], ["a4", "x"])
        scores = divergence_scores(original, contextualized)
        assert "a" not in scores  # its relative mass fell
