"""Integration tests: the full pipeline end-to-end on a small corpus."""

from __future__ import annotations

import pytest

from repro.core.pipeline import FacetExtractor
from repro.eval.metrics import term_set_recall
from repro.core.interface import FacetedInterface


class TestFullPipeline:
    def test_all_stages_populated(self, pipeline_result):
        result = pipeline_result
        assert result.facet_terms
        assert result.hierarchies
        assert result.annotated.vocabulary.document_count == len(result.documents)
        assert result.timings.total > 0

    def test_facet_terms_include_taxonomy_concepts(self, world, pipeline_result):
        taxonomy = world.taxonomy
        extracted = [c.term for c in pipeline_result.facet_terms[:60]]
        facet_like = [t for t in extracted if t in taxonomy]
        assert len(facet_like) >= 10

    def test_expansion_surfaces_missing_terms(self, pipeline_result):
        """The paper's core claim: facet terms absent from documents
        emerge after expansion (positive frequency shift from ~0)."""
        emerged = [
            c for c in pipeline_result.facet_terms if c.df_original == 0
        ]
        assert emerged

    def test_every_candidate_has_positive_shifts(self, pipeline_result):
        for candidate in pipeline_result.facet_terms:
            assert candidate.shift_f > 0
            assert candidate.shift_r > 0

    def test_recall_against_gold(self, builder, snyt, config, pipeline_result):
        from repro.eval.goldset import build_gold_set

        gold = build_gold_set(snyt, config, builder.world)
        recall = term_set_recall(
            gold.terms, [c.term for c in pipeline_result.facet_terms]
        )
        assert recall > 0.25

    def test_interface_built_from_result(self, pipeline_result):
        interface = FacetedInterface.from_result(pipeline_result)
        assert interface.facet_names()
        top = interface.top_level_counts()
        assert top[0].count > 0

    def test_deterministic_across_runs(self, builder, snyt):
        result_a = builder.build().run(snyt.documents[:30])
        result_b = builder.build().run(snyt.documents[:30])
        assert [c.term for c in result_a.facet_terms] == [
            c.term for c in result_b.facet_terms
        ]

    def test_pipeline_validates_inputs(self):
        with pytest.raises(ValueError):
            FacetExtractor(extractors=[], resources=[object()])
        with pytest.raises(ValueError):
            FacetExtractor(extractors=[object()], resources=[])

    def test_without_hierarchies(self, builder, snyt):
        pipeline = builder.without_hierarchies().build()
        result = pipeline.run(snyt.documents[:20])
        assert result.hierarchies == []
        assert result.facet_terms is not None
        # Restore builder state for other tests.
        builder._build_hierarchies = True


class TestBuilderConfiguration:
    def test_extractor_subset(self, builder, snyt):
        pipeline = builder.with_extractors(["NE"]).build()
        result = pipeline.run(snyt.documents[:20])
        assert result is not None
        builder.with_extractors(["NE", "Yahoo", "Wikipedia"])

    def test_resource_subset(self, builder, snyt):
        pipeline = builder.with_resources(["Wikipedia Graph"]).build()
        result = pipeline.run(snyt.documents[:20])
        assert result is not None
        builder.with_resources(
            ["Google", "WordNet Hypernyms", "Wikipedia Synonyms", "Wikipedia Graph"]
        )

    def test_statistic_option(self, builder, snyt):
        pipeline = builder.with_statistic("chi-square").build()
        assert pipeline.run(snyt.documents[:20]).facet_terms is not None
        builder.with_statistic("log-likelihood")
