"""Seed-stability: the paper's qualitative shapes must not depend on one
lucky seed.  Runs key comparisons under a second seed at small scale."""

from __future__ import annotations

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ReproConfig
from repro.corpus import build_snyt
from repro.eval.goldset import build_gold_set
from repro.eval.recall import RecallStudy


@pytest.fixture(scope="module", params=[20080407, 424242])
def seeded(request):
    config = ReproConfig(seed=request.param, scale=0.1)
    builder = FacetPipelineBuilder(config)
    corpus = build_snyt(config)
    return config, builder, corpus


class TestSeedStability:
    def test_gold_set_reasonable(self, seeded):
        config, builder, corpus = seeded
        gold = build_gold_set(corpus, config, builder.world)
        assert len(gold) > 30

    def test_key_recall_orderings(self, seeded):
        config, builder, corpus = seeded
        study = RecallStudy(config, builder=builder)
        gold = build_gold_set(corpus, config, builder.world)

        def cell(extractor, resource):
            terms = study.extracted_terms(corpus, extractor, resource, gold)
            return study.recall(gold.terms, terms)

        graph_all = cell("All", "Wikipedia Graph")
        wordnet_ne = cell("NE", "WordNet Hypernyms")
        wordnet_yahoo = cell("Yahoo", "WordNet Hypernyms")
        synonyms_all = cell("All", "Wikipedia Synonyms")

        # The paper's load-bearing comparisons, at any seed:
        assert graph_all > synonyms_all
        assert graph_all > wordnet_yahoo
        assert wordnet_ne < wordnet_yahoo

    def test_facet_absence_phenomenon(self, seeded):
        config, builder, corpus = seeded
        from repro.text.tokenizer import normalize_term

        present = absent = 0
        for doc in list(corpus)[:80]:
            text = normalize_term(doc.text)
            for term in doc.gold.facet_terms:
                if normalize_term(term) in text:
                    present += 1
                else:
                    absent += 1
        assert absent / (present + absent) > 0.5
