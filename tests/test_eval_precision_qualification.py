"""Tests for the precision oracle and the qualification test."""

from __future__ import annotations

import pytest

from repro.config import ReproConfig
from repro.eval.precision import GroundTruthOracle
from repro.eval.qualification import (
    Judge,
    QualificationTest,
    recruit_judges,
)


@pytest.fixture(scope="module")
def oracle(world, wikipedia):
    return GroundTruthOracle(world, wikipedia=wikipedia)


class TestUsefulness:
    def test_taxonomy_terms_useful(self, oracle):
        assert oracle.useful("Political Leaders")
        assert oracle.useful("political leaders")

    def test_prominent_entities_useful(self, oracle):
        assert oracle.useful("Jacques Chirac")
        assert oracle.useful("United Nations")

    def test_variants_resolve_to_entities(self, oracle):
        assert oracle.useful("Hillary Clinton")

    def test_related_concepts_useful(self, oracle):
        assert oracle.useful("President of France")

    def test_common_concept_nouns_useful(self, oracle):
        assert oracle.useful("campaign")
        assert oracle.useful("president")

    def test_boilerplate_not_useful(self, oracle):
        assert not oracle.useful("coupon")
        assert not oracle.useful("checkout")

    def test_name_fragments_not_useful(self, oracle):
        assert not oracle.useful("jacques")
        assert not oracle.useful("rodham")

    def test_minor_entities_not_useful(self, world, oracle):
        minor = next(e for e in world.entities if e.prominence < 0.3)
        assert not oracle.useful(minor.name)


class TestPlacement:
    def test_root_always_placed(self, oracle):
        assert oracle.placed("anything at all", None)

    def test_taxonomy_ancestor(self, oracle):
        assert oracle.placed("Political Leaders", "People")
        assert oracle.placed("Political Leaders", "Leaders")

    def test_taxonomy_wrong_parent(self, oracle):
        assert not oracle.placed("Political Leaders", "Markets")

    def test_entity_under_its_facet(self, oracle):
        assert oracle.placed("Jacques Chirac", "Political Leaders")
        assert oracle.placed("Jacques Chirac", "France")

    def test_entity_under_wrong_facet(self, oracle):
        assert not oracle.placed("Jacques Chirac", "Sports")

    def test_entity_under_entity(self, oracle):
        assert oracle.placed("Paris", "France")
        assert not oracle.placed("Paris", "Japan")

    def test_related_term_under_owner(self, world, oracle):
        owner = world.entity("Jacques Chirac")
        assert oracle.placed("President of France", owner.name)
        assert oracle.placed("President of France", "Political Leaders")

    def test_related_term_under_stranger(self, oracle):
        assert not oracle.placed("President of France", "Steve Jobs")

    def test_lexicon_word_under_hypernym(self, oracle):
        assert oracle.placed("president", "Leaders")
        assert not oracle.placed("president", "Sports")

    def test_precise_requires_both(self, oracle):
        assert oracle.precise("Political Leaders", None)
        assert not oracle.precise("coupon", None)
        assert not oracle.precise("Political Leaders", "Markets")


class TestQualification:
    def test_items_generated(self, world, config):
        test = QualificationTest(world, config)
        assert len(test.items) == 20

    def test_half_items_correct(self, world, config):
        test = QualificationTest(world, config)
        labels = [item.is_correct for item in test.items]
        assert labels.count(True) == 10

    def test_correct_items_agree_with_taxonomy(self, world, config):
        test = QualificationTest(world, config)
        for item in test.items:
            if item.is_correct:
                assert test.item_truth(item)

    def test_perturbed_items_differ_from_taxonomy(self, world, config):
        test = QualificationTest(world, config)
        wrong = [item for item in test.items if not item.is_correct]
        assert sum(not test.item_truth(item) for item in wrong) >= len(wrong) - 1

    def test_careful_judge_passes(self, world, config):
        test = QualificationTest(world, config)
        assert test.administer(Judge(judge_id=999, accuracy=0.999))

    def test_sloppy_judge_fails(self, world, config):
        test = QualificationTest(world, config)
        assert not test.administer(Judge(judge_id=998, accuracy=0.5))

    def test_recruitment_selects_accurate_judges(self, world, config):
        test = QualificationTest(world, config)
        judges = recruit_judges(test, config, needed=5)
        assert len(judges) == 5
        # The test filters toward careful workers (an occasional lucky
        # pass is realistic): the qualified mean beats the applicant
        # pool mean of ~0.845 (uniform on [0.7, 0.99]).
        mean_accuracy = sum(j.accuracy for j in judges) / len(judges)
        assert mean_accuracy > 0.845
        assert all(j.accuracy >= 0.7 for j in judges)

    def test_recruitment_exhaustion(self, world):
        config = ReproConfig(seed=1234)
        test = QualificationTest(world, config)
        with pytest.raises(RuntimeError):
            recruit_judges(test, config, needed=5, max_applicants=1)
