"""Tests for the one-shot ``repro.run`` API and result/interface reuse."""

from __future__ import annotations

import pytest

import repro
from repro.config import ParallelConfig, ReproConfig
from repro.corpus import build_snyt
from repro.corpus.document import Document
from repro.db.store import DocumentStore


@pytest.fixture(scope="module")
def small_config() -> ReproConfig:
    return ReproConfig(scale=0.05)


@pytest.fixture(scope="module")
def small_corpus(small_config):
    return build_snyt(small_config)


class TestRunInputs:
    def test_corpus_input_carries_store(self, small_config, small_corpus):
        result = repro.run(small_corpus, config=small_config)
        assert result.facet_terms
        assert result.store is not None
        assert len(result.store) == len(small_corpus)

    def test_document_list_input(self, small_config, small_corpus):
        result = repro.run(list(small_corpus.documents), config=small_config)
        assert result.facet_terms
        assert result.store is None

    def test_string_list_input(self):
        texts = [
            "The senator visited Paris and met the president of France.",
            "A new museum opened in Berlin near the river.",
            "The election results surprised analysts in Washington.",
        ]
        result = repro.run(texts, scale=0.05, build_hierarchies=False)
        assert [d.doc_id for d in result.documents] == [
            "doc-000000",
            "doc-000001",
            "doc-000002",
        ]
        assert all(isinstance(d, Document) for d in result.documents)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one document"):
            repro.run([])

    def test_mixed_input_rejected(self, small_corpus):
        with pytest.raises(TypeError, match="mixed/unsupported"):
            repro.run([small_corpus.documents[0], "raw text"])


class TestRunConfigRouting:
    def test_flat_kwargs_build_config(self, small_corpus):
        documents = list(small_corpus.documents)
        result = repro.run(
            documents, scale=0.05, seed=7, workers=2, build_hierarchies=False
        )
        assert result.facet_terms

    def test_flat_kwargs_match_explicit_config(self, small_corpus):
        documents = list(small_corpus.documents)
        explicit = repro.run(
            documents,
            config=ReproConfig(scale=0.05, parallel=ParallelConfig(workers=2)),
            build_hierarchies=False,
        )
        flat = repro.run(
            documents, scale=0.05, workers=2, build_hierarchies=False
        )
        assert flat.facet_term_strings() == explicit.facet_term_strings()

    def test_unknown_kwarg_rejected(self, small_corpus):
        with pytest.raises(TypeError, match="nope"):
            repro.run(small_corpus, nope=1)

    def test_config_and_kwargs_conflict(self, small_config, small_corpus):
        with pytest.raises(TypeError, match="not both"):
            repro.run(small_corpus, config=small_config, scale=0.2)

    def test_parallel_and_flat_conflict(self, small_corpus):
        with pytest.raises(TypeError, match="not both"):
            repro.run(
                small_corpus,
                parallel=ParallelConfig(workers=2),
                workers=2,
            )

    def test_builder_knobs(self, small_config, small_corpus):
        result = repro.run(
            small_corpus,
            config=small_config,
            extractors=["NE"],
            resources=["WordNet Hypernyms"],
            top_k=10,
            build_hierarchies=False,
        )
        assert len(result.facet_terms) <= 10
        assert result.hierarchies == []

    def test_observability_kwarg(self, small_config, small_corpus):
        obs = repro.Observability.enabled()
        result = repro.run(
            small_corpus, config=small_config, observability=obs
        )
        assert result.facet_terms
        assert [s.name for s in obs.tracer.roots] == ["pipeline"]
        assert obs.metrics.counter_value("annotate.documents") == len(
            small_corpus
        )


class TestInterfaceReuse:
    def test_interface_reuses_run_store(self, small_config, small_corpus):
        result = repro.run(small_corpus, config=small_config)
        interface = repro.FacetedInterface.from_result(result)
        assert interface._store is result.store

    def test_interface_caches_built_store(self, small_config, small_corpus):
        result = repro.run(
            list(small_corpus.documents), config=small_config
        )
        first = repro.FacetedInterface.from_result(result)
        second = repro.FacetedInterface.from_result(result)
        assert first._store is second._store
        assert first._store is not None

    def test_interface_explicit_store_wins(self, small_config, small_corpus):
        result = repro.run(small_corpus, config=small_config)
        mine = DocumentStore(list(small_corpus.documents))
        interface = repro.FacetedInterface.from_result(result, store=mine)
        assert interface._store is mine

    def test_interface_index_cached_across_calls(
        self, small_config, small_corpus
    ):
        result = repro.run(small_corpus, config=small_config)
        repro.FacetedInterface.from_result(result)
        index = result._built_index
        assert index is not None
        repro.FacetedInterface.from_result(result)
        assert result._built_index is index

    def test_interface_method_is_deprecated_shim(
        self, small_config, small_corpus
    ):
        result = repro.run(small_corpus, config=small_config)
        with pytest.warns(DeprecationWarning, match="from_result"):
            interface = result.interface()
        assert interface._store is result.store
        assert result._built_index is not None


class TestPublicSurface:
    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.3.0"
