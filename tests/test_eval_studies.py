"""Tests for the recall/precision/user/efficiency studies (small scale).

These exercise the study *machinery*; the benchmark suite checks the
paper-shape assertions at full scale.
"""

from __future__ import annotations

import pytest

from repro.eval.efficiency import EfficiencyStudy
from repro.eval.precision import JudgedTerm, PrecisionStudy
from repro.eval.recall import RecallStudy
from repro.eval.user_study import SessionLog, UserStudy, UserStudyResult
from repro.core.interface import FacetedInterface


class TestRecallStudy:
    @pytest.fixture(scope="class")
    def study(self, config, builder):
        return RecallStudy(config, builder=builder)

    def test_concept_key_unifies_variants(self, study):
        assert study.concept_key("Hillary Clinton") == study.concept_key(
            "Hillary Rodham Clinton"
        )

    def test_concept_key_for_unknown_term(self, study):
        assert study.concept_key("mystery phrase") == "mysteri phrase"

    def test_recall_metric(self, study):
        assert study.recall(["France"], ["france"]) == 1.0
        assert study.recall(["France", "Japan"], ["france"]) == 0.5
        assert study.recall([], ["x"]) == 0.0

    def test_single_cell_extraction(self, study, snyt):
        terms = study.extracted_terms(snyt, "Wikipedia", "Wikipedia Graph")
        assert len(terms) > 20

    def test_full_grid_runs_small(self, config, builder, snyt):
        matrix = RecallStudy(config, builder=builder).run(snyt)
        assert len(matrix.values) == 20
        assert all(0 <= v <= 1 for v in matrix.values.values())


class TestPrecisionStudy:
    @pytest.fixture(scope="class")
    def study(self, config, builder):
        return PrecisionStudy(config, builder=builder)

    def test_judges_qualified(self, study):
        assert len(study.judges) == 5

    def test_precision_of(self):
        judged = [
            JudgedTerm("a", None, votes=5, precise=True),
            JudgedTerm("b", None, votes=1, precise=False),
        ]
        assert PrecisionStudy.precision_of(judged) == 0.5
        assert PrecisionStudy.precision_of([]) == 0.0

    def test_judging_is_deterministic(self, study, pipeline_result):
        first = study.judge_hierarchies(pipeline_result.hierarchies[:3], cell="t")
        second = study.judge_hierarchies(pipeline_result.hierarchies[:3], cell="t")
        assert [(j.term, j.votes) for j in first] == [
            (j.term, j.votes) for j in second
        ]

    def test_votes_in_range(self, study, pipeline_result):
        for judged in study.judge_hierarchies(
            pipeline_result.hierarchies[:3], cell="r"
        ):
            assert 0 <= judged.votes <= 5


class TestUserStudy:
    def test_session_log_duration(self):
        log = SessionLog(user=0, repetition=0, searches=2, facet_clicks=3, scanned=10)
        assert log.duration_s == 2 * 18.0 + 3 * 6.0 + 10 * 1.5

    def test_result_aggregation(self):
        result = UserStudyResult(
            sessions=[
                SessionLog(user=0, repetition=0, searches=4),
                SessionLog(user=1, repetition=0, searches=2),
                SessionLog(user=0, repetition=1, searches=1),
                SessionLog(user=1, repetition=1, searches=1),
            ],
            satisfaction=[2.5, 2.5, 2.5, 2.5],
        )
        assert result.searches_per_repetition == [3.0, 1.0]
        assert result.search_reduction == pytest.approx(2 / 3)
        assert result.mean_satisfaction == 2.5

    def test_runs_on_real_interface(self, builder, snyt, config):
        result = builder.build().run(snyt.documents)
        interface = FacetedInterface.from_result(result)
        study = UserStudy(interface, builder.world, config, users=2, repetitions=2)
        out = study.run()
        assert len(out.sessions) == 4
        assert all(s.searches + s.facet_clicks > 0 for s in out.sessions)
        assert all(0 <= s <= 3 for s in out.satisfaction)


class TestEfficiencyStudy:
    def test_report_fields(self, config, builder, snyt):
        study = EfficiencyStudy(config, builder)
        report = study.run(snyt.documents[:30])
        assert report.documents == 30
        assert report.extraction_local_s_per_doc > 0
        assert report.extraction_with_yahoo_s_per_doc > 2.0  # modeled latency
        assert report.expansion_with_google_s_per_doc >= 1.0
        assert "docs/s" in report.format_summary()
