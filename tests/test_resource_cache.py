"""Two-tier resource cache: LRU + persistent SQLite correctness.

Covers the cache contract of :class:`repro.resources.base.ExternalResource`
and :class:`repro.db.resource_cache.PersistentResourceCache`:

* persistent hits survive a fresh resource instance (and a fresh store
  over the same file);
* ``clear_cache()`` drops both tiers;
* hit/miss counters are exact;
* cached entries are immutable — no caller (and no resource mutating
  the list its ``_query`` returned) can poison the cache;
* a corrupted or locked SQLite file degrades gracefully to in-memory
  mode instead of crashing.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.db.resource_cache import PersistentResourceCache
from repro.resources.base import ExternalResource, ResourceName


class CountingResource(ExternalResource):
    """Deterministic resource that counts real queries."""

    name = ResourceName.GOOGLE

    def __init__(self, memory_cache_size: int = 65_536):
        super().__init__(memory_cache_size=memory_cache_size)
        self.queries = 0

    def _query(self, term):
        self.queries += 1
        return [f"about {term.lower()}", f"more {term.lower()}"]


class TestMemoryTier:
    def test_memoizes_on_normalized_form(self):
        resource = CountingResource()
        first = resource.context_terms("Paris")
        again = resource.context_terms("  PARIS ")
        assert first == again == ["about paris", "more paris"]
        assert resource.queries == 1

    def test_lru_evicts_oldest(self):
        resource = CountingResource(memory_cache_size=2)
        resource.context_terms("a")
        resource.context_terms("b")
        resource.context_terms("c")  # evicts "a"
        assert resource.cache_size == 2
        resource.context_terms("a")  # re-query
        assert resource.queries == 4

    def test_lru_recency_refresh(self):
        resource = CountingResource(memory_cache_size=2)
        resource.context_terms("a")
        resource.context_terms("b")
        resource.context_terms("a")  # refresh "a"; "b" is now oldest
        resource.context_terms("c")  # evicts "b"
        resource.context_terms("a")
        assert resource.queries == 3  # "a" never re-queried

    def test_invalid_cache_size(self):
        with pytest.raises(ValueError):
            CountingResource(memory_cache_size=0)


class TestImmutability:
    def test_caller_mutation_cannot_poison_cache(self):
        resource = CountingResource()
        answer = resource.context_terms("Paris")
        answer.append("poison")
        answer[0] = "garbage"
        assert resource.context_terms("Paris") == ["about paris", "more paris"]

    def test_entries_are_stored_as_tuples(self):
        resource = CountingResource()
        resource.context_terms("Paris")
        (entry,) = resource._cache.values()
        assert isinstance(entry, tuple)

    def test_resource_mutating_its_own_answer_cannot_poison_cache(self):
        class Mutator(ExternalResource):
            name = ResourceName.GOOGLE

            def __init__(self):
                super().__init__()
                self.last = None

            def _query(self, term):
                self.last = [f"about {term}"]
                return self.last

        resource = Mutator()
        resource.context_terms("paris")
        resource.last.append("poison")  # mutate the list _query returned
        assert resource.context_terms("paris") == ["about paris"]


class TestExactCounters:
    def test_memory_hits_and_misses(self):
        resource = CountingResource()
        for term in ["a", "b", "a", "a", "c", "b"]:
            resource.context_terms(term)
        stats = resource.cache_stats
        assert stats.misses == 3
        assert stats.memory_hits == 3
        assert stats.persistent_hits == 0
        assert stats.hits == 3
        assert stats.queries == 6

    def test_empty_terms_are_not_counted(self):
        resource = CountingResource()
        assert resource.context_terms("   ") == []
        assert resource.cache_stats.queries == 0

    def test_persistent_hit_counting(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        warmer = CountingResource()
        warmer.attach_cache(store)
        warmer.context_terms("paris")

        fresh = CountingResource()
        fresh.attach_cache(store)
        fresh.context_terms("paris")  # persistent hit, fills memory tier
        fresh.context_terms("paris")  # memory hit
        stats = fresh.cache_stats
        assert stats.persistent_hits == 1
        assert stats.memory_hits == 1
        assert stats.misses == 0
        assert fresh.queries == 0

    def test_reset_cache_stats(self):
        resource = CountingResource()
        resource.context_terms("a")
        resource.reset_cache_stats()
        assert resource.cache_stats.queries == 0


class TestPersistentTier:
    def test_hits_survive_fresh_store_over_same_file(self, tmp_path):
        path = str(tmp_path / "cache.db")
        first = CountingResource()
        first.attach_cache(PersistentResourceCache(path))
        answer = first.context_terms("Paris")

        reopened = CountingResource()
        reopened.attach_cache(PersistentResourceCache(path))
        assert reopened.context_terms("Paris") == answer
        assert reopened.queries == 0
        assert reopened.cache_stats.persistent_hits == 1

    def test_namespaces_do_not_collide(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        a = CountingResource()
        a.attach_cache(store, namespace="world-a")
        b = CountingResource()
        b.attach_cache(store, namespace="world-b")
        a.context_terms("paris")
        b.context_terms("paris")
        assert a.queries == 1 and b.queries == 1
        assert store.size("world-a") == 1
        assert store.size("world-b") == 1
        assert store.size() == 2

    def test_clear_cache_drops_both_tiers(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        resource = CountingResource()
        resource.attach_cache(store)
        resource.context_terms("paris")
        assert resource.cache_size == 1
        assert store.size(resource.cache_namespace()) == 1

        resource.clear_cache()
        assert resource.cache_size == 0
        assert store.size(resource.cache_namespace()) == 0
        resource.context_terms("paris")
        assert resource.queries == 2  # truly gone from both tiers

    def test_clear_cache_spares_other_namespaces(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        mine = CountingResource()
        mine.attach_cache(store, namespace="mine")
        other = CountingResource()
        other.attach_cache(store, namespace="other")
        mine.context_terms("paris")
        other.context_terms("paris")
        mine.clear_cache()
        assert store.size("mine") == 0
        assert store.size("other") == 1

    def test_store_clear_all(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        store.put("n1", "t", ("a",))
        store.put("n2", "t", ("b",))
        store.clear()
        assert store.size() == 0

    def test_detach_keeps_memory_tier(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        resource = CountingResource()
        resource.attach_cache(store)
        resource.context_terms("paris")
        resource.detach_cache()
        resource.context_terms("paris")
        assert resource.queries == 1  # memory tier still answers

    def test_store_level_counters(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        assert store.get("ns", "missing") is None
        store.put("ns", "t", ("x",))
        assert store.get("ns", "t") == ("x",)
        assert store.misses == 1
        assert store.hits == 1
        assert store.writes == 1


class TestGracefulDegradation:
    def test_corrupted_file_degrades_to_memory_mode(self, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"this is definitely not a sqlite database")
        store = PersistentResourceCache(str(path))
        assert store.disabled
        assert store.error is not None
        # A disabled store is inert, never raising.
        assert store.get("ns", "t") is None
        store.put("ns", "t", ("x",))
        store.clear()
        assert store.size() == 0

        resource = CountingResource()
        resource.attach_cache(store)
        assert resource.context_terms("paris") == ["about paris", "more paris"]
        assert resource.context_terms("paris") == ["about paris", "more paris"]
        assert resource.queries == 1  # the memory tier still works
        assert resource.cache_stats.misses == 1
        assert resource.cache_stats.memory_hits == 1

    def test_locked_database_degrades_to_memory_mode(self, tmp_path):
        path = str(tmp_path / "locked.db")
        locker = sqlite3.connect(path)
        locker.execute("CREATE TABLE t (x)")
        locker.execute("BEGIN EXCLUSIVE")
        try:
            store = PersistentResourceCache(path, timeout=0.05)
            assert store.disabled
            resource = CountingResource()
            resource.attach_cache(store)
            assert resource.context_terms("paris") == [
                "about paris",
                "more paris",
            ]
            assert resource.queries == 1
        finally:
            locker.rollback()
            locker.close()

    def test_runtime_error_degrades_instead_of_raising(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        store.put("ns", "t", ("x",))
        # Corrupt the live connection out from under the store.
        store._connection.close()
        assert store.get("ns", "t") is None
        assert store.disabled
        store.put("ns", "u", ("y",))  # no-op, no exception


class TestThreadSafety:
    def test_concurrent_queries_are_consistent(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        resource = CountingResource()
        resource.attach_cache(store)
        terms = [f"term{i % 10}" for i in range(200)]
        answers: list[list[str]] = []
        errors: list[Exception] = []

        def worker(chunk):
            try:
                for term in chunk:
                    answers.append(resource.context_terms(term))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(terms[i::4],)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(answers) == 200
        for answer in answers:
            term = answer[0].removeprefix("about ")
            assert answer == [f"about {term}", f"more {term}"]
        stats = resource.cache_stats
        assert stats.queries == 200
        assert store.size(resource.cache_namespace()) == 10
