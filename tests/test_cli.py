"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T1" in out
        assert "EXP-US" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "EXP-NOPE"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure(self, capsys):
        assert main(["--scale", "0.05", "run", "EXP-F5"]) == 0
        assert capsys.readouterr().out

    def test_extract(self, capsys):
        assert main(["--scale", "0.05", "extract", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "score" in out

    def test_browse(self, capsys):
        assert main(["--scale", "0.05", "browse"]) == 0
        assert "top-level facets" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--scale", "0.05", "--seed", "42", "run", "EXP-F5"]) == 0

    def test_extract_with_trace_and_metrics(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "extract",
                    "--top",
                    "3",
                    "--trace-out",
                    str(trace_path),
                    "--metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "score" in out
        assert "stage.annotation.seconds" in out  # the metrics table
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        names = {record["name"] for record in records}
        assert "pipeline" in names
        assert {
            "stage:annotation",
            "stage:contextualization",
            "stage:selection",
            "stage:hierarchy",
        } <= names

    def test_trace_subcommand(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                ["--scale", "0.05", "extract", "--top", "1",
                 "--trace-out", str(trace_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--max-children", "3"]) == 0
        out = capsys.readouterr().out
        assert "pipeline" in out
        assert "stage:annotation" in out

    def test_trace_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_empty_file(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", str(empty)]) == 1
        assert "empty trace" in capsys.readouterr().err

    def test_stream_ingests_then_skips_on_rerun(self, capsys, tmp_path):
        batches = str(tmp_path / "batches")
        run_dir = str(tmp_path / "run")
        args = [
            "--scale",
            "0.05",
            "stream",
            "--input",
            batches,
            "--run-dir",
            run_dir,
            "--dataset",
            "SNYT",
            "--top",
            "5",
        ]
        assert main([*args, "--make-batches", "2"]) == 0
        out = capsys.readouterr().out
        assert "cold start" in out
        assert "ingested 2 batches" in out
        assert "score" in out
        # Same command again: everything is checkpointed, nothing re-runs.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed with" in out
        assert "ingested 0 batches" in out
        assert "skipped 2" in out


def _run_cli(*args: str, cwd: str | None = None) -> subprocess.CompletedProcess:
    """Invoke ``python -m repro`` the way a user would."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=300,
    )


class TestCliSubprocess:
    """End-to-end smoke tests through a real interpreter boundary."""

    def test_list(self):
        proc = _run_cli("list")
        assert proc.returncode == 0, proc.stderr
        assert "EXP-T1" in proc.stdout

    def test_extract_parallel_with_trace_and_metrics(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        proc = _run_cli(
            "--scale",
            "0.05",
            "extract",
            "--top",
            "5",
            "--workers",
            "2",
            "--trace-out",
            str(trace_path),
            "--metrics",
        )
        assert proc.returncode == 0, proc.stderr
        assert "score" in proc.stdout
        assert "resource." in proc.stdout  # per-resource cache counters
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        assert records[0]["name"] == "pipeline"
        assert records[0]["parent"] is None
        names = {record["name"] for record in records}
        assert "chunk" in names  # worker spans made it into the trace

        trace_proc = _run_cli("trace", str(trace_path))
        assert trace_proc.returncode == 0, trace_proc.stderr
        assert "pipeline" in trace_proc.stdout
        assert "└─" in trace_proc.stdout

    def test_json_logs_on_stderr(self):
        proc = _run_cli(
            "--log-format",
            "json",
            "--log-level",
            "INFO",
            "--scale",
            "0.05",
            "extract",
            "--top",
            "1",
        )
        assert proc.returncode == 0, proc.stderr
        events = [
            json.loads(line)
            for line in proc.stderr.splitlines()
            if line.startswith("{")
        ]
        assert any(e.get("event") == "pipeline.done" for e in events)
        # stdout stays clean program output
        assert not proc.stdout.startswith("{")
