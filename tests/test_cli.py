"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T1" in out
        assert "EXP-US" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "EXP-NOPE"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_figure(self, capsys):
        assert main(["--scale", "0.05", "run", "EXP-F5"]) == 0
        assert capsys.readouterr().out

    def test_extract(self, capsys):
        assert main(["--scale", "0.05", "extract", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "score" in out

    def test_browse(self, capsys):
        assert main(["--scale", "0.05", "browse"]) == 0
        assert "top-level facets" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag(self, capsys):
        assert main(["--scale", "0.05", "--seed", "42", "run", "EXP-F5"]) == 0
