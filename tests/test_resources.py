"""Tests for the external-resource layer."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.resources.base import ExternalResource, ResourceName
from repro.resources.composite import CompositeResource
from repro.resources.registry import (
    build_all_resources,
    build_resource,
)


class FakeResource(ExternalResource):
    name = ResourceName.GOOGLE

    def __init__(self, answers):
        super().__init__()
        self.answers = answers
        self.calls = 0

    def _query(self, term):
        self.calls += 1
        return list(self.answers.get(term.lower(), []))


class TestCaching:
    def test_results_memoized(self):
        resource = FakeResource({"paris": ["france"]})
        assert resource.context_terms("paris") == ["france"]
        assert resource.context_terms("paris") == ["france"]
        assert resource.calls == 1

    def test_cache_keyed_on_normalized_form(self):
        resource = FakeResource({"u s": ["united states"]})
        resource.context_terms("U.S.")
        resource.context_terms("u s")
        assert resource.calls == 1

    def test_empty_term_short_circuits(self):
        resource = FakeResource({})
        assert resource.context_terms("...") == []
        assert resource.calls == 0

    def test_clear_cache(self):
        resource = FakeResource({"a": ["b"]})
        resource.context_terms("a")
        assert resource.cache_size == 1
        resource.clear_cache()
        assert resource.cache_size == 0

    def test_returned_list_is_a_copy(self):
        resource = FakeResource({"a": ["b"]})
        first = resource.context_terms("a")
        first.append("junk")
        assert resource.context_terms("a") == ["b"]


class TestComposite:
    def test_union_deduplicates(self):
        r1 = FakeResource({"x": ["a", "b"]})
        r2 = FakeResource({"x": ["B", "c"]})
        composite = CompositeResource([r1, r2])
        assert composite.context_terms("x") == ["a", "b", "c"]

    def test_requires_members(self):
        with pytest.raises(ValueError):
            CompositeResource([])

    def test_label(self):
        r1 = FakeResource({})
        composite = CompositeResource([r1])
        assert "Google" in composite.label()


class TestRegistry:
    def test_build_each(self, substrates, config):
        for name in ResourceName:
            resource = build_resource(name, substrates, config)
            assert resource.name == name

    def test_build_by_string(self, substrates, config):
        resource = build_resource("Wikipedia Graph", substrates, config)
        assert resource.name == ResourceName.WIKI_GRAPH

    def test_unknown_name(self, substrates, config):
        with pytest.raises(ResourceError):
            build_resource("Bing", substrates, config)

    def test_build_all(self, substrates, config):
        composite = build_all_resources(substrates, config)
        assert len(composite.members) == len(ResourceName)


class TestBehaviourProfiles:
    """Each resource's qualitative profile from the paper."""

    def test_wordnet_fails_on_named_entities(self, substrates, config):
        resource = build_resource(ResourceName.WORDNET, substrates, config)
        assert resource.context_terms("Jacques Chirac") == []

    def test_wordnet_generalizes_common_nouns(self, substrates, config):
        resource = build_resource(ResourceName.WORDNET, substrates, config)
        terms = [t.lower() for t in resource.context_terms("president")]
        assert "leaders" in terms

    def test_graph_returns_context_for_entities(self, substrates, config):
        resource = build_resource(ResourceName.WIKI_GRAPH, substrates, config)
        terms = resource.context_terms("Jacques Chirac")
        assert "France" in terms
        assert len(terms) <= config.wiki_graph_top_k

    def test_synonyms_return_variants_not_generalizations(
        self, substrates, config
    ):
        resource = build_resource(ResourceName.WIKI_SYNONYMS, substrates, config)
        terms = [t.lower() for t in resource.context_terms("Hillary Clinton")]
        assert "hillary rodham clinton" in terms
        assert "political leaders" not in terms

    def test_synonyms_exclude_query_itself(self, substrates, config):
        resource = build_resource(ResourceName.WIKI_SYNONYMS, substrates, config)
        terms = [t.lower() for t in resource.context_terms("Hillary Clinton")]
        assert "hillary clinton" not in terms

    def test_google_is_broad_but_noisy(self, substrates, config):
        resource = build_resource(ResourceName.GOOGLE, substrates, config)
        terms = resource.context_terms("Jacques Chirac")
        assert len(terms) >= 10

    def test_google_marked_remote(self, substrates, config):
        assert build_resource(ResourceName.GOOGLE, substrates, config).remote
        assert not build_resource(
            ResourceName.WIKI_GRAPH, substrates, config
        ).remote
