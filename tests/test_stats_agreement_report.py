"""Tests for snapshot stats, inter-annotator agreement, and reporting."""

from __future__ import annotations

import pytest

from repro.eval.agreement import measure_agreement
from repro.harness.report import build_report, write_report
from repro.wikipedia.stats import snapshot_stats


class TestSnapshotStats:
    @pytest.fixture(scope="class")
    def stats(self, wikipedia):
        return snapshot_stats(wikipedia)

    def test_counts_positive(self, stats):
        assert stats.pages > 500
        assert stats.links > stats.pages  # informative graph
        assert stats.redirects > 50

    def test_mean_out_degree(self, stats):
        assert stats.mean_out_degree == pytest.approx(
            stats.links / stats.pages
        )
        assert 1 < stats.mean_out_degree < 60

    def test_hub_pages_exist(self, stats):
        # Facet roots accumulate many in-links.
        assert stats.max_in_degree > 20

    def test_ambiguous_anchors_present(self, stats):
        # "the president"-style anchors point at several pages.
        assert stats.ambiguous_anchors >= 1

    def test_summary_renders(self, stats):
        text = stats.format_summary()
        assert "pages:" in text
        assert "links:" in text


class TestAgreement:
    def test_agreement_above_chance_below_perfect(self, world, snyt, config):
        report = measure_agreement(world, list(snyt)[:40], config)
        assert report.decisions > 100
        # Annotators share ground truth but sample it independently:
        # solid agreement, far from unanimity.
        assert 0.0 < report.fleiss_kappa < 0.95
        assert 0.4 < report.observed_agreement < 1.0

    def test_empty_sample(self, world, config):
        report = measure_agreement(world, [], config)
        assert report.decisions == 0
        assert report.fleiss_kappa == 0.0

    def test_summary_renders(self, world, snyt, config):
        report = measure_agreement(world, list(snyt)[:10], config)
        assert "kappa" in report.format_summary()


class TestReport:
    def test_build_from_results(self, tmp_path):
        (tmp_path / "table2_recall_snyt.txt").write_text("Recall (SNYT)\n0.9")
        (tmp_path / "user_study.txt").write_text("searches: 3")
        report = build_report(tmp_path)
        assert "Table II" in report
        assert "Section V-E" in report
        assert "0.9" in report

    def test_empty_results_dir(self, tmp_path):
        report = build_report(tmp_path)
        assert "No results found" in report

    def test_write_report(self, tmp_path):
        (tmp_path / "efficiency.txt").write_text("fast")
        out = write_report(tmp_path, tmp_path / "REPORT.md")
        assert out.exists()
        assert "fast" in out.read_text()

    def test_unknown_files_ignored(self, tmp_path):
        (tmp_path / "random_notes.txt").write_text("hello")
        report = build_report(tmp_path)
        assert "hello" not in report
