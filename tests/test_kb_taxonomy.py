"""Tests for the ground-truth facet taxonomy."""

from __future__ import annotations

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb.taxonomy import FacetTaxonomy, default_taxonomy


@pytest.fixture(scope="module")
def taxonomy():
    return default_taxonomy()


class TestStructure:
    def test_pilot_facets_are_roots(self, taxonomy):
        # Table I of the paper.
        for facet in (
            "Location", "Institutes", "History", "People",
            "Social Phenomenon", "Markets", "Nature", "Event",
        ):
            assert facet in taxonomy.roots

    def test_leaders_under_people(self, taxonomy):
        assert taxonomy.parent("Leaders") == "People"

    def test_corporations_under_markets(self, taxonomy):
        assert taxonomy.parent("Corporations") == "Markets"

    def test_roots_have_no_parent(self, taxonomy):
        for root in taxonomy.roots:
            assert taxonomy.parent(root) is None

    def test_every_term_reaches_a_root(self, taxonomy):
        for term in taxonomy.terms():
            assert taxonomy.path(term)[0] in taxonomy.roots

    def test_substantial_size(self, taxonomy):
        assert len(taxonomy) > 100

    def test_children_parent_symmetry(self, taxonomy):
        for term in taxonomy.terms():
            for child in taxonomy.children(term):
                assert taxonomy.parent(child) == term


class TestLookups:
    def test_contains_is_case_insensitive(self, taxonomy):
        assert "political leaders" in taxonomy
        assert "POLITICAL LEADERS" in taxonomy

    def test_canonical(self, taxonomy):
        assert taxonomy.canonical("political leaders") == "Political Leaders"
        assert taxonomy.canonical("not a facet") is None

    def test_path(self, taxonomy):
        assert taxonomy.path("Political Leaders") == (
            "People", "Leaders", "Political Leaders",
        )

    def test_root_of(self, taxonomy):
        assert taxonomy.root_of("France") == "Location"

    def test_depth(self, taxonomy):
        assert taxonomy.depth("People") == 0
        assert taxonomy.depth("Leaders") == 1
        assert taxonomy.depth("Political Leaders") == 2

    def test_unknown_term_raises(self, taxonomy):
        with pytest.raises(KnowledgeBaseError):
            taxonomy.parent("definitely unknown")

    def test_descendants(self, taxonomy):
        descendants = taxonomy.descendants("People")
        assert "Political Leaders" in descendants
        assert "People" not in descendants

    def test_leaves_have_no_children(self, taxonomy):
        for leaf in taxonomy.leaves():
            assert taxonomy.children(leaf) == ()


class TestAncestry:
    def test_is_ancestor(self, taxonomy):
        assert taxonomy.is_ancestor("People", "Political Leaders")
        assert taxonomy.is_ancestor("Leaders", "Political Leaders")
        assert not taxonomy.is_ancestor("Political Leaders", "People")
        assert not taxonomy.is_ancestor("Markets", "Political Leaders")

    def test_term_is_not_its_own_ancestor(self, taxonomy):
        assert not taxonomy.is_ancestor("People", "People")

    def test_correctly_placed_direct(self, taxonomy):
        assert taxonomy.correctly_placed("Political Leaders", "Leaders")

    def test_correctly_placed_transitive(self, taxonomy):
        assert taxonomy.correctly_placed("Political Leaders", "People")

    def test_incorrect_placement(self, taxonomy):
        assert not taxonomy.correctly_placed("France", "Asia")

    def test_placement_with_unknown_terms(self, taxonomy):
        assert not taxonomy.correctly_placed("mystery", "People")
        assert not taxonomy.correctly_placed("France", "mystery")


class TestConstruction:
    def test_duplicate_term_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            FacetTaxonomy({"A": {"B": {}}, "B": {}})

    def test_normalization_collision_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            FacetTaxonomy({"New York": {}, "new york": {}})

    def test_tiny_taxonomy(self):
        taxonomy = FacetTaxonomy({"Top": {"Mid": {"Leaf": {}}}})
        assert taxonomy.roots == ("Top",)
        assert taxonomy.path("Leaf") == ("Top", "Mid", "Leaf")
