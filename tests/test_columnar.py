"""Unit certification of the columnar data plane.

The plane's contract is *representation only*: every columnar structure
must answer exactly what its dict-of-strings counterpart answers.  This
module pins the contract piece by piece — interner id stability, the
columnar vocabulary against the Counter-backed reference, the zero-copy
df/rank map views, shared-memory round trips (including worker-crash
cleanup), the numpy/stdlib selection pretest agreement, and the two
text-layer lemmas the fast paths rely on (normalize fixed points and
the memo's output neutrality).  The end-to-end byte-identity matrix
lives in ``tests/test_columnar_equivalence.py``.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.annotate import document_terms
from repro.core.columnar import (
    HAVE_NUMPY,
    ColumnarCountMap,
    ColumnarRankMap,
    ColumnarVocabulary,
    DocumentColumns,
    IntVector,
    SharedSegment,
    SharedVocabularyView,
    columnar_candidate_ids,
    pack_vocabulary,
)
from repro.core.shifts import ShiftTables
from repro.corpus.document import Document
from repro.text.interning import TextMemo, use_text_memo
from repro.text.tokenizer import normalize_term as raw_normalize_term
from repro.text.tokenizer import sentences as raw_sentences
from repro.text.tokenizer import tokenize as raw_tokenize
from repro.text.vocabulary import TermInterner, Vocabulary

WORDS = [
    "election",
    "storm",
    "clinton",
    "senate",
    "hurricane",
    "budget",
    "treaty",
    "verdict",
    "strike",
    "summit",
]


def random_documents(seed: int, count: int = 40) -> list[list[str]]:
    rng = random.Random(seed)
    return [
        [rng.choice(WORDS) for _ in range(rng.randint(0, 12))]
        for _ in range(count)
    ]


class TestTermInterner:
    def test_ids_are_first_seen_order_and_stable(self):
        interner = TermInterner()
        assert interner.intern("storm") == 0
        assert interner.intern("election") == 1
        assert interner.intern("storm") == 0  # repeat: same id
        assert interner.intern("senate") == 2
        assert interner.term(1) == "election"
        assert interner.terms() == ["storm", "election", "senate"]
        assert len(interner) == 3
        assert "storm" in interner
        assert "hurricane" not in interner
        assert interner.id_of("hurricane") is None

    def test_ids_survive_interleaved_growth(self):
        """Structures keyed by id stay valid as the table grows."""
        interner = TermInterner()
        first = {term: interner.intern(term) for term in WORDS[:5]}
        for term in WORDS:  # grow with new + old terms interleaved
            interner.intern(term)
        for term, term_id in first.items():
            assert interner.intern(term) == term_id
            assert interner.term(term_id) == term

    def test_normalized_id_memoizes_per_surface(self):
        interner = TermInterner()
        a = interner.normalized_id("Hillary  Clinton")
        b = interner.normalized_id("hillary clinton")
        assert a == b == interner.id_of("hillary clinton")
        assert interner.normalize("Hillary  Clinton") == "hillary clinton"

    def test_empty_normalization_gets_the_sentinel(self):
        interner = TermInterner()
        assert interner.normalized_id("   ") == TermInterner.EMPTY
        assert interner.normalize("   ") == ""
        assert len(interner) == 0  # the sentinel never enters the table


class TestIntVector:
    def test_grow_to_zero_extends(self):
        vector = IntVector.from_iterable([3, 1])
        vector.grow_to(5)
        assert list(vector) == [3, 1, 0, 0, 0]
        vector.grow_to(2)  # never shrinks
        assert len(vector) == 5

    def test_copy_is_independent(self):
        vector = IntVector.from_iterable([1, 2])
        clone = vector.copy()
        clone[0] = 9
        assert vector[0] == 1

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_to_numpy_is_zero_copy(self):
        vector = IntVector.from_iterable([4, 5, 6])
        view = vector.to_numpy()
        assert list(view) == [4, 5, 6]
        vector[1] = 50  # mutation shows through the view: shared buffer
        assert view[1] == 50


class TestColumnarVocabularyEquivalence:
    """ColumnarVocabulary answers exactly what Vocabulary answers."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_every_accessor_matches_the_reference(self, seed):
        reference = Vocabulary()
        columnar = ColumnarVocabulary()
        for doc in random_documents(seed):
            reference.add_document(doc)
            columnar.add_document(doc)
        assert columnar.document_count == reference.document_count
        assert columnar.term_count == reference.term_count
        assert len(columnar) == len(reference)
        assert sorted(columnar.terms()) == sorted(reference.terms())
        assert columnar.most_common() == reference.most_common()
        assert columnar.most_common(3) == reference.most_common(3)
        for term in [*WORDS, "never-seen"]:
            assert columnar.tf(term) == reference.tf(term)
            assert columnar.df(term) == reference.df(term)
            assert columnar.rank(term) == reference.rank(term)
            assert (term in columnar) == (term in reference)
            assert columnar.stats(term) == reference.stats(term)

    def test_df_and_rank_maps_match_the_reference_maps(self):
        reference = Vocabulary()
        columnar = ColumnarVocabulary()
        for doc in random_documents(7):
            reference.add_document(doc)
            columnar.add_document(doc)
        assert dict(columnar.df_map()) == dict(reference.df_map())
        assert dict(columnar.rank_map()) == dict(reference.rank_map())
        df_view = columnar.df_map()
        rank_view = columnar.rank_map()
        assert isinstance(df_view, ColumnarCountMap)
        assert isinstance(rank_view, ColumnarRankMap)
        assert len(df_view) == len(reference.df_map())
        assert len(rank_view) == len(reference.rank_map())
        for term in WORDS:
            assert df_view.get(term, 0) == reference.df_map().get(term, 0)
            assert rank_view.get(term, -1) == reference.rank_map().get(term, -1)
        assert df_view.get("never-seen") is None
        with pytest.raises(KeyError):
            df_view["never-seen"]
        with pytest.raises(KeyError):
            rank_view["never-seen"]

    def test_rank_map_is_a_snapshot(self):
        """Adds after rank_map() must not mutate the captured ranks."""
        columnar = ColumnarVocabulary()
        columnar.add_document(["storm", "election"])
        snapshot = columnar.rank_map()
        before = dict(snapshot)
        for _ in range(5):
            columnar.add_document(["election"])
        assert dict(snapshot) == before
        assert columnar.rank("election") == 1  # the live table did move

    def test_remove_document_matches_reference_including_errors(self):
        reference = Vocabulary()
        columnar = ColumnarVocabulary()
        docs = random_documents(11, count=10)
        for doc in docs:
            reference.add_document(doc)
            columnar.add_document(doc)
        for doc in docs[:5]:
            reference.remove_document(doc)
            columnar.remove_document(doc)
        assert columnar.document_count == reference.document_count
        assert sorted(columnar.terms()) == sorted(reference.terms())
        for term in WORDS:
            assert columnar.df(term) == reference.df(term)
            assert columnar.tf(term) == reference.tf(term)
            assert columnar.rank(term) == reference.rank(term)
        with pytest.raises(ValueError, match="never added"):
            columnar.remove_document(["never-seen"])
        empty = ColumnarVocabulary()
        with pytest.raises(ValueError, match="empty vocabulary"):
            empty.remove_document(["storm"])
        # Failed removals must not have touched any statistic.
        assert columnar.document_count == reference.document_count

    def test_copy_is_independent_but_shares_the_interner(self):
        columnar = ColumnarVocabulary()
        columnar.add_document(["storm", "election"])
        clone = columnar.copy()
        assert clone.interner is columnar.interner
        clone.add_document(["storm"])
        assert columnar.df("storm") == 1
        assert clone.df("storm") == 2


class TestDocumentColumns:
    def test_round_trip_and_postings(self):
        columns = DocumentColumns(TermInterner())
        columns.add_document("d1", ["storm", "election", "storm"])
        columns.add_document("d2", [])
        columns.add_document("d3", ["election", "senate"])
        assert len(columns) == 3
        assert columns.terms_of(0) == ["storm", "election", "storm"]
        assert columns.terms_of(1) == []
        assert columns.terms_of(2) == ["election", "senate"]
        assert columns.index_of("d3") == 2
        assert columns.index_of("nope") is None
        postings = columns.postings()
        election = columns.interner.id_of("election")
        storm = columns.interner.id_of("storm")
        assert list(postings[election]) == [0, 2]
        assert list(postings[storm]) == [0]  # distinct per doc
        restricted = columns.postings({storm})
        assert set(restricted) == {storm}


class TestSharedSegments:
    def test_vocabulary_view_round_trips_through_pickle(self):
        vocabulary = ColumnarVocabulary()
        for doc in random_documents(5, count=15):
            vocabulary.add_document(doc)
        segment = pack_vocabulary(vocabulary)
        if segment is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            view = SharedVocabularyView(segment.name)
            # Workers receive the view pickled; only the name travels.
            assert len(pickle.dumps(view)) < 200
            remote = pickle.loads(pickle.dumps(view))
            assert remote.document_count == vocabulary.document_count
            assert remote.term_count == vocabulary.term_count
            assert sorted(remote.terms()) == sorted(vocabulary.terms())
            for term in [*WORDS, "never-seen"]:
                assert remote.df(term) == vocabulary.df(term)
                assert remote.tf(term) == vocabulary.tf(term)
                assert (term in remote) == (term in vocabulary)
        finally:
            segment.unlink()

    def test_pack_plain_vocabulary_matches_too(self):
        vocabulary = Vocabulary()
        for doc in random_documents(6, count=10):
            vocabulary.add_document(doc)
        segment = pack_vocabulary(vocabulary)
        if segment is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            view = SharedVocabularyView(segment.name)
            for term in WORDS:
                assert view.df(term) == vocabulary.df(term)
                assert view.tf(term) == vocabulary.tf(term)
            assert view.document_count == vocabulary.document_count
        finally:
            segment.unlink()

    def test_creator_cleanup_survives_a_crashed_consumer(self):
        """A worker dying mid-read must not leak the segment."""
        vocabulary = ColumnarVocabulary()
        vocabulary.add_document(["storm"])
        segment = pack_vocabulary(vocabulary)
        if segment is None:
            pytest.skip("shared memory unavailable on this platform")
        name = segment.name
        view = SharedVocabularyView(name)
        with pytest.raises(RuntimeError, match="simulated worker crash"):
            # The consumer attaches (holding views into the buffer) and
            # dies without any cleanup of its own.
            view.df("storm")
            raise RuntimeError("simulated worker crash")
        segment.unlink()  # creator-side cleanup must still succeed
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        segment.unlink()  # idempotent

    def test_attach_is_cached_per_process(self):
        segment = SharedSegment.create({"blob": b"payload"})
        if segment is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            first = SharedSegment.attach(segment.name)
            second = SharedSegment.attach(segment.name)
            assert first is second
            assert bytes(first.section("blob")) == b"payload"
            first.close()
        finally:
            segment.unlink()


class TestSelectionPretest:
    """The vectorized shift pretest equals the scalar Figure 3 test."""

    def build_pair(self, seed: int):
        interner = TermInterner()
        original = ColumnarVocabulary(interner)
        contextualized = ColumnarVocabulary(interner)
        rng = random.Random(seed)
        for doc in random_documents(seed, count=30):
            original.add_document(doc)
            expanded = doc + [rng.choice(WORDS) for _ in range(rng.randint(0, 4))]
            contextualized.add_document(set(expanded))
        return original, contextualized

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    @pytest.mark.parametrize("require_both", [True, False])
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_candidates_equal_the_scalar_shift_test(self, seed, require_both):
        original, contextualized = self.build_pair(seed)
        shifts = ShiftTables(original, contextualized)
        candidates = columnar_candidate_ids(
            original,
            contextualized,
            require_both,
            shifts.bins_original,
            shifts.bins_contextualized,
        )
        assert candidates is not None
        terms = original.interner.terms()
        scalar = [
            term_id
            for term_id in range(len(terms))
            if contextualized.df_by_id(term_id) > 0
            and shifts.frequency_shift(terms[term_id]) > 0
            and (not require_both or shifts.rank_shift(terms[term_id]) > 0)
        ]
        assert candidates == scalar
        assert candidates == sorted(candidates)  # scalar visit order

    def test_distinct_interners_fall_back_to_the_scalar_loop(self):
        original = ColumnarVocabulary()
        contextualized = ColumnarVocabulary()
        original.add_document(["storm"])
        contextualized.add_document(["storm", "election"])
        shifts = ShiftTables(original, contextualized)
        assert (
            columnar_candidate_ids(
                original,
                contextualized,
                True,
                shifts.bins_original,
                shifts.bins_contextualized,
            )
            is None
        )


DOC = Document(
    doc_id="pin",
    title="Senate Passes Budget as Hurricane Season Begins",
    body=(
        'The U.S. Senate passed the budget on Tuesday. "Hurricane season '
        'begins," said Dr. Smith — and 3,000 people left New Orleans. '
        "Storm-related costs rose 12.5 percent."
    ),
)


class TestTextLayerLemmas:
    """The two equivalences the columnar fast paths are built on."""

    def test_document_terms_are_normalize_fixed_points(self):
        """_columnar_stats_chunk may skip normalization entirely."""
        terms = document_terms(DOC)
        assert terms  # non-trivial input
        for term in terms:
            assert raw_normalize_term(term) == term

    def test_sentence_token_streams_concatenate_to_the_full_stream(self):
        """Single-tokenization document_terms cannot change the words."""
        per_sentence = [
            token.lower
            for sentence in raw_sentences(DOC.text)
            for token in raw_tokenize(sentence)
        ]
        whole = [token.lower for token in raw_tokenize(DOC.text)]
        assert per_sentence == whole

    def test_text_memo_is_output_neutral(self):
        with use_text_memo(TextMemo()):
            from repro.text.interning import (
                normalize_term,
                sentences,
                tokenize,
            )

            assert tokenize(DOC.text) == raw_tokenize(DOC.text)
            assert sentences(DOC.text) == raw_sentences(DOC.text)
            for surface in ("U.S. Senate", "Hurricane  Season", "3,000"):
                assert normalize_term(surface) == raw_normalize_term(surface)

    def test_title_matcher_fast_scan_is_output_neutral(self, wikipedia):
        from repro.wikipedia.titles import TitleMatcher

        matcher = TitleMatcher(wikipedia)
        plain = matcher.matches(DOC.text)
        with use_text_memo(TextMemo()):
            fast = matcher.matches(DOC.text)
        assert fast == plain
