"""Tests for the mini WordNet."""

from __future__ import annotations

import pytest

from repro.wordnet.hypernyms import HypernymLookup
from repro.wordnet.lexicon import Lexicon, build_lexicon


@pytest.fixture(scope="module")
def lexicon(world):
    return build_lexicon(world)


@pytest.fixture(scope="module")
def lookup(lexicon):
    return HypernymLookup(lexicon)


class TestLexicon:
    def test_add_and_query_chain(self):
        lexicon = Lexicon()
        lexicon.add_chain("dog", ("canine", "animal"))
        synsets = lexicon.synsets("dog")
        assert len(synsets) == 1
        assert lexicon.chain(synsets[0]) == ("canine", "animal")

    def test_multiple_senses(self):
        lexicon = Lexicon()
        lexicon.add_chain("bank", ("financial institution",))
        lexicon.add_chain("bank", ("river slope",))
        assert len(lexicon.synsets("bank")) == 2

    def test_duplicate_chain_not_added_twice(self):
        lexicon = Lexicon()
        lexicon.add_chain("dog", ("animal",))
        lexicon.add_chain("dog", ("animal",))
        assert len(lexicon.synsets("dog")) == 1

    def test_case_insensitive(self):
        lexicon = Lexicon()
        lexicon.add_chain("Dog", ("animal",))
        assert lexicon.synsets("DOG")

    def test_phrases_never_covered(self, lexicon):
        assert lexicon.synsets("stock market") == []
        assert lexicon.synsets("jacques chirac") == []

    def test_core_role_nouns(self, lexicon):
        assert "president" in lexicon
        assert "storm" in lexicon

    def test_topic_vocabulary_covered(self, world, lexicon):
        covered = sum(
            1
            for topic in world.topics
            for word in topic.vocabulary
            if " " not in word and word in lexicon
        )
        total = sum(
            1
            for topic in world.topics
            for word in topic.vocabulary
            if " " not in word
        )
        assert covered / total > 0.95


class TestHypernyms:
    def test_president_chain(self, lookup):
        hypernyms = lookup.hypernyms("president")
        assert "leaders" in hypernyms
        assert "people" in hypernyms

    def test_specific_before_general(self, lookup):
        hypernyms = lookup.hypernyms("hurricane")
        assert hypernyms.index("hurricanes") < hypernyms.index("event")

    def test_named_entities_not_covered(self, lookup):
        # The paper's stated WordNet weakness.
        assert lookup.hypernyms("Jacques Chirac") == []
        assert not lookup.covers("Hillary Rodham Clinton")

    def test_max_depth(self, lookup):
        shallow = lookup.hypernyms("president", max_depth=1)
        assert shallow == ["leaders"]

    def test_unknown_word(self, lookup):
        assert lookup.hypernyms("zzzz") == []

    def test_location_instances_covered(self, lookup):
        # Real WordNet contains countries; so does the mini lexicon.
        hypernyms = lookup.hypernyms("france")
        assert "europe" in hypernyms

    def test_city_chain_climbs_to_country(self, lookup):
        hypernyms = lookup.hypernyms("baghdad")
        assert "iraq" in hypernyms

    def test_hypernyms_deduplicated(self, lookup):
        hypernyms = lookup.hypernyms("campaign")
        assert len(hypernyms) == len(set(hypernyms))
