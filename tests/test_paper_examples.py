"""The paper's worked examples, verified literally against the build.

Every concrete example in the paper's prose has a corresponding
behaviour here: the Jacques Chirac expansion (Section I and IV-B), the
2005 G8 Summit context terms, the Hillary Rodham Clinton redirect group
(Section IV-A), the Steve Jobs association list (Section IV), and the
Hasekura Tsunenaga anchor discussion (Section IV-B).
"""

from __future__ import annotations

import pytest

from repro.wikipedia.graph import WikipediaGraph
from repro.wikipedia.synonyms import SynonymFinder
from repro.wikipedia.titles import TitleMatcher


@pytest.fixture(scope="module")
def graph(wikipedia):
    return WikipediaGraph(wikipedia)


@pytest.fixture(scope="module")
def synonyms(wikipedia):
    return SynonymFinder(wikipedia)


class TestChiracExample:
    """Section I: 'Jacques Chirac' implies People -> Political Leaders
    and Regional -> Europe -> France; Section IV-B: querying Wikipedia
    returns 'President of France'."""

    def test_facet_paths(self, world):
        entity = world.entity("Jacques Chirac")
        paths = {tuple(p) for p in entity.facet_paths}
        assert ("People", "Leaders", "Political Leaders") in paths
        assert ("Location", "Europe", "France") in paths

    def test_graph_expansion(self, graph):
        titles = {n.title for n in graph.neighbours("Jacques Chirac", k=50)}
        assert "President of France" in titles
        assert "France" in titles
        assert "Political Leaders" in titles


class TestG8SummitExample:
    """Section IV-B: context terms for '2005 G8 summit' include 'Africa
    debt cancellation' and 'global warming'."""

    def test_graph_expansion(self, graph):
        titles = {n.title for n in graph.neighbours("2005 G8 Summit", k=50)}
        assert "Africa debt cancellation" in titles
        assert "global warming" in titles

    def test_summit_facets(self, world):
        entity = world.entity("2005 G8 Summit")
        assert "Summits" in entity.facet_terms


class TestHillaryExample:
    """Section IV-A: 'Hillary Clinton', 'Hillary R. Clinton', 'Clinton,
    Hillary Rodham', 'Hillary Diane Rodham Clinton' all redirect to
    'Hillary Rodham Clinton'."""

    VARIANTS = (
        "Hillary Clinton",
        "Hillary R. Clinton",
        "Clinton, Hillary Rodham",
        "Hillary Diane Rodham Clinton",
    )

    def test_redirects(self, wikipedia):
        for variant in self.VARIANTS:
            assert wikipedia.resolve(variant) == "Hillary Rodham Clinton"

    def test_title_matcher_captures_variants(self, wikipedia):
        matcher = TitleMatcher(wikipedia)
        for variant in self.VARIANTS[:2]:
            titles = [
                m.title for m in matcher.matches(f"Yesterday {variant} spoke.")
            ]
            assert "Hillary Rodham Clinton" in titles

    def test_synonym_group(self, synonyms):
        phrases = {s.phrase for s in synonyms.synonyms("Hillary Rodham Clinton")}
        assert "Hillary Clinton" in phrases
        assert "Hillary R. Clinton" in phrases


class TestSteveJobsExample:
    """Section IV: 'Steve Jobs' associates with 'personal computer',
    'entertainment industry', 'technology leaders'."""

    def test_graph_expansion(self, graph):
        titles = {n.title for n in graph.neighbours("Steve Jobs", k=50)}
        assert "personal computer" in titles
        assert "entertainment industry" in titles
        assert "technology leaders" in titles


class TestHasekuraExample:
    """Section IV-B: the 'Hasekura Tsunenaga' page, with the anchor text
    'Samurai Tsunenaga' usable as a synonym."""

    def test_page_exists(self, wikipedia):
        assert wikipedia.resolve("Hasekura Tsunenaga") is not None

    def test_anchor_synonym(self, wikipedia, synonyms):
        assert wikipedia.resolve("Samurai Tsunenaga") == "Hasekura Tsunenaga"
        phrases = {
            s.phrase.lower() for s in synonyms.synonyms("Hasekura Tsunenaga")
        }
        assert "samurai tsunenaga" in phrases
