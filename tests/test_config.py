"""Tests for repro.config."""

from __future__ import annotations

import pytest

from repro.config import (
    PAPER_MNYT_SIZE,
    PAPER_SNB_SIZE,
    PAPER_SNYT_SIZE,
    ReproConfig,
)
from repro.errors import ConfigError


class TestValidation:
    def test_default_is_valid(self):
        config = ReproConfig()
        assert config.scale > 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(scale=-1.0)

    def test_zero_scale_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(scale=0.0)

    def test_bad_top_k_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(wiki_graph_top_k=0)

    def test_bad_annotator_count_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(annotators_per_story=0)


class TestScaling:
    def test_full_scale_matches_paper_sizes(self):
        config = ReproConfig(scale=1.0)
        assert config.snyt_size == PAPER_SNYT_SIZE
        assert config.snb_size == PAPER_SNB_SIZE
        assert config.mnyt_size == PAPER_MNYT_SIZE

    def test_half_scale(self):
        config = ReproConfig(scale=0.5)
        assert config.snyt_size == PAPER_SNYT_SIZE // 2

    def test_scaled_respects_minimum(self):
        config = ReproConfig(scale=0.0001)
        assert config.scaled(1000, minimum=10) == 10

    def test_annotated_sample_has_floor(self):
        config = ReproConfig(scale=0.001)
        assert config.annotated_sample_size >= 50


class TestEnvScale:
    def test_env_scale_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert ReproConfig().scale == 0.25

    def test_env_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ConfigError):
            ReproConfig()

    def test_env_scale_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-2")
        with pytest.raises(ConfigError):
            ReproConfig()


class TestRng:
    def test_same_namespace_same_stream(self):
        config = ReproConfig(seed=7)
        assert config.rng("x").random() == config.rng("x").random()

    def test_different_namespace_different_stream(self):
        config = ReproConfig(seed=7)
        assert config.rng("x").random() != config.rng("y").random()

    def test_different_seed_different_stream(self):
        assert (
            ReproConfig(seed=1).rng("x").random()
            != ReproConfig(seed=2).rng("x").random()
        )
