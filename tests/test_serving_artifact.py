"""Tests for the read-only serving artifact (repro.serving.artifact).

The load-bearing property is *byte identity*: an artifact built from a
pipeline run must answer every query of the shared browser surface with
exactly the values the in-memory :class:`FacetedInterface` produces —
same objects, same order, same canonical JSON bytes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.interface import FacetedInterface
from repro.errors import HierarchyError, StorageError
from repro.serving import SCHEMA_VERSION, FacetIndex
from repro.serving.renderers import (
    canonical_json,
    children_payload,
    document_payload,
    drilldown_payload,
    facets_payload,
)


@pytest.fixture(scope="module")
def interface(pipeline_result) -> FacetedInterface:
    return FacetedInterface.from_result(pipeline_result)


@pytest.fixture(scope="module")
def index(pipeline_result, tmp_path_factory) -> FacetIndex:
    path = str(tmp_path_factory.mktemp("artifact") / "facets.idx")
    built = FacetIndex.build(pipeline_result, path=path)
    yield built
    built.close()


class TestBuildAndOpen:
    def test_manifest_schema_and_counts(self, index, interface):
        manifest = index.manifest
        assert manifest["schema"] == SCHEMA_VERSION
        assert index.document_count == interface.document_count
        assert index.facet_count == len(interface.facet_names())
        assert index.node_count >= index.facet_count

    def test_checksums_verify(self, index):
        assert index.verify()
        assert index.checksum == index.manifest["content_sha256"]

    def test_reopen_is_o1_and_identical(self, index):
        with FacetIndex.open(index.path) as reopened:
            assert reopened.manifest == index.manifest
            assert reopened.facet_names() == index.facet_names()

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no index artifact"):
            FacetIndex.open(str(tmp_path / "absent.idx"))

    def test_open_non_artifact_file(self, tmp_path):
        path = tmp_path / "junk.idx"
        path.write_bytes(b"not a database at all")
        with pytest.raises(StorageError):
            FacetIndex.open(str(path))

    def test_build_atomic_no_tmp_left_behind(self, index):
        assert not os.path.exists(index.path + ".tmp")

    def test_closed_index_refuses_queries(self, pipeline_result, tmp_path):
        path = str(tmp_path / "closing.idx")
        built = FacetIndex.build(pipeline_result, path=path)
        built.close()
        with pytest.raises(StorageError, match="closed"):
            built.facet_names()


class TestQueryParity:
    """Every browser method answers identically from both backends."""

    def test_facet_names(self, index, interface):
        assert index.facet_names() == interface.facet_names()

    def test_top_level_counts(self, index, interface):
        assert index.top_level_counts() == interface.top_level_counts()

    def test_children_and_depth(self, index, interface):
        for term in interface.facet_names()[:20]:
            assert index.children(term) == interface.children(term)
            assert index.depth(term) == interface.depth(term)

    def test_children_of_nested_node(self, index, interface):
        deep = [
            facet.root.children[0].term
            for facet in interface.facets
            if facet.root.children
        ]
        assert deep, "pipeline produced no multi-level facet"
        for term in deep[:10]:
            assert index.children(term) == interface.children(term)
            assert index.depth(term) == interface.depth(term) == 1

    def test_breadcrumb(self, index, interface):
        for facet in interface.facets[:10]:
            for node in list(facet.root.walk())[:5]:
                assert index.breadcrumb(node.term) == interface.breadcrumb(
                    node.term
                )

    def test_has_node_and_errors_match(self, index, interface):
        term = interface.facet_names()[0]
        assert index.has_node(term) and interface.has_node(term)
        assert not index.has_node("zz-missing") and not interface.has_node(
            "zz-missing"
        )
        with pytest.raises(HierarchyError) as from_index:
            index.children("zz-missing")
        with pytest.raises(HierarchyError) as from_interface:
            interface.children("zz-missing")
        assert str(from_index.value) == str(from_interface.value)

    def test_slice_dice_union(self, index, interface):
        names = interface.facet_names()
        a, b = names[0], names[min(1, len(names) - 1)]
        assert _ids(index.slice(a)) == _ids(interface.slice(a))
        assert _ids(index.dice([])) == _ids(interface.dice([]))
        assert _ids(index.dice([a, b])) == _ids(interface.dice([a, b]))
        assert _ids(index.union([a, b])) == _ids(interface.union([a, b]))

    def test_document_roundtrip(self, index, interface):
        for doc in interface.dice([])[:10]:
            assert index.document(doc.doc_id) == doc
        with pytest.raises(StorageError) as from_index:
            index.document("zz-missing")
        with pytest.raises(StorageError) as from_interface:
            interface.document("zz-missing")
        assert str(from_index.value) == str(from_interface.value)

    def test_search_parity(self, index, interface):
        for query in ("minister", "election results", "court ruling appeal"):
            assert _ids(index.search(query, limit=15)) == _ids(
                interface.search(query, limit=15)
            )

    def test_search_with_facets_parity(self, index, interface):
        term = interface.facet_names()[0]
        for query in ("minister", "vote"):
            assert _ids(
                index.search_with_facets(query, [term], limit=10)
            ) == _ids(interface.search_with_facets(query, [term], limit=10))

    def test_facet_counts_for_parity(self, index, interface):
        subset = {doc.doc_id for doc in interface.dice([])[:25]}
        assert index.facet_counts_for(subset) == interface.facet_counts_for(
            subset
        )


class TestPayloadByteIdentity:
    """Canonical JSON from both backends is byte-for-byte equal."""

    def test_facets_payload(self, index, interface):
        assert canonical_json(facets_payload(index)) == canonical_json(
            facets_payload(interface)
        )

    def test_children_payload(self, index, interface):
        for term in interface.facet_names()[:10]:
            assert canonical_json(
                children_payload(index, term)
            ) == canonical_json(children_payload(interface, term))

    def test_drilldown_payload(self, index, interface):
        names = interface.facet_names()
        cases = [
            {"terms": [], "query": None, "limit": 10},
            {"terms": [names[0]], "query": None, "limit": 5},
            {"terms": names[:2], "query": None, "limit": 50},
            {"terms": [], "query": "minister", "limit": 10},
            {"terms": [names[0]], "query": "vote", "limit": 10},
        ]
        for case in cases:
            assert canonical_json(
                drilldown_payload(index, **case)
            ) == canonical_json(drilldown_payload(interface, **case))

    def test_document_payload(self, index, interface):
        doc_id = interface.dice([])[0].doc_id
        assert canonical_json(
            document_payload(index, doc_id)
        ) == canonical_json(document_payload(interface, doc_id))


class TestInterop:
    def test_to_interface_round_trip(self, index, interface):
        rebuilt = index.to_interface()
        assert rebuilt.facet_names() == interface.facet_names()
        assert rebuilt.top_level_counts() == interface.top_level_counts()
        assert _ids(rebuilt.dice([])) == _ids(interface.dice([]))


def _ids(documents) -> list[str]:
    return [doc.doc_id for doc in documents]
