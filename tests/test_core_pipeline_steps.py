"""Tests for Steps 1-3: annotation, contextualization, selection."""

from __future__ import annotations

import pytest

from repro.core.annotate import annotate_database, document_terms
from repro.core.contextualize import contextualize
from repro.core.selection import select_facet_terms
from repro.corpus.document import Document
from repro.resources.base import ExternalResource, ResourceName


def doc(doc_id: str, text: str) -> Document:
    return Document(doc_id=doc_id, title="Brief", body=text)


class StubExtractor:
    """Returns capitalized bigrams as 'important terms'."""

    name = None

    def use_background(self, vocabulary):
        self.background = vocabulary

    def extract(self, document):
        words = document.body.split()
        return [w.strip(".,") for w in words if w[:1].isupper()]


class StubResource(ExternalResource):
    name = ResourceName.WIKI_GRAPH

    def __init__(self, table):
        super().__init__()
        self.table = table

    def _query(self, term):
        return list(self.table.get(term.lower(), []))


class TestDocumentTerms:
    def test_words_and_phrases(self):
        terms = document_terms(doc("d", "stock market fell"))
        assert "stock" in terms
        assert "stock market" in terms

    def test_stopwords_excluded_from_words(self):
        terms = document_terms(doc("d", "the cat sat"))
        assert "the" not in terms


class TestAnnotate:
    def test_important_terms_merged_and_deduplicated(self):
        documents = [doc("d1", "Paris hosted talks. Later Paris agreed.")]
        annotated = annotate_database(documents, [StubExtractor(), StubExtractor()])
        assert annotated.important("d1").count("Paris") == 1

    def test_background_offered_to_extractors(self):
        extractor = StubExtractor()
        annotate_database([doc("d1", "some text here")], [extractor])
        assert extractor.background.document_count == 1

    def test_vocabulary_covers_all_documents(self):
        documents = [doc("d1", "alpha beta"), doc("d2", "beta gamma")]
        annotated = annotate_database(documents, [])
        assert annotated.vocabulary.df("beta") == 2
        assert annotated.vocabulary.document_count == 2

    def test_term_sets_normalized(self):
        annotated = annotate_database([doc("d1", "Alpha BETA")], [])
        assert "alpha" in annotated.term_sets["d1"]
        assert "beta" in annotated.term_sets["d1"]

    def test_unknown_doc_returns_empty(self):
        annotated = annotate_database([doc("d1", "x")], [])
        assert annotated.important("nope") == []


class TestContextualize:
    def test_context_terms_added(self):
        documents = [doc("d1", "Paris hosted the talks")]
        annotated = annotate_database(documents, [StubExtractor()])
        resource = StubResource({"paris": ["France", "Europe"]})
        contextualized = contextualize(annotated, [resource])
        assert contextualized.context("d1") == ["France", "Europe"]
        assert "france" in contextualized.expanded_sets["d1"]
        assert "paris" in contextualized.expanded_sets["d1"]  # original kept

    def test_context_deduplicated_across_terms(self):
        documents = [doc("d1", "Paris and Lyon spoke")]
        annotated = annotate_database(documents, [StubExtractor()])
        resource = StubResource({"paris": ["France"], "lyon": ["France"]})
        contextualized = contextualize(annotated, [resource])
        assert contextualized.context("d1").count("France") == 1

    def test_vocabulary_counts_expanded_terms(self):
        documents = [doc("d1", "Paris spoke"), doc("d2", "Paris agreed")]
        annotated = annotate_database(documents, [StubExtractor()])
        resource = StubResource({"paris": ["France"]})
        contextualized = contextualize(annotated, [resource])
        assert contextualized.vocabulary.df("france") == 2

    def test_resource_cache_reused_across_documents(self):
        documents = [doc(f"d{i}", "Paris spoke") for i in range(5)]
        annotated = annotate_database(documents, [StubExtractor()])
        resource = StubResource({"paris": ["France"]})
        contextualize(annotated, [resource])
        assert resource.cache_size == 1


class TestSelection:
    def _database(self):
        # "france" never appears in text but is added to most documents'
        # context; "paris" appears everywhere already.
        documents = [doc(f"d{i}", "Paris spoke plainly today") for i in range(8)]
        documents += [doc("d8", "quiet town news"), doc("d9", "other news")]
        annotated = annotate_database(documents, [StubExtractor()])
        resource = StubResource({"paris": ["France"]})
        return contextualize(annotated, [resource])

    def test_expanded_term_selected(self):
        candidates = select_facet_terms(self._database(), top_k=10)
        assert "france" in [c.term for c in candidates]

    def test_unshifted_term_not_selected(self):
        candidates = select_facet_terms(self._database(), top_k=50)
        assert "paris" not in [c.term for c in candidates]

    def test_scores_sorted_descending(self):
        candidates = select_facet_terms(self._database(), top_k=50)
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_cap(self):
        assert len(select_facet_terms(self._database(), top_k=1)) == 1

    def test_top_k_none_returns_all(self):
        capped = select_facet_terms(self._database(), top_k=1)
        full = select_facet_terms(self._database(), top_k=None)
        assert len(full) >= len(capped)

    def test_invalid_top_k(self):
        with pytest.raises(ValueError):
            select_facet_terms(self._database(), top_k=0)

    def test_invalid_statistic(self):
        with pytest.raises(ValueError):
            select_facet_terms(self._database(), statistic="t-test")

    def test_chi_square_variant_runs(self):
        candidates = select_facet_terms(
            self._database(), top_k=10, statistic="chi-square"
        )
        assert "france" in [c.term for c in candidates]

    def test_frequency_only_is_superset(self):
        both = select_facet_terms(self._database(), top_k=None)
        freq_only = select_facet_terms(
            self._database(), top_k=None, require_both_shifts=False
        )
        assert {c.term for c in both} <= {c.term for c in freq_only}

    def test_candidate_fields_consistent(self):
        for candidate in select_facet_terms(self._database(), top_k=None):
            assert candidate.shift_f == (
                candidate.df_contextualized - candidate.df_original
            )
            assert candidate.shift_f > 0
            assert candidate.score >= 0
