"""Tests for repro.text.phrases."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.text.phrases import candidate_phrases, capitalized_spans, join_span, ngrams


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_unigrams(self):
        assert list(ngrams(["a", "b"], 1)) == [("a",), ("b",)]

    def test_n_larger_than_input(self):
        assert list(ngrams(["a"], 3)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))

    @given(st.lists(st.text(min_size=1, max_size=5), max_size=15), st.integers(1, 4))
    def test_count(self, words, n):
        assert len(list(ngrams(words, n))) == max(0, len(words) - n + 1)


class TestCandidatePhrases:
    def test_simple_extraction(self):
        phrases = candidate_phrases("Stock market fell sharply")
        assert "stock market" in phrases
        assert "stock" in phrases

    def test_no_stopword_boundaries(self):
        phrases = candidate_phrases("president of France spoke")
        assert "of france" not in phrases
        assert "president of france" in phrases  # internal stopwords OK

    def test_no_unigrams_option(self):
        phrases = candidate_phrases("stock market fell", include_unigrams=False)
        assert "stock" not in phrases
        assert "stock market" in phrases

    def test_max_words_cap(self):
        phrases = candidate_phrases("one two three four five", max_words=2)
        assert all(len(p.split()) <= 2 for p in phrases)

    def test_invalid_max_words(self):
        with pytest.raises(ValueError):
            candidate_phrases("text", max_words=0)

    def test_phrases_do_not_cross_sentences(self):
        phrases = candidate_phrases("End market. Stock begins")
        assert "market stock" not in phrases

    def test_duplicates_preserved(self):
        phrases = candidate_phrases("cat cat")
        assert phrases.count("cat") == 2

    def test_pure_number_excluded(self):
        assert "1,000" not in candidate_phrases("about 1,000 people")


class TestCapitalizedSpans:
    def test_multi_word_name(self):
        spans = capitalized_spans("He said Jacques Chirac spoke in Paris")
        texts = [join_span(s) for s in spans]
        assert "Jacques Chirac" in texts
        assert "Paris" in texts

    def test_sentence_initial_word_joins_span(self):
        # Capitalization chunking cannot tell a sentence-initial word
        # from a name part; the span absorbs it (realistic NER noise).
        spans = capitalized_spans("Yesterday Jacques Chirac spoke")
        texts = [join_span(s) for s in spans]
        assert any("Jacques Chirac" in t for t in texts)

    def test_particle_joins(self):
        spans = capitalized_spans("The Bureau of Commerce released data")
        texts = [join_span(s) for s in spans]
        assert any("Bureau of Commerce" in t for t in texts)

    def test_punctuation_breaks_span(self):
        spans = capitalized_spans("PARIS — Supporters cheered")
        texts = [join_span(s) for s in spans]
        assert "PARIS" in texts
        assert "PARIS Supporters" not in texts

    def test_sentence_boundary_breaks_span(self):
        spans = capitalized_spans("He met Smith. Jones arrived.")
        texts = [join_span(s) for s in spans]
        assert "Smith Jones" not in texts

    def test_numbers_excluded(self):
        spans = capitalized_spans("In 2005 Paris hosted talks")
        texts = [join_span(s) for s in spans]
        assert "2005" not in texts

    def test_empty_text(self):
        assert capitalized_spans("") == []
