"""Coverage for small modules: errors, sources, documents, harness tables."""

from __future__ import annotations

import pytest

from repro import errors
from repro.corpus.document import Corpus, Document, GoldAnnotation
from repro.corpus.sources import NEWSBLASTER_SOURCES, NYT_SOURCE
from repro.harness.tables import gold_set_summary


class TestErrors:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigError", "CorpusError", "KnowledgeBaseError",
            "ResourceError", "ExtractionError", "StorageError",
            "HierarchyError", "EvaluationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_catchable_at_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.StorageError("x")


class TestSources:
    def test_24_newsblaster_sources(self):
        assert len(NEWSBLASTER_SOURCES) == 24

    def test_sources_unique(self):
        assert len(set(NEWSBLASTER_SOURCES)) == 24

    def test_nyt_among_feeds(self):
        assert NYT_SOURCE in NEWSBLASTER_SOURCES


class TestDocumentContainers:
    def test_document_len(self):
        doc = Document(doc_id="d", title="Hi", body="there")
        assert len(doc) == len("Hi. there")

    def test_gold_annotation_equality(self):
        a = GoldAnnotation("t", ("E",), ("F",))
        b = GoldAnnotation("t", ("E",), ("F",))
        assert a == b

    def test_corpus_indexing(self):
        corpus = Corpus(
            name="X",
            documents=[Document(doc_id=f"d{i}", title="t", body="b") for i in range(3)],
        )
        assert corpus[1].doc_id == "d1"
        assert len(corpus) == 3
        assert [d.doc_id for d in corpus] == ["d0", "d1", "d2"]

    def test_corpus_sample_capped(self, config):
        corpus = Corpus(
            name="X",
            documents=[Document(doc_id="only", title="t", body="b")],
        )
        sample = corpus.sample(config.rng("cap"), 10)
        assert len(sample) == 1


class TestHarnessTables:
    def test_gold_set_summary(self, config):
        counts = gold_set_summary(config)
        assert set(counts) == {"SNYT", "SNB", "MNYT"}
        assert all(count > 20 for count in counts.values())
