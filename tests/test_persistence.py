"""Tests for offline-expansion persistence."""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicFaceter
from repro.core.persistence import load_expansions, save_expansions
from repro.core.selection import select_facet_terms
from repro.errors import StorageError
from repro.eval.metrics import to_key_set


class TestExpansionPersistence:
    def test_round_trip_preserves_artifacts(self, pipeline_result, tmp_path):
        path = str(tmp_path / "expansions.sqlite")
        save_expansions(pipeline_result.contextualized, path)
        restored = load_expansions(pipeline_result.documents, path)

        original = pipeline_result.contextualized
        for doc in pipeline_result.documents[:20]:
            doc_id = doc.doc_id
            assert restored.annotated.important(doc_id) == (
                original.annotated.important(doc_id)
            )
            assert restored.annotated.term_sets[doc_id] == (
                original.annotated.term_sets[doc_id]
            )
            assert restored.context(doc_id) == original.context(doc_id)
            assert restored.expanded_sets[doc_id] == original.expanded_sets[doc_id]

    def test_selection_identical_after_reload(self, pipeline_result, tmp_path):
        path = str(tmp_path / "expansions.sqlite")
        save_expansions(pipeline_result.contextualized, path)
        restored = load_expansions(pipeline_result.documents, path)
        before = {c.term for c in select_facet_terms(
            pipeline_result.contextualized, top_k=None
        )}
        after = {c.term for c in select_facet_terms(restored, top_k=None)}
        assert to_key_set(before) == to_key_set(after)

    def test_dynamic_faceting_from_reload(self, pipeline_result, tmp_path):
        path = str(tmp_path / "expansions.sqlite")
        save_expansions(pipeline_result.contextualized, path)
        restored = load_expansions(pipeline_result.documents, path)
        faceter = DynamicFaceter(restored)
        ids = [doc.doc_id for doc in pipeline_result.documents[:30]]
        assert faceter.facet_terms(ids)

    def test_unknown_doc_ids_ignored(self, pipeline_result, tmp_path):
        path = str(tmp_path / "expansions.sqlite")
        save_expansions(pipeline_result.contextualized, path)
        subset = pipeline_result.documents[:5]
        restored = load_expansions(subset, path)
        assert restored.annotated.vocabulary.document_count == 5

    def test_documents_without_artifacts_get_empty_sets(
        self, pipeline_result, tmp_path
    ):
        from repro.corpus.document import Document

        path = str(tmp_path / "expansions.sqlite")
        save_expansions(pipeline_result.contextualized, path)
        stranger = Document(doc_id="stranger", title="t", body="b")
        restored = load_expansions([stranger], path)
        assert restored.annotated.important("stranger") == []
        assert restored.expanded_sets["stranger"] == set()

    def test_bad_file_raises(self, pipeline_result, tmp_path):
        path = tmp_path / "junk.sqlite"
        path.write_text("not a database")
        with pytest.raises(StorageError):
            load_expansions(pipeline_result.documents[:2], str(path))


class TestByteDeterminism:
    """DET002 extended to SQLite artifacts: equal state, equal bytes.

    ``term_sets`` holds Python sets, whose iteration order depends on
    how the set was built (table size, insertion history) — not just on
    its contents.  ``save_expansions`` must therefore sort before
    inserting, or logically identical databases serialize differently.
    """

    @staticmethod
    def _database_with(terms: set[str]):
        from repro.core.annotate import AnnotatedDatabase
        from repro.core.contextualize import ContextualizedDatabase
        from repro.corpus.document import Document
        from repro.text.vocabulary import Vocabulary

        doc = Document(doc_id="d1", title="t", body="b")
        vocab = Vocabulary()
        vocab.add_document(terms)
        annotated = AnnotatedDatabase(
            documents=[doc],
            important_terms={"d1": sorted(terms)},
            vocabulary=vocab,
            term_sets={"d1": terms},
        )
        return ContextualizedDatabase(
            annotated=annotated,
            context_terms={"d1": []},
            expanded_sets={"d1": set(terms)},
            vocabulary=vocab,
        )

    def test_equal_sets_built_differently_save_identical_bytes(self, tmp_path):
        import filecmp

        terms = {"alpha", "kiwi", "mango", "zebra"}
        # Same contents, different hash-table history: grow the set past
        # a resize, then shrink it back.  Iterating the two sets can
        # yield different orders even though they compare equal.
        grown = set()
        for filler in [f"filler-{i:03d}" for i in range(64)]:
            grown.add(filler)
        grown.update(terms)
        for filler in [f"filler-{i:03d}" for i in range(64)]:
            grown.discard(filler)
        assert grown == terms

        first = tmp_path / "first.sqlite"
        second = tmp_path / "second.sqlite"
        save_expansions(self._database_with(terms), str(first))
        save_expansions(self._database_with(grown), str(second))
        assert filecmp.cmp(first, second, shallow=False)

    def test_round_trip_twice_is_byte_stable(self, pipeline_result, tmp_path):
        import filecmp

        first = tmp_path / "first.sqlite"
        second = tmp_path / "second.sqlite"
        save_expansions(pipeline_result.contextualized, str(first))
        restored = load_expansions(pipeline_result.documents, str(first))
        save_expansions(restored, str(second))
        assert filecmp.cmp(first, second, shallow=False)
