"""Production ergonomics: incremental cache, baseline, SARIF, --fix, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import (
    AnalysisStats,
    Analyzer,
    Finding,
    LintCache,
    Severity,
    apply_baseline,
    apply_fixes,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.devtools.findings import TraceStep
from repro.devtools.baseline import BaselineError, fingerprint
from repro.devtools.fixer import fix_source

REPO = Path(__file__).resolve().parent.parent

#: A repro.core module with one DET002 finding.
_DIRTY = textwrap.dedent(
    """
    def f(xs):
        s = set(xs)
        return [x for x in s]
    """
)


def _core_tree(tmp_path: Path, source: str = _DIRTY) -> Path:
    """A fake ``repro/core`` package so scoped rules engage.

    Nested under ``pkg/`` so a subprocess cwd of ``tmp_path`` never
    shadows the real ``repro`` package on ``sys.path``.
    """
    root = tmp_path / "pkg" / "repro"
    core = root / "core"
    core.mkdir(parents=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    (core / "__init__.py").write_text("", encoding="utf-8")
    (core / "stage.py").write_text(source, encoding="utf-8")
    return root


def _run_lint(*argv: str, cwd: Path) -> subprocess.CompletedProcess:
    env_src = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )


# -- incremental cache --------------------------------------------------------------


def test_warm_cache_reuses_every_file_and_matches_cold_findings(tmp_path):
    tree = _core_tree(tmp_path)
    analyzer = Analyzer()
    cache = LintCache(tmp_path / "cache", analyzer.signature)
    cold_stats = AnalysisStats()
    cold = analyzer.analyze_paths([tree], cache=cache, stats=cold_stats)
    cache.save()

    warm_cache = LintCache(tmp_path / "cache", analyzer.signature)
    warm_stats = AnalysisStats()
    warm = analyzer.analyze_paths([tree], cache=warm_cache, stats=warm_stats)

    assert warm == cold
    assert cold_stats.files_from_cache == 0
    assert warm_stats.files_from_cache == warm_stats.files_total
    assert warm_stats.project_from_cache is True


def test_editing_a_file_invalidates_its_entry_and_the_project_tier(tmp_path):
    tree = _core_tree(tmp_path)
    analyzer = Analyzer()
    cache = LintCache(tmp_path / "cache", analyzer.signature)
    first = analyzer.analyze_paths([tree], cache=cache, stats=AnalysisStats())
    assert [f.rule_id for f in first] == ["DET002"]
    cache.save()

    (tree / "core" / "stage.py").write_text(
        "def f(xs):\n    s = sorted(set(xs))\n    return [x for x in s]\n",
        encoding="utf-8",
    )
    cache2 = LintCache(tmp_path / "cache", analyzer.signature)
    stats = AnalysisStats()
    second = analyzer.analyze_paths([tree], cache=cache2, stats=stats)
    assert second == []
    assert stats.project_from_cache is False
    # The untouched __init__ files still came from the cache.
    assert stats.files_from_cache == 2


def test_changed_ruleset_signature_starts_cold(tmp_path):
    tree = _core_tree(tmp_path)
    full = Analyzer()
    cache = LintCache(tmp_path / "cache", full.signature)
    full.analyze_paths([tree], cache=cache, stats=AnalysisStats())
    cache.save()

    narrow = Analyzer(select={"DET001"})
    assert narrow.signature != full.signature
    cache2 = LintCache(tmp_path / "cache", narrow.signature)
    stats = AnalysisStats()
    narrow.analyze_paths([tree], cache=cache2, stats=stats)
    assert stats.files_from_cache == 0


def test_corrupt_cache_file_degrades_to_cold_run(tmp_path):
    directory = tmp_path / "cache"
    directory.mkdir()
    (directory / "cache.json").write_text("{not json", encoding="utf-8")
    analyzer = Analyzer()
    cache = LintCache(directory, analyzer.signature)
    tree = _core_tree(tmp_path)
    findings = analyzer.analyze_paths([tree], cache=cache, stats=AnalysisStats())
    assert [f.rule_id for f in findings] == ["DET002"]


def test_finding_round_trips_through_cache_serialization():
    finding = Finding(
        path="a.py",
        line=3,
        col=5,
        rule_id="DET002",
        severity=Severity.WARNING,
        message="msg",
        hint="hint",
    )
    assert Finding.from_dict(finding.to_dict()) == finding


# -- baseline -----------------------------------------------------------------------


def _finding(path="a.py", line=1, rule="FLOW001", message="m") -> Finding:
    return Finding(
        path=path,
        line=line,
        col=1,
        rule_id=rule,
        severity=Severity.ERROR,
        message=message,
    )


def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    known = [_finding(message="old debt")]
    baseline_path = tmp_path / "baseline.json"
    assert write_baseline(known, baseline_path) == 1
    fingerprints = load_baseline(baseline_path)
    fresh, suppressed = apply_baseline(
        [known[0], _finding(message="new bug")], fingerprints
    )
    assert suppressed == 1
    assert [f.message for f in fresh] == ["new bug"]


def test_baseline_fingerprint_ignores_line_numbers():
    assert fingerprint(_finding(line=10)) == fingerprint(_finding(line=99))
    assert fingerprint(_finding(message="a")) != fingerprint(_finding(message="b"))


def test_missing_or_malformed_baseline_raises(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": 99}', encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(bad)


# -- SARIF --------------------------------------------------------------------------


def test_sarif_document_structure_and_rule_index():
    findings = [
        _finding(rule="FLOW001", message="taint"),
        _finding(rule="PARSE", message="syntax error"),
    ]
    rules = Analyzer().rules
    document = json.loads(render_sarif(findings, rules))
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    run = document["runs"][0]
    catalog = run["tool"]["driver"]["rules"]
    ids = [rule["id"] for rule in catalog]
    assert "FLOW001" in ids and "PARSE" in ids
    for result in run["results"]:
        assert catalog[result["ruleIndex"]]["id"] == result["ruleId"]
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1


def test_sarif_severity_levels_map():
    rows = [
        (Severity.ERROR, "error"),
        (Severity.WARNING, "warning"),
        (Severity.INFO, "note"),
    ]
    for severity, level in rows:
        finding = Finding(
            path="a.py", line=1, col=1, rule_id="X001",
            severity=severity, message="m",
        )
        document = json.loads(render_sarif([finding], []))
        assert document["runs"][0]["results"][0]["level"] == level


def test_sarif_output_is_deterministic():
    findings = [_finding(rule="FLOW001"), _finding(rule="DET001", line=2)]
    rules = Analyzer().rules
    assert render_sarif(findings, rules) == render_sarif(findings, rules)


def test_sarif_code_flows_carry_the_finding_trace():
    trace = (
        TraceStep(path="a.py", line=3, message="coroutine view runs on the loop"),
        TraceStep(path="a.py", line=8, message="view calls helper"),
        TraceStep(path="b.py", line=2, message="time.sleep() blocks"),
    )
    with_trace = Finding(
        path="a.py", line=3, col=5, rule_id="ASYNC001",
        severity=Severity.ERROR, message="blocking call", trace=trace,
    )
    plain = _finding(rule="DET001")
    document = json.loads(render_sarif([with_trace, plain], []))
    results = document["runs"][0]["results"]
    flows = results[0]["codeFlows"]
    locations = flows[0]["threadFlows"][0]["locations"]
    assert len(locations) == len(trace)
    for step, entry in zip(trace, locations):
        physical = entry["location"]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == step.path
        assert physical["region"]["startLine"] == step.line
        assert entry["location"]["message"]["text"] == step.message
    # Trace-free findings must not grow an empty codeFlows key.
    assert "codeFlows" not in results[1]


# -- fixer --------------------------------------------------------------------------


def test_fix_sorted_mode_wraps_the_iterable(tmp_path):
    tree = _core_tree(tmp_path)
    findings = Analyzer().analyze_paths([tree])
    assert [f.rule_id for f in findings] == ["DET002"]
    result = apply_fixes(findings, mode="sorted")
    assert result.applied == 1
    fixed = (tree / "core" / "stage.py").read_text(encoding="utf-8")
    assert "for x in sorted(s)" in fixed
    assert Analyzer().analyze_paths([tree]) == []


def test_fix_suppress_mode_appends_noqa(tmp_path):
    tree = _core_tree(tmp_path)
    findings = Analyzer().analyze_paths([tree])
    result = apply_fixes(findings, mode="suppress")
    assert result.applied == 1
    fixed = (tree / "core" / "stage.py").read_text(encoding="utf-8")
    assert "# repro: noqa[DET002]" in fixed
    assert Analyzer().analyze_paths([tree]) == []


def test_fix_dry_run_produces_diff_without_writing(tmp_path):
    tree = _core_tree(tmp_path)
    before = (tree / "core" / "stage.py").read_text(encoding="utf-8")
    findings = Analyzer().analyze_paths([tree])
    result = apply_fixes(findings, mode="sorted", dry_run=True)
    assert "+    return [x for x in sorted(s)]" in result.diff
    assert (tree / "core" / "stage.py").read_text(encoding="utf-8") == before


def test_fix_source_skips_overlapping_and_unfixable():
    source = "x = 1\n"
    finding = _finding(path="mem.py")  # no fix attached
    updated, applied, skipped = fix_source(source, [finding], mode="sorted")
    assert updated == source
    assert applied == 0


def test_suppress_existing_noqa_line_is_not_doubled():
    source = "do()  # repro: noqa[OTHER]\n"
    updated, applied, skipped = fix_source(
        source, [_finding(path="m.py", line=1)], mode="suppress"
    )
    assert updated == source
    assert applied == 0
    assert skipped == 1


# -- CLI surface --------------------------------------------------------------------


def test_cli_list_rules_groups_by_family(tmp_path):
    result = _run_lint("--list-rules", cwd=REPO)
    assert result.returncode == 0
    assert "FLOW — data-flow (taint) invariants" in result.stdout
    assert "DET — determinism" in result.stdout
    assert "(project)" in result.stdout


def test_cli_select_glob_runs_family(tmp_path):
    tree = _core_tree(tmp_path)
    result = _run_lint(
        "--select", "DET*", "--no-cache", str(tree), cwd=tmp_path
    )
    assert result.returncode == 1
    assert "DET002" in result.stdout


def test_cli_unknown_select_pattern_exits_2(tmp_path):
    result = _run_lint("--select", "NOPE*", "--no-cache", ".", cwd=tmp_path)
    assert result.returncode == 2
    assert "unknown rule id or pattern" in result.stderr


def test_cli_baseline_workflow(tmp_path):
    tree = _core_tree(tmp_path)
    wrote = _run_lint(
        str(tree), "--no-cache", "--write-baseline", "lint-baseline.json",
        cwd=tmp_path,
    )
    assert wrote.returncode == 0
    gated = _run_lint(
        str(tree), "--no-cache", "--baseline", "lint-baseline.json",
        cwd=tmp_path,
    )
    assert gated.returncode == 0, gated.stdout + gated.stderr
    assert "no findings" in gated.stdout


def test_cli_sarif_output_file(tmp_path):
    tree = _core_tree(tmp_path)
    result = _run_lint(
        str(tree), "--no-cache", "--format", "sarif",
        "--output", "out.sarif", "--fail-on", "never",
        cwd=tmp_path,
    )
    assert result.returncode == 0
    document = json.loads((tmp_path / "out.sarif").read_text(encoding="utf-8"))
    assert document["runs"][0]["results"][0]["ruleId"] == "DET002"


def test_cli_warm_run_is_byte_identical_and_cached(tmp_path):
    tree = _core_tree(tmp_path)
    argv = (str(tree), "--format", "sarif", "--fail-on", "never", "--stats")
    first = _run_lint(*argv, cwd=tmp_path)
    second = _run_lint(*argv, cwd=tmp_path)
    assert first.returncode == second.returncode == 0
    assert first.stdout == second.stdout
    assert "0 from cache" in first.stderr
    assert "3 from cache" in second.stderr


def test_cli_fix_rewrites_and_reports_clean(tmp_path):
    tree = _core_tree(tmp_path)
    result = _run_lint(str(tree), "--no-cache", "--fix", cwd=tmp_path)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no findings" in result.stdout
    fixed = (tree / "core" / "stage.py").read_text(encoding="utf-8")
    assert "sorted(s)" in fixed
