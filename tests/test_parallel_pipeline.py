"""Determinism suite for the parallel batch pipeline (``repro.parallel``).

The contract under test: for any seed, scale, worker count, chunk size,
and backend, the parallel :class:`~repro.core.pipeline.FacetExtractor`
produces output **bit-for-bit identical** to the serial path — the same
important terms, context terms, expanded sets, facet candidates (terms,
dfs, shifts, scores), and hierarchies.

The default matrix runs at ``REPRO_SCALE=0.05`` so tier-1 stays fast;
the wider seed x scale matrix is marked ``slow`` (enable with
``--run-slow``).
"""

from __future__ import annotations

import os

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ParallelConfig, ReproConfig
from repro.core.export import to_json
from repro.corpus import build_snyt
from repro.errors import ConfigError
from repro.parallel import chunked, map_chunks, parallel_map

DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.05"))


def canonical(result) -> dict:
    """Everything the pipeline produced, in a comparable shape."""
    return {
        "important": result.annotated.important_terms,
        "term_sets": result.annotated.term_sets,
        "context": result.contextualized.context_terms,
        "expanded": result.contextualized.expanded_sets,
        "facets": [
            (c.term, c.df_original, c.df_contextualized, c.shift_f, c.shift_r, c.score)
            for c in result.facet_terms
        ],
        "hierarchies": to_json(result.hierarchies),
    }


@pytest.fixture(scope="module")
def parallel_config() -> ReproConfig:
    return ReproConfig(scale=DEFAULT_SCALE)


@pytest.fixture(scope="module")
def parallel_builder(parallel_config: ReproConfig) -> FacetPipelineBuilder:
    return FacetPipelineBuilder(parallel_config)


@pytest.fixture(scope="module")
def documents(parallel_config: ReproConfig):
    return build_snyt(parallel_config).documents


@pytest.fixture(scope="module")
def serial_result(parallel_builder: FacetPipelineBuilder, documents):
    return canonical(parallel_builder.build().run(documents))


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_workers_match_serial(
        self, parallel_builder, documents, serial_result, workers
    ):
        result = (
            parallel_builder.with_parallel(ParallelConfig(workers=workers))
            .build()
            .run(documents)
        )
        assert canonical(result) == serial_result

    @pytest.mark.parametrize("chunk_size", [1, 7, 1000])
    def test_chunk_size_never_changes_results(
        self, parallel_builder, documents, serial_result, chunk_size
    ):
        result = (
            parallel_builder.with_parallel(
                ParallelConfig(workers=2, chunk_size=chunk_size)
            )
            .build()
            .run(documents)
        )
        assert canonical(result) == serial_result

    def test_process_backend_matches_serial(
        self, parallel_builder, documents, serial_result
    ):
        result = (
            parallel_builder.with_parallel(
                ParallelConfig(workers=2, backend="process")
            )
            .build()
            .run(documents)
        )
        assert canonical(result) == serial_result

    def test_warm_persistent_cache_matches_serial(
        self, parallel_builder, documents, serial_result, tmp_path
    ):
        """A second run answered from SQLite must change nothing."""
        cache = str(tmp_path / "expansions.db")
        parallel = ParallelConfig(workers=4, cache_path=cache)
        cold = parallel_builder.with_parallel(parallel).build().run(documents)
        assert canonical(cold) == serial_result
        warm = parallel_builder.with_parallel(parallel).build().run(documents)
        assert canonical(warm) == serial_result
        stats = list(warm.resource_stats.values())[0]
        assert stats.persistent_hits > 0
        assert stats.misses == 0

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [20080407, 7, 99])
    @pytest.mark.parametrize("scale", [0.05, 0.1])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_seed_scale_worker_matrix(self, seed, scale, workers):
        config = ReproConfig(seed=seed, scale=scale)
        builder = FacetPipelineBuilder(config)
        docs = build_snyt(config).documents
        serial = canonical(builder.build().run(docs))
        parallel = canonical(
            builder.with_parallel(ParallelConfig(workers=workers))
            .build()
            .run(docs)
        )
        assert parallel == serial


class TestCliDeterminism:
    def test_extract_output_identical_across_worker_counts(self, capsys):
        """`python -m repro extract --workers N` is byte-identical to serial
        (modulo the header line announcing the worker count)."""
        from repro.__main__ import main

        def run(argv: list[str]) -> list[str]:
            assert main(argv) == 0
            return capsys.readouterr().out.splitlines()[1:]

        scale = str(DEFAULT_SCALE)
        serial = run(["--scale", scale, "extract", "--workers", "1"])
        pooled = run(["--scale", scale, "extract", "--workers", "4"])
        assert pooled == serial
        assert serial  # the facet listing is not empty


class TestShardingPrimitives:
    def test_chunked_splits_and_preserves_order(self):
        assert chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]
        assert chunked([], 3) == []
        with pytest.raises(ValueError):
            chunked([1], 0)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_map_chunks_merges_in_submission_order(self, workers):
        chunks = chunked(list(range(20)), 3)
        results = map_chunks(
            lambda chunk: [x * x for x in chunk],
            chunks,
            ParallelConfig(workers=workers),
        )
        merged = [x for chunk in results for x in chunk]
        assert merged == [x * x for x in range(20)]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_map_order(self, backend):
        result = parallel_map(
            _double,
            list(range(25)),
            ParallelConfig(workers=4, chunk_size=4, backend=backend),
        )
        assert result == [x * 2 for x in range(25)]

    def test_worker_error_surfaces(self):
        def boom(chunk):
            if 5 in chunk:
                raise RuntimeError("mid-chunk failure")
            return chunk

        with pytest.raises(RuntimeError, match="mid-chunk failure"):
            map_chunks(boom, chunked(list(range(10)), 2), ParallelConfig(workers=3))

    def test_parallel_config_validation(self):
        with pytest.raises(ConfigError):
            ParallelConfig(workers=0)
        with pytest.raises(ConfigError):
            ParallelConfig(chunk_size=0)
        with pytest.raises(ConfigError):
            ParallelConfig(backend="greenlet")
        with pytest.raises(ConfigError):
            ParallelConfig(memory_cache_size=0)

    def test_resolve_chunk_size(self):
        assert ParallelConfig(chunk_size=10).resolve_chunk_size(1000) == 10
        auto = ParallelConfig(workers=4).resolve_chunk_size(1000)
        assert 1 <= auto <= 1000
        assert ParallelConfig(workers=4).resolve_chunk_size(0) == 1


def _double(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    return x * 2
