"""Cross-subsystem property-based invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.corpus.document import Document
from repro.db.inverted_index import InvertedIndex
from repro.db.search import BM25Searcher
from repro.text.tokenizer import normalize_term
from repro.text.vocabulary import Vocabulary
from repro.core.interface import FacetedInterface

_WORDS = st.sampled_from(
    "storm market rally coast flood trade summit treaty vote game".split()
)
_BODIES = st.lists(_WORDS, min_size=1, max_size=12).map(" ".join)


@settings(max_examples=25, deadline=None)
@given(st.lists(_BODIES, min_size=1, max_size=8))
def test_index_df_bounded_by_doc_count(bodies):
    index = InvertedIndex()
    for i, body in enumerate(bodies):
        index.add_document(Document(doc_id=f"d{i}", title="t", body=body))
    for term in ("storm", "market", "storm market"):
        assert 0 <= index.document_frequency(term) <= len(bodies)
        assert len(index.documents_with(term)) == index.document_frequency(term)


@settings(max_examples=25, deadline=None)
@given(st.lists(_BODIES, min_size=2, max_size=8), _WORDS)
def test_bm25_results_sorted_and_relevant(bodies, query):
    index = InvertedIndex()
    for i, body in enumerate(bodies):
        index.add_document(Document(doc_id=f"d{i}", title="t", body=body))
    results = BM25Searcher(index).search(query)
    scores = [r.score for r in results]
    assert scores == sorted(scores, reverse=True)
    matching = index.documents_with(query)
    assert {r.doc_id for r in results} <= matching | set()
    # Every matching document is returned (limit permitting).
    if len(matching) <= 10:
        assert {r.doc_id for r in results} == matching


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.lists(_WORDS, min_size=1, max_size=6), min_size=1, max_size=6)
)
def test_vocabulary_totals_consistent(docs):
    vocabulary = Vocabulary()
    for doc in docs:
        vocabulary.add_document(doc)
    total_tf = sum(vocabulary.tf(t) for t in vocabulary.terms())
    assert total_tf == sum(len(doc) for doc in docs)
    ranks = sorted(vocabulary.rank(t) for t in vocabulary.terms())
    assert ranks == list(range(1, vocabulary.term_count + 1))


class TestInterfaceInvariants:
    def test_dice_subset_of_each_slice(self, pipeline_result):
        interface = FacetedInterface.from_result(pipeline_result)
        names = [f.name for f in interface.facets if f.root.count > 3][:3]
        if len(names) < 2:
            return
        diced = {d.doc_id for d in interface.dice(names[:2])}
        for name in names[:2]:
            sliced = {d.doc_id for d in interface.slice(name)}
            assert diced <= sliced

    def test_root_count_equals_doc_ids(self, pipeline_result):
        for facet in pipeline_result.hierarchies:
            assert facet.root.count == len(facet.root.doc_ids)

    def test_child_docs_subset_of_parent(self, pipeline_result):
        for facet in pipeline_result.hierarchies:
            for node in facet.root.walk():
                for child in node.children:
                    assert child.doc_ids <= node.doc_ids

    def test_facet_counts_never_exceed_subset(self, pipeline_result):
        interface = FacetedInterface.from_result(pipeline_result)
        subset = {doc.doc_id for doc in pipeline_result.documents[:20]}
        for entry in interface.facet_counts_for(subset):
            assert entry.count <= len(subset)


class TestExpansionInvariants:
    def test_expanded_superset_of_original(self, pipeline_result):
        contextualized = pipeline_result.contextualized
        for doc_id, originals in contextualized.annotated.term_sets.items():
            assert originals <= contextualized.expanded_sets[doc_id]

    def test_df_contextualized_at_least_original(self, pipeline_result):
        contextualized = pipeline_result.contextualized
        original = contextualized.annotated.vocabulary
        for term in list(original.terms())[:500]:
            assert contextualized.vocabulary.df(term) >= original.df(term)

    def test_context_terms_normalized_into_sets(self, pipeline_result):
        contextualized = pipeline_result.contextualized
        for doc in pipeline_result.documents[:20]:
            expanded = contextualized.expanded_sets[doc.doc_id]
            for term in contextualized.context(doc.doc_id):
                assert normalize_term(term) in expanded
