"""Tests for facet-hierarchy materialization and the browsing interface."""

from __future__ import annotations

import pytest

from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.hierarchy import build_facet_hierarchies
from repro.core.interface import FacetedInterface
from repro.core.selection import select_facet_terms
from repro.corpus.document import Document
from repro.db.store import DocumentStore
from repro.errors import HierarchyError
from repro.resources.base import ExternalResource, ResourceName


class StubExtractor:
    def use_background(self, vocabulary):
        pass

    def extract(self, document):
        return [w for w in document.body.split() if w[:1].isupper()]


class StubResource(ExternalResource):
    name = ResourceName.WIKI_GRAPH

    def __init__(self, table):
        super().__init__()
        self.table = table

    def _query(self, term):
        return list(self.table.get(term.lower(), []))


@pytest.fixture()
def small_world():
    """12 docs: 5 Paris (-> France, Europe), 3 Berlin (-> Germany,
    Europe), 4 Tokyo (-> Japan, Asia); unique filler words keep the
    vocabulary large enough for meaningful rank bins."""
    documents = [
        Document(
            doc_id=f"p{i}",
            title="Note",
            body=f"Paris spoke first today about matter{i} and case{i}",
        )
        for i in range(5)
    ] + [
        Document(
            doc_id=f"b{i}",
            title="Note",
            body=f"Berlin replied early with point{i} and memo{i}",
        )
        for i in range(3)
    ] + [
        Document(
            doc_id=f"t{i}",
            title="Note",
            body=f"Tokyo answered last night citing item{i} and file{i}",
        )
        for i in range(4)
    ]
    table = {
        "paris": ["France", "Europe"],
        "berlin": ["Germany", "Europe"],
        "tokyo": ["Japan", "Asia"],
    }
    annotated = annotate_database(documents, [StubExtractor()])
    contextualized = contextualize(annotated, [StubResource(table)])
    candidates = select_facet_terms(contextualized, top_k=None)
    return documents, contextualized, candidates


class TestBuildHierarchies:
    def test_country_under_continent(self, small_world):
        _, contextualized, candidates = small_world
        facets = build_facet_hierarchies(candidates, contextualized)
        by_name = {f.name: f for f in facets}
        assert "europe" in by_name
        europe_kids = [c.term for c in by_name["europe"].root.children]
        assert "france" in europe_kids

    def test_counts_include_descendants(self, small_world):
        _, contextualized, candidates = small_world
        facets = build_facet_hierarchies(candidates, contextualized)
        europe = next(f for f in facets if f.name == "europe")
        assert europe.root.count == 8

    def test_min_docs_filter(self, small_world):
        _, contextualized, candidates = small_world
        facets = build_facet_hierarchies(candidates, contextualized, min_docs=5)
        names = {f.name for f in facets}
        assert "asia" not in names  # only 4 docs
        assert "japan" not in names

    def test_edge_validator_breaks_edges(self, small_world):
        _, contextualized, candidates = small_world
        facets = build_facet_hierarchies(
            candidates, contextualized, edge_validator=lambda c, p: False
        )
        assert all(not f.root.children for f in facets)

    def test_invalid_min_docs(self, small_world):
        _, contextualized, candidates = small_world
        with pytest.raises(HierarchyError):
            build_facet_hierarchies(candidates, contextualized, min_docs=0)

    def test_invalid_coverage(self, small_world):
        _, contextualized, candidates = small_world
        with pytest.raises(HierarchyError):
            build_facet_hierarchies(candidates, contextualized, max_coverage=0)

    def test_node_walk_and_find(self, small_world):
        _, contextualized, candidates = small_world
        facets = build_facet_hierarchies(candidates, contextualized)
        europe = next(f for f in facets if f.name == "europe")
        assert europe.root.find("FRANCE") is not None
        assert europe.root.find("atlantis") is None
        assert europe.name in europe.terms()


class TestInterface:
    @pytest.fixture()
    def interface(self, small_world):
        documents, contextualized, candidates = small_world
        facets = build_facet_hierarchies(candidates, contextualized)
        return FacetedInterface(store=DocumentStore(documents), facets=facets)

    def test_top_level_counts(self, interface):
        counts = {c.term: c.count for c in interface.top_level_counts()}
        assert counts["europe"] == 8

    def test_slice(self, interface):
        docs = interface.slice("france")
        assert len(docs) == 5
        assert all(doc.doc_id.startswith("p") for doc in docs)

    def test_dice_intersection(self, interface):
        assert len(interface.dice(["europe", "france"])) == 5
        assert interface.dice(["europe", "japan"]) == []

    def test_dice_empty_constraints_returns_all(self, interface):
        assert len(interface.dice([])) == 12

    def test_unknown_node(self, interface):
        with pytest.raises(HierarchyError):
            interface.node("mars")
        assert not interface.has_node("mars")

    def test_search(self, interface):
        docs = interface.search("tokyo")
        assert docs
        assert all("Tokyo" in doc.body for doc in docs)

    def test_search_with_facets(self, interface):
        docs = interface.search_with_facets("spoke", ["europe"])
        assert docs
        assert all(doc.doc_id.startswith("p") for doc in docs)
        assert interface.search_with_facets("spoke", ["japan"]) == []

    def test_facet_counts_for(self, interface):
        subset = {f"p{i}" for i in range(3)}
        counts = interface.facet_counts_for(subset)
        assert counts[0].count == 3

    def test_children_listing(self, interface):
        kids = interface.children("europe")
        assert any(c.term == "france" for c in kids)

    def test_children_report_true_depth(self, interface):
        """Regression: children() used to hardcode depth=0 on every child."""
        for child in interface.children("europe"):
            assert child.depth == 1
        grandchildren = [
            grandchild
            for child in interface.children("europe")
            for grandchild in interface.children(child.term)
        ]
        for grandchild in grandchildren:
            assert grandchild.depth == 2

    def test_depth_lookup(self, interface):
        assert interface.depth("europe") == 0
        assert interface.depth("france") == 1
        with pytest.raises(HierarchyError):
            interface.depth("mars")


class TestInterfaceExtensions:
    @pytest.fixture()
    def interface(self, small_world):
        documents, contextualized, candidates = small_world
        facets = build_facet_hierarchies(candidates, contextualized)
        return FacetedInterface(store=DocumentStore(documents), facets=facets)

    def test_union_or_semantics(self, interface):
        docs = interface.union(["france", "japan"])
        ids = {d.doc_id for d in docs}
        assert ids == {f"p{i}" for i in range(5)} | {f"t{i}" for i in range(4)}

    def test_union_empty(self, interface):
        assert interface.union([]) == []

    def test_union_unknown_node(self, interface):
        with pytest.raises(HierarchyError):
            interface.union(["mars"])

    def test_breadcrumb_root(self, interface):
        assert interface.breadcrumb("europe") == ["europe"]

    def test_breadcrumb_child(self, interface):
        assert interface.breadcrumb("france") == ["europe", "france"]

    def test_breadcrumb_unknown(self, interface):
        with pytest.raises(HierarchyError):
            interface.breadcrumb("mars")
