"""Tests for repro.text.tokenizer."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.text.tokenizer import normalize_term, sentences, tokenize, word_tokens


class TestTokenize:
    def test_simple_words(self):
        tokens = tokenize("The quick brown fox")
        assert [t.text for t in tokens] == ["The", "quick", "brown", "fox"]

    def test_offsets(self):
        tokens = tokenize("ab cd")
        assert (tokens[0].start, tokens[0].end) == (0, 2)
        assert (tokens[1].start, tokens[1].end) == (3, 5)

    def test_apostrophes_kept_inside_words(self):
        assert [t.text for t in tokenize("don't stop")] == ["don't", "stop"]

    def test_hyphenated_word_is_one_token(self):
        assert [t.text for t in tokenize("well-known fact")][0] == "well-known"

    def test_numbers(self):
        tokens = tokenize("1,000 deaths and 3.14 ratio")
        assert tokens[0].text == "1,000"
        assert tokens[0].is_numeric

    def test_punctuation_skipped(self):
        assert word_tokens("Hello, world!") == ["hello", "world"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_capitalization_flag(self):
        tokens = tokenize("Paris in spring")
        assert tokens[0].is_capitalized
        assert not tokens[1].is_capitalized

    def test_lower_property(self):
        assert tokenize("HELLO")[0].lower == "hello"

    @given(st.text(max_size=200))
    def test_never_raises(self, text):
        for token in tokenize(text):
            assert token.text
            assert 0 <= token.start < token.end <= len(text)

    @given(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ",
            min_size=1,
            max_size=30,
        )
    )
    def test_pure_ascii_letters_single_token(self, text):
        tokens = tokenize(text)
        assert len(tokens) == 1
        assert tokens[0].text == text


class TestSentences:
    def test_basic_split(self):
        assert sentences("One sentence. Another one.") == [
            "One sentence.",
            "Another one.",
        ]

    def test_abbreviation_not_split(self):
        result = sentences("Mr. Smith arrived. He sat down.")
        assert len(result) == 2
        assert result[0] == "Mr. Smith arrived."

    def test_corp_abbreviation_never_splits(self):
        # "Corp." is ambiguous (could end the sentence); the splitter
        # deliberately keeps it attached rather than over-splitting.
        result = sentences("He joined Acme Corp. of Delaware last year.")
        assert len(result) == 1

    def test_question_and_exclamation(self):
        result = sentences("Really? Yes! Fine.")
        assert len(result) == 3

    def test_empty(self):
        assert sentences("") == []
        assert sentences("   ") == []

    def test_single_sentence_no_terminator(self):
        assert sentences("no terminator here") == ["no terminator here"]

    def test_quote_after_period(self):
        result = sentences('He said stop. "Go on," she replied.')
        assert len(result) == 2


class TestNormalizeTerm:
    def test_lowercases(self):
        assert normalize_term("Jacques Chirac") == "jacques chirac"

    def test_strips_punctuation(self):
        assert normalize_term("U.S.") == "u s"

    def test_collapses_whitespace(self):
        assert normalize_term("  New   York  ") == "new york"

    def test_comma_form(self):
        assert normalize_term("Clinton, Hillary Rodham") == "clinton hillary rodham"

    def test_empty(self):
        assert normalize_term("") == ""
        assert normalize_term("...") == ""

    @given(st.text(max_size=100))
    def test_idempotent(self, text):
        once = normalize_term(text)
        assert normalize_term(once) == once
