"""Differential harness: incremental extraction == full recompute.

The incremental pipeline's output contract is *byte-for-byte* equality
with a from-scratch :meth:`FacetExtractor.run` on the union corpus,
after any sequence of appends.  This module certifies it across:

* batch schedules with k ∈ {1, 2, 5} appends, including an empty batch
  and single-document batches, plus a seeded randomized split;
* worker counts {1, 4} and ``batch_queries`` on/off — the full
  execution-mode matrix of the batch pipeline;
* serialization round trips — the state that continues appending after
  a snapshot/restore must land on the same bytes.

"Byte-for-byte" is enforced literally: facet terms (scores as IEEE-754
hex, so not even a ULP of drift passes) and fully-populated hierarchies
are serialized through the canonical-JSON writer and compared as bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ParallelConfig, ReproConfig
from repro.corpus import build_snyt
from repro.core.export import to_dict
from repro.incremental import IncrementalExtractor, IncrementalState, canonical_json

SCALE = 0.05


@pytest.fixture(scope="module")
def inc_config() -> ReproConfig:
    return ReproConfig(scale=SCALE)


@pytest.fixture(scope="module")
def inc_builder(inc_config: ReproConfig) -> FacetPipelineBuilder:
    return FacetPipelineBuilder(inc_config)


@pytest.fixture(scope="module")
def docs(inc_config: ReproConfig):
    return build_snyt(inc_config).documents


def result_bytes(result) -> bytes:
    """Canonical bytes of (facet terms, hierarchies) — the output contract."""
    payload = {
        "facet_terms": [
            [
                c.term,
                c.df_original,
                c.df_contextualized,
                c.shift_f,
                c.shift_r,
                c.score.hex(),
            ]
            for c in result.facet_terms
        ],
        "hierarchies": to_dict(result.hierarchies, include_docs=True),
    }
    return canonical_json(payload).encode("utf-8")


def full_state(result) -> dict:
    """Every intermediate database, for equality beyond the contract."""
    return {
        "important": result.annotated.important_terms,
        "term_sets": result.annotated.term_sets,
        "context": result.contextualized.context_terms,
        "expanded": result.contextualized.expanded_sets,
    }


@pytest.fixture(scope="module")
def baseline(inc_builder: FacetPipelineBuilder, docs):
    result = inc_builder.build().run(docs)
    return result_bytes(result), full_state(result)


def schedule(key: int, docs: list) -> list[list]:
    """Deterministic batch splits; k=5 exercises empty + single-doc."""
    if key == 1:
        return [docs]
    if key == 2:
        return [docs[:1], docs[1:]]  # single-doc first batch
    if key == 5:
        return [docs[:7], [], docs[7:8], docs[8:30], docs[30:]]
    raise AssertionError(key)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("batch_queries", [True, False])
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("batches", [1, 2, 5])
    def test_every_schedule_and_mode_matches_full_recompute(
        self, inc_builder, docs, baseline, batches, workers, batch_queries
    ):
        inc_builder.with_parallel(
            ParallelConfig(workers=workers, batch_queries=batch_queries)
        )
        extractor = inc_builder.build_incremental()
        for batch in schedule(batches, docs):
            extractor.append(batch)
        snapshot = extractor.snapshot_result()
        expected_bytes, expected_state = baseline
        assert result_bytes(snapshot) == expected_bytes
        assert full_state(snapshot) == expected_state

    def test_randomized_seeded_split_matches_full_recompute(
        self, inc_builder, docs, baseline
    ):
        rng = random.Random(20080407)
        cuts = sorted(rng.sample(range(1, len(docs)), 3))
        bounds = [0, *cuts, len(docs)]
        batches = [docs[a:b] for a, b in zip(bounds, bounds[1:])]
        inc_builder.with_parallel(ParallelConfig(workers=1))
        extractor = inc_builder.build_incremental()
        for batch in batches:
            extractor.append(batch)
        assert result_bytes(extractor.snapshot_result()) == baseline[0]

    def test_state_payload_roundtrip_then_append_matches(
        self, inc_builder, docs, baseline
    ):
        """Serialize mid-stream, rebuild, keep appending — same bytes."""
        inc_builder.with_parallel(ParallelConfig(workers=1))
        extractor = inc_builder.build_incremental()
        extractor.append(docs[:20])
        restored_state = IncrementalState.from_payload(
            extractor.state.to_payload()
        )
        resumed = IncrementalExtractor(
            inc_builder.build(), state=restored_state
        )
        resumed.append(docs[20:])
        assert result_bytes(resumed.snapshot_result()) == baseline[0]


class TestAppendSemantics:
    def test_duplicate_doc_id_rejected_across_and_within_batches(
        self, inc_builder, docs
    ):
        inc_builder.with_parallel(ParallelConfig(workers=1))
        extractor = inc_builder.build_incremental()
        extractor.append(docs[:2])
        with pytest.raises(ValueError, match="duplicate document id"):
            extractor.append([docs[1]])
        with pytest.raises(ValueError, match="duplicate document id"):
            extractor.append([docs[5], docs[5]])
        # The failed appends must not have half-ingested anything.
        assert extractor.document_count == 2

    def test_batch_report_accounts_for_the_batch(self, inc_builder, docs):
        inc_builder.with_parallel(ParallelConfig(workers=1))
        extractor = inc_builder.build_incremental()
        first = extractor.append(docs[:10], batch_id="first")
        assert first.batch_id == "first"
        assert first.documents == 10
        assert first.dirty_documents == 0  # nothing older to invalidate
        assert first.facet_terms == len(extractor.facet_terms)
        second = extractor.append(docs[10:20])
        assert second.batch_id == "batch-000001"
        assert second.documents == 10
        assert extractor.batches_done == ["first", "batch-000001"]

    def test_empty_batch_is_a_no_op_for_results(self, inc_builder, docs):
        inc_builder.with_parallel(ParallelConfig(workers=1))
        extractor = inc_builder.build_incremental()
        extractor.append(docs[:15])
        before = result_bytes(extractor.snapshot_result())
        report = extractor.append([])
        assert report.documents == 0
        assert report.touched_terms == 0
        assert result_bytes(extractor.snapshot_result()) == before

    def test_snapshot_result_is_isolated_from_live_state(
        self, inc_builder, docs
    ):
        inc_builder.with_parallel(ParallelConfig(workers=1))
        extractor = inc_builder.build_incremental()
        extractor.append(docs[:10])
        snapshot = extractor.snapshot_result()
        # Vandalize every mutable surface of the snapshot ...
        snapshot.annotated.vocabulary.add_document(["vandal", "terms"])
        snapshot.contextualized.vocabulary.add_document(["vandal"])
        for expanded in snapshot.contextualized.expanded_sets.values():
            expanded.add("vandal")
        # ... and the live extractor must be unaffected.
        extractor.append(docs[10:12])
        fresh = inc_builder.build_incremental()
        fresh.append(docs[:10])
        fresh.append(docs[10:12])
        assert result_bytes(extractor.snapshot_result()) == result_bytes(
            fresh.snapshot_result()
        )

    def test_incremental_config_plumbs_through_repro_config(self, tmp_path):
        config = ReproConfig(scale=SCALE)
        assert config.incremental.checkpoint_dir is None
        custom = ReproConfig(
            scale=SCALE,
            incremental=type(config.incremental)(
                checkpoint_dir=str(tmp_path), checkpoint_every=2
            ),
        )
        assert custom.incremental.checkpoint_every == 2
