"""Tests for repro.text.vocabulary and repro.text.zipf."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.text.vocabulary import Vocabulary
from repro.text.zipf import rank_bin, rank_terms, zipf_fit


def build_vocab(docs):
    vocabulary = Vocabulary()
    for doc in docs:
        vocabulary.add_document(doc)
    return vocabulary


class TestVocabulary:
    def test_counts(self):
        vocab = build_vocab([["a", "a", "b"], ["b", "c"]])
        assert vocab.tf("a") == 2
        assert vocab.df("a") == 1
        assert vocab.df("b") == 2
        assert vocab.document_count == 2
        assert vocab.term_count == 3

    def test_unknown_term(self):
        vocab = build_vocab([["a"]])
        assert vocab.tf("zzz") == 0
        assert vocab.df("zzz") == 0

    def test_rank_order(self):
        vocab = build_vocab([["a", "b"], ["a"], ["a", "c"]])
        assert vocab.rank("a") == 1
        assert vocab.rank("b") in (2, 3)

    def test_rank_ties_alphabetical(self):
        vocab = build_vocab([["b", "a"]])
        assert vocab.rank("a") == 1
        assert vocab.rank("b") == 2

    def test_unknown_term_ranks_last(self):
        vocab = build_vocab([["a", "b"]])
        assert vocab.rank("zzz") == vocab.term_count + 1

    def test_rank_invalidated_on_update(self):
        vocab = build_vocab([["a"]])
        assert vocab.rank("a") == 1
        vocab.add_document(["b"])
        vocab.add_document(["b"])
        assert vocab.rank("b") == 1

    def test_contains(self):
        vocab = build_vocab([["a"]])
        assert "a" in vocab
        assert "b" not in vocab

    def test_empty_terms_skipped(self):
        vocab = build_vocab([["", "a"]])
        assert vocab.term_count == 1

    def test_most_common(self):
        vocab = build_vocab([["a", "b"], ["a"]])
        assert vocab.most_common(1) == [("a", 2)]

    def test_stats(self):
        vocab = build_vocab([["a", "a"]])
        stats = vocab.stats("a")
        assert stats.term_frequency == 2
        assert stats.document_frequency == 1
        assert stats.rank == 1

    @given(st.lists(st.lists(st.sampled_from("abcde"), max_size=8), max_size=10))
    def test_df_never_exceeds_documents(self, docs):
        vocab = build_vocab(docs)
        for term in vocab.terms():
            assert 1 <= vocab.df(term) <= vocab.document_count
            assert vocab.df(term) <= vocab.tf(term)


class TestRankBin:
    def test_rank_one_is_bin_zero(self):
        assert rank_bin(1) == 0

    def test_rank_two(self):
        assert rank_bin(2) == 1

    def test_powers_of_two(self):
        assert rank_bin(4) == 2
        assert rank_bin(8) == 3
        assert rank_bin(1024) == 10

    def test_between_powers(self):
        assert rank_bin(5) == 3
        assert rank_bin(9) == 4

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            rank_bin(0)

    @given(st.integers(1, 10**6))
    def test_monotone(self, rank):
        assert rank_bin(rank) <= rank_bin(rank + 1)


class TestRankTerms:
    def test_deterministic(self):
        ranks = rank_terms({"b": 3, "a": 3, "c": 1})
        assert ranks == {"a": 1, "b": 2, "c": 3}


class TestZipfFit:
    def test_perfect_zipf(self):
        constant = 1000.0
        freqs = [constant / rank for rank in range(1, 50)]
        s, c = zipf_fit(freqs)
        assert math.isclose(s, 1.0, rel_tol=1e-6)
        assert math.isclose(c, constant, rel_tol=1e-6)

    def test_steeper_exponent(self):
        freqs = [1000.0 / rank**2 for rank in range(1, 50)]
        s, _ = zipf_fit(freqs)
        assert math.isclose(s, 2.0, rel_tol=1e-6)

    def test_requires_two_values(self):
        with pytest.raises(ValueError):
            zipf_fit([5])

    def test_ignores_zeros(self):
        s, _ = zipf_fit([100, 50, 0, 0, 33, 25])
        assert s > 0

    def test_corpus_is_zipfian(self, snyt):
        # The synthetic corpus should show a power-law-ish vocabulary.
        from repro.core.annotate import annotate_database

        annotated = annotate_database(list(snyt.documents)[:50], extractors=[])
        freqs = [tf for _, tf in annotated.vocabulary.most_common(300)]
        s, _ = zipf_fit(freqs)
        assert 0.3 < s < 3.0
