"""Batched single-flight query engine: coalescing, bulk I/O, prefetch.

Covers the engine added around the resource layer:

* single-flight coalescing — N threads racing on one fresh term issue
  exactly one backend query; a failed leader wakes its waiters so one of
  them retries;
* batched persistent-cache I/O — ``get_many``/``put_many`` round-trip,
  respect namespace isolation, chunk large key sets under SQLite's
  parameter limit, and upsert on conflict;
* ``context_terms_many`` answers exactly like per-term
  ``context_terms``, and batched contextualization is byte-identical to
  the per-term path at any worker count;
* the vectorized selection tables (``ShiftTables``,
  ``LikelihoodTables``) reproduce the scalar reference bit for bit;
* prefetch only warms caches — pipeline output is identical with it on
  or off, and a failing prefetch degrades to a logged counter.
"""

from __future__ import annotations

import random
import threading
import time

from repro.config import ParallelConfig, ReproConfig
from repro.core.contextualize import contextualize
from repro.core.likelihood import (
    LikelihoodTables,
    chi_square_statistic,
    log_likelihood_ratio,
)
from repro.core.shifts import ShiftTables, frequency_shift, rank_shift
from repro.corpus import build_corpus
from repro.corpus.datasets import DatasetName
from repro.db.resource_cache import PersistentResourceCache
from repro.errors import ResourceError
from repro.observability import MetricsRegistry
from repro.parallel import map_chunks
from repro.resources import ResourcePrefetcher, SingleFlight
from repro.resources.base import ExternalResource, ResourceName
from repro.resources.resilience import SimulatedLatencyResource
from repro.text.vocabulary import Vocabulary


class SlowResource(ExternalResource):
    """Counts backend queries; optionally blocks to force contention."""

    name = ResourceName.GOOGLE

    def __init__(self, delay: float = 0.0):
        super().__init__()
        self.backend_queries = 0
        self.batch_calls = 0
        self._delay = delay
        self._count_lock = threading.Lock()

    def _query(self, term):
        with self._count_lock:
            self.backend_queries += 1
        if self._delay:
            time.sleep(self._delay)
        return [f"ctx {term.lower()}", f"more {term.lower()}"]


class BatchingResource(SlowResource):
    """Overrides the bulk path so batch routing is observable."""

    def query_many(self, terms):
        with self._count_lock:
            self.batch_calls += 1
        return [self._query(term) for term in terms]


class FailOnceResource(ExternalResource):
    """First backend query raises; later ones succeed."""

    name = ResourceName.GOOGLE

    def __init__(self):
        super().__init__()
        self.attempts = 0
        self._lock = threading.Lock()

    def _query(self, term):
        with self._lock:
            self.attempts += 1
            if self.attempts == 1:
                raise ResourceError("first query fails")
        return [f"ok {term}"]


class TestSingleFlight:
    def test_contention_issues_exactly_one_query(self):
        resource = SlowResource(delay=0.05)
        threads = 8
        barrier = threading.Barrier(threads)
        answers: list[list[str]] = [None] * threads  # type: ignore[list-item]

        def worker(index: int) -> None:
            barrier.wait()
            answers[index] = resource.context_terms("Shared Term")

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert resource.backend_queries == 1
        assert all(answer == answers[0] for answer in answers)
        stats = resource.cache_stats
        assert stats.misses == 1
        # Everyone else either coalesced on the flight or hit the LRU
        # the leader populated; nobody re-queried the backend.
        assert stats.coalesced_hits + stats.memory_hits == threads - 1

    def test_failed_leader_wakes_waiters_and_one_retries(self):
        resource = FailOnceResource()
        threads = 4
        barrier = threading.Barrier(threads)
        results: list[object] = [None] * threads

        def worker(index: int) -> None:
            barrier.wait()
            try:
                results[index] = resource.context_terms("flaky")
            except ResourceError as exc:
                results[index] = exc

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        # The failed leader surfaced its error; every other thread
        # retried (or read the retry's cached answer) and succeeded.
        errors = [r for r in results if isinstance(r, ResourceError)]
        successes = [r for r in results if isinstance(r, list)]
        assert len(errors) == 1
        assert len(successes) == threads - 1
        assert all(answer == ["ok flaky"] for answer in successes)

    def test_primitive_claim_resolve_abandon(self):
        flights = SingleFlight()
        flight, leader = flights.claim("k")
        assert leader
        again, second_leader = flights.claim("k")
        assert again is flight and not second_leader
        flights.resolve("k", flight, ("a",))
        assert flight.event.is_set() and flight.result == ("a",)
        assert flights.in_flight == 0
        fresh, leader = flights.claim("k")
        assert leader and fresh is not flight
        flights.abandon("k", fresh)
        assert fresh.event.is_set() and fresh.result is None


class TestBatchedCacheIO:
    def test_get_many_put_many_round_trip(self, tmp_path):
        cache = PersistentResourceCache(str(tmp_path / "cache.db"))
        cache.put_many("ns", {"a": ("x",), "b": ("y", "z")})
        found = cache.get_many("ns", ["a", "b", "missing"])
        assert found == {"a": ("x",), "b": ("y", "z")}
        assert cache.batch_writes == 1
        assert cache.batch_reads == 1

    def test_namespace_isolation(self, tmp_path):
        cache = PersistentResourceCache(str(tmp_path / "cache.db"))
        cache.put_many("ns1", {"term": ("one",)})
        cache.put_many("ns2", {"term": ("two",)})
        assert cache.get_many("ns1", ["term"]) == {"term": ("one",)}
        assert cache.get_many("ns2", ["term"]) == {"term": ("two",)}

    def test_get_many_chunks_large_key_sets(self, tmp_path):
        cache = PersistentResourceCache(str(tmp_path / "cache.db"))
        entries = {f"t{i}": (f"v{i}",) for i in range(1_200)}
        cache.put_many("ns", entries)
        found = cache.get_many("ns", list(entries))
        assert found == entries

    def test_put_upserts_in_place(self, tmp_path):
        cache = PersistentResourceCache(str(tmp_path / "cache.db"))
        cache.put("ns", "term", ("old",))
        cache.put("ns", "term", ("new",))
        assert cache.get("ns", "term") == ("new",)

    def test_wal_enabled_on_file_store(self, tmp_path):
        cache = PersistentResourceCache(str(tmp_path / "cache.db"))
        assert cache.wal_enabled

    def test_memory_store_still_works_without_wal(self):
        cache = PersistentResourceCache(":memory:")
        cache.put_many("ns", {"term": ("v",)})
        assert cache.get_many("ns", ["term"]) == {"term": ("v",)}


class TestContextTermsMany:
    def test_matches_per_term_path(self):
        batched = BatchingResource()
        per_term = SlowResource()
        terms = ["Paris", "  PARIS ", "", "Tokyo", "Lyon", "tokyo"]
        bulk = batched.context_terms_many(terms)
        single = [per_term.context_terms(term) for term in terms]
        assert bulk == single
        assert batched.batch_calls == 1  # one deduplicated bulk call
        assert batched.backend_queries == 3  # paris, tokyo, lyon

    def test_persistent_tier_served_in_bulk(self, tmp_path):
        cache = PersistentResourceCache(str(tmp_path / "cache.db"))
        warm = SlowResource()
        warm.attach_cache(cache)
        warm.context_terms_many(["a", "b", "c"])
        fresh = SlowResource()
        fresh.attach_cache(cache)
        answers = fresh.context_terms_many(["a", "b", "c"])
        assert answers == [["ctx a", "more a"], ["ctx b", "more b"], ["ctx c", "more c"]]
        assert fresh.backend_queries == 0
        assert fresh.cache_stats.persistent_hits == 3

    def test_simulated_latency_batch_is_one_round_trip(self):
        remote = SimulatedLatencyResource(SlowResource(), latency_seconds=0.0)
        remote.context_terms_many(["a", "b", "c", "d"])
        assert remote.simulated_calls == 1


class TestBatchedContextualization:
    def _pipeline_pieces(self):
        config = ReproConfig(scale=0.02)
        corpus = build_corpus(DatasetName.SNYT, config)
        from repro.core.annotate import annotate_database
        from repro.extractors.registry import build_extractors
        from repro.extractors.base import ExtractorName
        from repro.builder import FacetPipelineBuilder

        builder = FacetPipelineBuilder(config)
        extractors = build_extractors(
            [ExtractorName.NAMED_ENTITIES], wikipedia=builder.substrates.wikipedia
        )
        annotated = annotate_database(corpus.documents, extractors)
        return config, builder, annotated

    def test_batched_equals_per_term_at_any_worker_count(self):
        config, builder, annotated = self._pipeline_pieces()
        from repro.resources.registry import build_resources

        def expand(batch_queries: bool, workers: int):
            resources = build_resources(
                [ResourceName.WIKI_GRAPH, ResourceName.WORDNET],
                builder.substrates,
                config,
            )
            return contextualize(
                annotated,
                resources,
                ParallelConfig(
                    workers=workers, batch_queries=batch_queries, prefetch=False
                ),
            )

        baseline = expand(batch_queries=False, workers=1)
        for batch_queries, workers in ((True, 1), (True, 4), (False, 4)):
            other = expand(batch_queries, workers)
            assert other.context_terms == baseline.context_terms
            assert other.expanded_sets == baseline.expanded_sets


class TestVectorizedSelection:
    def test_likelihood_tables_match_scalar_reference(self):
        rng = random.Random(20080407)
        for n in (1, 7, 400):
            tables = LikelihoodTables(n)
            for _ in range(300):
                df = rng.randint(0, n)
                df_c = rng.randint(0, n)
                assert tables.log_likelihood_ratio(df, df_c) == log_likelihood_ratio(
                    df, df_c, n
                )
                assert tables.chi_square(df, df_c) == chi_square_statistic(
                    df, df_c, n
                )

    def test_shift_tables_match_scalar_reference(self):
        rng = random.Random(7)
        original, contextualized = Vocabulary(), Vocabulary()
        words = [f"w{i}" for i in range(150)]
        extra = [f"c{i}" for i in range(40)]
        for _ in range(80):
            original.add_document(rng.sample(words, rng.randint(1, 25)))
            contextualized.add_document(
                rng.sample(words + extra, rng.randint(1, 50))
            )
        tables = ShiftTables(original, contextualized)
        for term in [*words, *extra, "absent"]:
            assert tables.frequency_shift(term) == frequency_shift(
                term, original, contextualized
            )
            assert tables.rank_shift(term) == rank_shift(
                term, original, contextualized
            )


class TestPrefetch:
    def test_pipeline_output_identical_with_prefetch_on_and_off(self):
        from repro.builder import FacetPipelineBuilder

        config = ReproConfig(scale=0.02)

        def facets(prefetch: bool):
            builder = FacetPipelineBuilder(ReproConfig(scale=0.02))
            builder.with_parallel(
                ParallelConfig(workers=4, prefetch=prefetch)
            )
            result = builder.build().run(
                build_corpus(DatasetName.SNYT, config).documents
            )
            return result.facet_terms

        assert facets(prefetch=True) == facets(prefetch=False)

    def test_prefetcher_warms_cache_and_merges_metrics_once(self):
        resource = SlowResource()
        prefetcher = ResourcePrefetcher(
            lambda terms: resource.context_terms_many(list(terms))
        )
        prefetcher.submit(["alpha", "beta"])
        registry = MetricsRegistry()
        prefetcher.drain(into=registry)
        prefetcher.drain(into=registry)  # second drain is a no-op
        assert resource.backend_queries == 2
        assert registry.counters.get("prefetch.batches") == 1
        assert registry.counters.get("prefetch.terms") == 2
        # The warm-up means the main path is now a pure cache hit.
        resource.context_terms("alpha")
        assert resource.backend_queries == 2

    def test_prefetch_errors_degrade_to_counter(self):
        def boom(terms):
            raise RuntimeError("warm-up failed")

        prefetcher = ResourcePrefetcher(boom)
        prefetcher.submit(["x"])
        registry = MetricsRegistry()
        prefetcher.drain(into=registry)
        assert prefetcher.errors == 1
        assert registry.counters.get("prefetch.errors") == 1

    def test_submit_after_drain_is_noop(self):
        prefetcher = ResourcePrefetcher(lambda terms: None)
        prefetcher.drain()
        prefetcher.submit(["late"])
        assert prefetcher.batches_submitted == 0


class TestCompletionHook:
    def test_on_result_fires_per_chunk_serial_and_pooled(self):
        chunks = [[1, 2], [3], [4, 5]]
        for workers in (1, 3):
            seen: list[int] = []
            lock = threading.Lock()

            def on_result(result: int) -> None:
                with lock:
                    seen.append(result)

            totals = map_chunks(
                sum,
                chunks,
                ParallelConfig(workers=workers),
                on_result=on_result,
            )
            assert totals == [3, 3, 9]
            assert sorted(seen) == [3, 3, 9]
