"""Tests for incremental archives and hierarchy metrics."""

from __future__ import annotations

import pytest

from repro.core.archive import FacetArchive
from repro.core.hierarchy import FacetHierarchy, FacetNode
from repro.errors import StorageError
from repro.eval.hierarchy_metrics import hierarchy_metrics
from repro.eval.metrics import to_key_set
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors
from repro.resources.composite import CompositeResource
from repro.resources.registry import build_resources


@pytest.fixture()
def archive(builder):
    from repro.resources.base import ResourceName

    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    resources = build_resources(
        list(ResourceName), builder.substrates, builder.config
    )
    return FacetArchive(
        extractors,
        [CompositeResource(resources)],
        edge_validator=builder.edge_evidence,
    )


class TestFacetArchive:
    def test_empty_archive(self, archive):
        assert len(archive) == 0
        assert archive.facet_terms() == []
        assert archive.hierarchies() == []

    def test_batched_ingestion(self, archive, snyt):
        docs = list(snyt)
        archive.add_documents(docs[:30])
        assert len(archive) == 30
        archive.add_documents(docs[30:60])
        assert len(archive) == 60

    def test_duplicate_rejected(self, archive, snyt):
        archive.add_documents(list(snyt)[:5])
        with pytest.raises(StorageError):
            archive.add_documents([snyt[0]])

    def test_facets_refresh_with_content(self, archive, snyt):
        docs = list(snyt)
        archive.add_documents(docs[:30])
        first = [c.term for c in archive.facet_terms(top_k=50)]
        archive.add_documents(docs[30:90])
        second = [c.term for c in archive.facet_terms(top_k=50)]
        assert first != second

    def test_incremental_equals_batch(self, builder, snyt):
        """Appending in batches equals one-shot processing for
        extractors with no corpus-level state (NE + Wikipedia).  The
        Yahoo stand-in scores against a background corpus, so its
        important terms legitimately depend on what has been ingested —
        hence it is excluded from the equivalence check."""
        from repro.core.annotate import annotate_database
        from repro.core.contextualize import contextualize
        from repro.core.selection import select_facet_terms
        from repro.resources.base import ResourceName

        docs = list(snyt)[:40]
        stateless = [ExtractorName.NAMED_ENTITIES, ExtractorName.WIKIPEDIA]
        resources = build_resources(
            list(ResourceName), builder.substrates, builder.config
        )
        archive = FacetArchive(
            build_extractors(stateless, wikipedia=builder.substrates.wikipedia),
            [CompositeResource(resources)],
        )
        archive.add_documents(docs[:20])
        archive.add_documents(docs[20:])
        incremental = {c.term for c in archive.facet_terms(top_k=None)}

        annotated = annotate_database(
            docs,
            build_extractors(stateless, wikipedia=builder.substrates.wikipedia),
        )
        contextualized = contextualize(
            annotated, [CompositeResource(resources)]
        )
        batch = {c.term for c in select_facet_terms(contextualized, top_k=None)}
        assert to_key_set(incremental) == to_key_set(batch)

    def test_validation(self):
        with pytest.raises(ValueError):
            FacetArchive([], [object()])
        with pytest.raises(ValueError):
            FacetArchive([object()], [])


def node(term, doc_ids, children=()):
    n = FacetNode(term=term, doc_ids=set(doc_ids))
    for child in children:
        n.children.append(child)
        n.doc_ids.update(child.doc_ids)
    return n


class TestHierarchyMetrics:
    def test_simple_forest(self):
        france = node("france", {"a", "b"})
        europe = node("europe", {"c"}, [france])
        asia = node("asia", {"d", "e"})
        metrics = hierarchy_metrics(
            [FacetHierarchy(root=europe), FacetHierarchy(root=asia)],
            collection_size=10,
        )
        assert metrics.facets == 2
        assert metrics.nodes == 3
        assert metrics.max_depth == 1
        assert metrics.branching_facets == 1
        assert metrics.mean_branching_factor == 1.0
        assert metrics.coverage == 0.5
        assert metrics.mean_narrowing == pytest.approx(2 / 3)

    def test_empty_forest(self):
        metrics = hierarchy_metrics([], collection_size=5)
        assert metrics.facets == 0
        assert metrics.coverage == 0.0

    def test_invalid_collection_size(self):
        with pytest.raises(ValueError):
            hierarchy_metrics([], collection_size=-1)

    def test_on_real_pipeline_output(self, pipeline_result):
        metrics = hierarchy_metrics(
            pipeline_result.hierarchies, len(pipeline_result.documents)
        )
        assert metrics.facets > 5
        assert metrics.coverage > 0.5
        assert 0 < metrics.mean_narrowing <= 1.0 or metrics.mean_narrowing == 0
        assert "coverage" in metrics.format_summary()
