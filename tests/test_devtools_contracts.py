"""Tests for contract extraction and the cross-layer drift rules.

Each of the five contract rules (SQL001, SCHEMA001, OBS002, CFG002,
CLI002) gets a fixture snippet that must fire, one that must not, and
one suppressed with ``# repro: noqa``.  The extraction layer itself is
tested for determinism: the ``contracts.json`` payload must be
byte-identical between a cold run and a warm (cache-backed) run, and an
engine-version bump must invalidate the cached contract database.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.devtools import (
    AnalysisStats,
    Analyzer,
    LintCache,
    all_rules,
    render_sarif,
)
from repro.devtools.cache import engine_signature
from repro.devtools.contracts import (
    CONTRACTS_SCHEMA,
    extract_contracts,
)
from repro.devtools.project import ProjectModel

CONTRACT_RULES = {"SQL001", "SCHEMA001", "OBS002", "CFG002", "CLI002"}


def _findings(source: str, module: str, select: "set[str] | None" = None):
    analyzer = Analyzer(select=select)
    return analyzer.analyze_source(
        textwrap.dedent(source), path=f"{module.replace('.', '/')}.py", module=module
    )


def _rule_ids(source: str, module: str, select: "set[str] | None" = None):
    return [f.rule_id for f in _findings(source, module, select)]


# -- registry ---------------------------------------------------------------------


def test_contract_rules_are_registered():
    assert CONTRACT_RULES <= {rule.rule_id for rule in all_rules()}


def test_contract_rules_carry_family_descriptions():
    by_id = {rule.rule_id: rule for rule in all_rules()}
    for rule_id in CONTRACT_RULES:
        assert by_id[rule_id].family_description, rule_id


# -- SQL001: query vs DDL ---------------------------------------------------------


_SQL_MODULE = "repro.db.demo"


def test_sql001_unknown_column_fires():
    source = """
        _SCHEMA = "CREATE TABLE docs (id INTEGER PRIMARY KEY, body TEXT)"

        def setup(conn):
            conn.execute(_SCHEMA)

        def read(conn):
            return conn.execute("SELECT id, missing FROM docs").fetchall()
    """
    findings = _findings(source, _SQL_MODULE, select={"SQL001"})
    assert [f.rule_id for f in findings] == ["SQL001"]
    assert "missing" in findings[0].message
    assert findings[0].trace, "SQL001 must carry a trace to the DDL"


def test_sql001_unknown_table_fires():
    ids = _rule_ids(
        """
        _SCHEMA = "CREATE TABLE docs (id INTEGER PRIMARY KEY)"

        def setup(conn):
            conn.execute(_SCHEMA)

        def read(conn):
            return conn.execute("SELECT id FROM postings").fetchall()
        """,
        _SQL_MODULE,
        select={"SQL001"},
    )
    assert ids == ["SQL001"]


def test_sql001_insert_arity_mismatch_fires():
    ids = _rule_ids(
        """
        _SCHEMA = "CREATE TABLE docs (id INTEGER, body TEXT)"

        def setup(conn):
            conn.execute(_SCHEMA)

        def write(conn, row):
            conn.execute("INSERT INTO docs (id, body) VALUES (?, ?, ?)", row)
        """,
        _SQL_MODULE,
        select={"SQL001"},
    )
    assert ids == ["SQL001"]


def test_sql001_matching_query_is_clean():
    ids = _rule_ids(
        """
        _SCHEMA = "CREATE TABLE docs (id INTEGER PRIMARY KEY, body TEXT)"

        def setup(conn):
            conn.execute(_SCHEMA)

        def read(conn, key):
            conn.execute("INSERT INTO docs (id, body) VALUES (?, ?)", (key, ""))
            return conn.execute(
                "SELECT d.id, d.body FROM docs AS d WHERE d.id = ?", (key,)
            ).fetchall()
        """,
        _SQL_MODULE,
        select={"SQL001"},
    )
    assert ids == []


def test_sql001_noqa_suppresses():
    ids = _rule_ids(
        """
        _SCHEMA = "CREATE TABLE docs (id INTEGER PRIMARY KEY)"

        def setup(conn):
            conn.execute(_SCHEMA)

        def read(conn):
            return conn.execute("SELECT nope FROM docs")  # repro: noqa: SQL001
        """,
        _SQL_MODULE,
        select={"SQL001"},
    )
    assert ids == []


# -- SCHEMA001: payload writer vs reader ------------------------------------------


_SCHEMA_MODULE = "repro.store.demo"


def test_schema001_read_never_written_fires():
    findings = _findings(
        """
        SCHEMA = "repro.demo/1"

        def save(count):
            return {"schema": SCHEMA, "count": count}

        def load(payload):
            if payload.get("schema") != SCHEMA:
                raise ValueError("bad schema")
            return payload["count"], payload["rows"]
        """,
        _SCHEMA_MODULE,
        select={"SCHEMA001"},
    )
    assert [f.rule_id for f in findings] == ["SCHEMA001"]
    assert "rows" in findings[0].message
    assert findings[0].trace, "SCHEMA001 must point at the writer"


def test_schema001_written_never_read_fires():
    findings = _findings(
        """
        SCHEMA = "repro.demo/1"

        def save(count):
            return {"schema": SCHEMA, "count": count, "orphan": 1}

        def load(payload):
            if payload.get("schema") != SCHEMA:
                raise ValueError("bad schema")
            return payload["count"]
        """,
        _SCHEMA_MODULE,
        select={"SCHEMA001"},
    )
    assert [f.rule_id for f in findings] == ["SCHEMA001"]
    assert "orphan" in findings[0].message


def test_schema001_agreeing_sides_are_clean():
    ids = _rule_ids(
        """
        SCHEMA = "repro.demo/1"

        def save(count):
            return {"schema": SCHEMA, "count": count}

        def load(payload):
            if payload.get("schema") != SCHEMA:
                raise ValueError("bad schema")
            return payload["count"]
        """,
        _SCHEMA_MODULE,
        select={"SCHEMA001"},
    )
    assert ids == []


def test_schema001_helper_dict_keys_count_as_written():
    # Sub-payloads built in sibling dict literals of the same writer
    # function belong to the same schema (the incremental-state idiom).
    ids = _rule_ids(
        """
        SCHEMA = "repro.demo/1"

        def save(rows):
            body = {"rows": list(rows)}
            return {"schema": SCHEMA, "body": body}

        def load(payload):
            if payload.get("schema") != SCHEMA:
                raise ValueError("bad schema")
            return payload["body"]["rows"]
        """,
        _SCHEMA_MODULE,
        select={"SCHEMA001"},
    )
    assert ids == []


def test_schema001_noqa_suppresses():
    ids = _rule_ids(
        """
        SCHEMA = "repro.demo/1"

        def save(count):
            return {"schema": SCHEMA, "count": count}

        def load(payload):
            if payload.get("schema") != SCHEMA:  # repro: noqa: SCHEMA001
                raise ValueError("bad schema")
            return payload["count"], payload["rows"]
        """,
        _SCHEMA_MODULE,
        select={"SCHEMA001"},
    )
    assert ids == []


# -- OBS002: observability name near-misses ---------------------------------------


_OBS_MODULE = "repro.core.demo"


def test_obs002_near_duplicate_metric_fires():
    findings = _findings(
        """
        def run(metrics):
            metrics.increment("pipeline.documents")

        def other(metrics):
            metrics.increment("pipeline.docuemnts")
        """,
        _OBS_MODULE,
        select={"OBS002"},
    )
    # The near-miss is symmetric: each singleton is flagged, pointing
    # at the other.
    assert [f.rule_id for f in findings] == ["OBS002", "OBS002"]
    for finding in findings:
        assert finding.trace, "OBS002 must point at the sibling name"


def test_obs002_repeated_name_is_clean():
    ids = _rule_ids(
        """
        def run(metrics):
            metrics.increment("pipeline.documents")

        def other(metrics):
            metrics.increment("pipeline.documents")
        """,
        _OBS_MODULE,
        select={"OBS002"},
    )
    assert ids == []


def test_obs002_distinct_names_are_clean():
    ids = _rule_ids(
        """
        def run(metrics):
            metrics.increment("pipeline.documents")
            metrics.increment("serving.requests")
        """,
        _OBS_MODULE,
        select={"OBS002"},
    )
    assert ids == []


def test_obs002_noqa_suppresses():
    ids = _rule_ids(
        """
        def run(metrics):
            metrics.increment("pipeline.documents")  # repro: noqa: OBS002

        def other(metrics):
            metrics.increment("pipeline.docuemnts")  # repro: noqa: OBS002
        """,
        _OBS_MODULE,
        select={"OBS002"},
    )
    assert ids == []


# -- CFG002: config field liveness ------------------------------------------------


_CFG_MODULE = "repro.config_demo"


def test_cfg002_unread_field_fires():
    findings = _findings(
        """
        from dataclasses import dataclass

        @dataclass
        class DemoConfig:
            used: int = 1
            unused: int = 2

        def consume(cfg: DemoConfig):
            return cfg.used
        """,
        _CFG_MODULE,
        select={"CFG002"},
    )
    assert [f.rule_id for f in findings] == ["CFG002"]
    assert "unused" in findings[0].message


def test_cfg002_post_init_only_read_still_fires():
    # Validation inside __post_init__ must not count as consumption.
    ids = _rule_ids(
        """
        from dataclasses import dataclass

        @dataclass
        class DemoConfig:
            knob: int = 1

            def __post_init__(self):
                if self.knob < 0:
                    raise ValueError("knob")
        """,
        _CFG_MODULE,
        select={"CFG002"},
    )
    assert ids == ["CFG002"]


def test_cfg002_all_fields_read_is_clean():
    ids = _rule_ids(
        """
        from dataclasses import dataclass

        @dataclass
        class DemoConfig:
            used: int = 1
            also_used: int = 2

        def consume(cfg: DemoConfig):
            return cfg.used + cfg.also_used
        """,
        _CFG_MODULE,
        select={"CFG002"},
    )
    assert ids == []


def test_cfg002_getattr_of_unknown_field_fires():
    findings = _findings(
        """
        from dataclasses import dataclass

        @dataclass
        class DemoConfig:
            used: int = 1

        def consume(config: DemoConfig):
            config.used
            return getattr(config, "missing", None)
        """,
        _CFG_MODULE,
        select={"CFG002"},
    )
    assert [f.rule_id for f in findings] == ["CFG002"]
    assert "missing" in findings[0].message


def test_cfg002_noqa_suppresses():
    ids = _rule_ids(
        """
        from dataclasses import dataclass

        @dataclass
        class DemoConfig:
            used: int = 1
            unused: int = 2  # repro: noqa: CFG002

        def consume(cfg: DemoConfig):
            return cfg.used
        """,
        _CFG_MODULE,
        select={"CFG002"},
    )
    assert ids == []


# -- CLI002: flag consumption -----------------------------------------------------


_CLI_MODULE = "repro.cli_demo"


def test_cli002_unconsumed_flag_fires():
    findings = _findings(
        """
        import argparse

        def build():
            parser = argparse.ArgumentParser()
            parser.add_argument("--used")
            parser.add_argument("--dead-flag")
            return parser

        def main():
            args = build().parse_args()
            return args.used
        """,
        _CLI_MODULE,
        select={"CLI002"},
    )
    assert [f.rule_id for f in findings] == ["CLI002"]
    assert "dead_flag" in findings[0].message


def test_cli002_all_flags_consumed_is_clean():
    ids = _rule_ids(
        """
        import argparse

        def build():
            parser = argparse.ArgumentParser()
            parser.add_argument("--used")
            parser.add_argument("--other", dest="renamed")
            return parser

        def main():
            args = build().parse_args()
            return args.used, getattr(args, "renamed")
        """,
        _CLI_MODULE,
        select={"CLI002"},
    )
    assert ids == []


def test_cli002_vars_args_consumes_everything():
    ids = _rule_ids(
        """
        import argparse

        def build():
            parser = argparse.ArgumentParser()
            parser.add_argument("--anything")
            return parser

        def main():
            args = build().parse_args()
            return dict(vars(args))
        """,
        _CLI_MODULE,
        select={"CLI002"},
    )
    assert ids == []


def test_cli002_noqa_suppresses():
    ids = _rule_ids(
        """
        import argparse

        def build():
            parser = argparse.ArgumentParser()
            parser.add_argument("--used")
            parser.add_argument("--dead-flag")  # repro: noqa: CLI002
            return parser

        def main():
            args = build().parse_args()
            return args.used
        """,
        _CLI_MODULE,
        select={"CLI002"},
    )
    assert ids == []


# -- SARIF traces -----------------------------------------------------------------


def test_contract_finding_traces_serialize_to_sarif_code_flows():
    findings = _findings(
        """
        SCHEMA = "repro.demo/1"

        def save(count):
            return {"schema": SCHEMA, "count": count}

        def load(payload):
            if payload.get("schema") != SCHEMA:
                raise ValueError("bad schema")
            return payload["count"], payload["rows"]
        """,
        _SCHEMA_MODULE,
        select={"SCHEMA001"},
    )
    assert findings and findings[0].trace
    sarif = json.loads(render_sarif(findings))
    result = sarif["runs"][0]["results"][0]
    assert result["ruleId"] == "SCHEMA001"
    flows = result["codeFlows"][0]["threadFlows"][0]["locations"]
    messages = [
        loc["location"]["message"]["text"] for loc in flows
    ]
    assert any("writer" in message for message in messages)


# -- extraction determinism + cache lifecycle -------------------------------------


_PKG_SOURCES = {
    "__init__.py": "",
    "store.py": """\
SCHEMA = "repro.pkg-store/1"
_DDL = "CREATE TABLE rows (key TEXT PRIMARY KEY, value TEXT)"


def setup(conn):
    conn.execute(_DDL)


def save(rows):
    return {"schema": SCHEMA, "rows": list(rows)}


def load(payload):
    if payload.get("schema") != SCHEMA:
        raise ValueError("bad schema")
    return payload["rows"]
""",
    "cli.py": """\
import argparse


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--limit", type=int, default=10)
    args = parser.parse_args()
    return args.limit
""",
}


def _write_package(root: Path) -> Path:
    package = root / "pkg"
    package.mkdir()
    for name, source in _PKG_SOURCES.items():
        (package / name).write_text(source, encoding="utf-8")
    return package


def _run(analyzer: Analyzer, cache_dir: Path, package: Path):
    cache = LintCache(cache_dir, analyzer.signature)
    stats = AnalysisStats()
    contracts: dict = {}
    findings = analyzer.analyze_paths(
        [package], cache=cache, stats=stats, contracts_out=contracts
    )
    cache.save()
    return findings, stats, contracts


def test_contracts_payload_cold_vs_warm_is_byte_identical(tmp_path):
    package = _write_package(tmp_path)
    analyzer = Analyzer()
    cold_findings, cold_stats, cold = _run(analyzer, tmp_path / "cache", package)
    warm_findings, warm_stats, warm = _run(analyzer, tmp_path / "cache", package)

    assert cold_stats.contracts_from_cache is False
    assert warm_stats.contracts_from_cache is True
    assert warm_findings == cold_findings
    cold_bytes = json.dumps(cold, indent=2, sort_keys=True)
    warm_bytes = json.dumps(warm, indent=2, sort_keys=True)
    assert cold_bytes == warm_bytes
    assert cold["schema"] == CONTRACTS_SCHEMA
    table_names = [t["name"] for t in cold["sql"]["tables"]]
    assert table_names == ["rows"]
    assert [f["dest"] for f in cold["cli"]["flags"]] == ["limit"]


def test_engine_version_bump_invalidates_cached_contracts(tmp_path, monkeypatch):
    package = _write_package(tmp_path)
    analyzer = Analyzer()
    original = analyzer.signature
    _run(analyzer, tmp_path / "cache", package)

    from repro.devtools import cache as cache_module

    monkeypatch.setattr(cache_module, "ENGINE_VERSION", "bumped-for-test")
    bumped = engine_signature([rule.rule_id for rule in analyzer.rules])
    assert bumped != original

    cache = LintCache(tmp_path / "cache", bumped)
    stats = AnalysisStats()
    contracts: dict = {}
    analyzer.analyze_paths(
        [package], cache=cache, stats=stats, contracts_out=contracts
    )
    assert stats.contracts_from_cache is False
    assert stats.files_from_cache == 0
    assert contracts["schema"] == CONTRACTS_SCHEMA


def test_extract_contracts_is_deterministic_across_instances(tmp_path):
    package = _write_package(tmp_path)
    one = extract_contracts(ProjectModel.from_paths([package])).to_payload()
    two = extract_contracts(ProjectModel.from_paths([package])).to_payload()
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


def test_real_tree_is_clean_of_contract_drift():
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    analyzer = Analyzer(select=CONTRACT_RULES)
    stats = AnalysisStats()
    findings = analyzer.analyze_paths([src], cache=None, stats=stats)
    assert findings == []
