"""Shared fixtures for the test suite.

Heavy artifacts (world, Wikipedia snapshot, small corpus, pipeline run)
are session-scoped so the suite stays fast; they use a reduced scale.

Tests marked ``slow`` (the wide seed x scale determinism matrix) are
deselected by default so the tier-1 run (``python -m pytest -x -q``)
stays fast; enable them with ``--run-slow``.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked 'slow' (wide determinism matrices)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: wide-matrix test excluded from tier-1; enable with --run-slow",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow: run with --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

from repro.builder import FacetPipelineBuilder
from repro.config import ReproConfig
from repro.corpus import build_snyt
from repro.corpus.document import Corpus
from repro.kb.world import World, build_world
from repro.resources.registry import ResourceSubstrates
from repro.wikipedia.database import WikipediaDatabase


@pytest.fixture(scope="session")
def config() -> ReproConfig:
    """Small-scale configuration for fast tests."""
    return ReproConfig(scale=0.1)


@pytest.fixture(scope="session")
def world(config: ReproConfig) -> World:
    return build_world(config)


@pytest.fixture(scope="session")
def builder(config: ReproConfig) -> FacetPipelineBuilder:
    return FacetPipelineBuilder(config)


@pytest.fixture(scope="session")
def substrates(builder: FacetPipelineBuilder) -> ResourceSubstrates:
    return builder.substrates


@pytest.fixture(scope="session")
def wikipedia(substrates: ResourceSubstrates) -> WikipediaDatabase:
    return substrates.wikipedia


@pytest.fixture(scope="session")
def snyt(config: ReproConfig) -> Corpus:
    """A 100-story SNYT corpus (scale 0.1)."""
    return build_snyt(config)


@pytest.fixture(scope="session")
def pipeline_result(builder: FacetPipelineBuilder, snyt: Corpus):
    """One full pipeline run shared by the integration-level tests."""
    return builder.build().run(snyt.documents)
