"""Tests for the SQLite-backed inverted index."""

from __future__ import annotations

import pytest

from repro.corpus.document import Document
from repro.db.inverted_index import InvertedIndex
from repro.db.sql_index import SqlInvertedIndex
from repro.errors import StorageError


def make_doc(doc_id: str, body: str) -> Document:
    return Document(doc_id=doc_id, title="Note", body=body)


@pytest.fixture()
def docs():
    return [
        make_doc("d1", "The storm hit the coast and the storm grew."),
        make_doc("d2", "The stock market rallied on strong earnings."),
        make_doc("d3", "Storm damage closed the coast road."),
    ]


class TestSqlIndex:
    def test_document_frequency(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            assert index.document_frequency("storm") == 2
            assert index.document_frequency("zebra") == 0

    def test_term_frequency(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            assert index.term_frequency("storm", "d1") == 2
            assert index.term_frequency("storm", "d2") == 0

    def test_documents_with(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            assert index.documents_with("coast") == {"d1", "d3"}

    def test_conjunctive_lookup(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            assert index.documents_with_all(["storm", "coast"]) == {"d1", "d3"}
            assert index.documents_with_all(["storm", "market"]) == set()
            assert index.documents_with_all([]) == set()

    def test_phrases_indexed(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            assert index.document_frequency("stock market") == 1

    def test_duplicate_rejected(self, docs):
        with SqlInvertedIndex() as index:
            index.add_document(docs[0])
            with pytest.raises(StorageError):
                index.add_document(docs[0])

    def test_top_terms(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            top = dict(index.top_terms(5))
            assert top.get("storm") == 2

    def test_document_count(self, docs):
        with SqlInvertedIndex() as index:
            index.add_documents(docs)
            assert index.document_count == 3

    def test_file_persistence(self, docs, tmp_path):
        path = str(tmp_path / "index.sqlite")
        index = SqlInvertedIndex(path)
        index.add_documents(docs)
        index.close()
        reopened = SqlInvertedIndex(path)
        assert reopened.document_count == 3
        assert reopened.document_frequency("storm") == 2
        reopened.close()

    def test_agrees_with_memory_index(self, docs):
        memory = InvertedIndex()
        memory.add_documents(docs)
        with SqlInvertedIndex() as sql:
            sql.add_documents(docs)
            for term in ("storm", "coast", "market", "stock market", "none"):
                assert sql.document_frequency(term) == memory.document_frequency(
                    term
                )
                assert sql.documents_with(term) == memory.documents_with(term)

    def test_agrees_on_generated_corpus(self, snyt):
        sample = list(snyt)[:25]
        memory = InvertedIndex()
        memory.add_documents(sample)
        with SqlInvertedIndex() as sql:
            sql.add_documents(sample)
            assert sql.document_count == memory.document_count
            for term, _df in memory.vocabulary.most_common(50):
                assert sql.document_frequency(term) == memory.document_frequency(
                    term
                )
