"""Tests for the simulated web and search engine."""

from __future__ import annotations

import pytest

from repro.websim.engine import SearchEngineSim
from repro.websim.pages import BOILERPLATE, WebPage, build_web_corpus


@pytest.fixture(scope="module")
def web(world, config):
    return build_web_corpus(world, config)


@pytest.fixture(scope="module")
def engine(web):
    return SearchEngineSim(web)


class TestWebCorpus:
    def test_pages_per_entity(self, world, web):
        entity_pages = [p for p in web if p.url.startswith("web://entity/")]
        assert len(entity_pages) == 3 * len(world.entities)

    def test_facet_pages_exist(self, world, web):
        facet_pages = [p for p in web if p.url.startswith("web://facet/")]
        assert len(facet_pages) == len(world.taxonomy)

    def test_entity_pages_mention_facet_terms(self, world, web):
        chirac_pages = [p for p in web if "Jacques Chirac" in p.text]
        assert chirac_pages
        assert any("Political Leaders" in p.text for p in chirac_pages)

    def test_deterministic(self, world, config):
        again = build_web_corpus(world, config)
        assert [p.url for p in again][:20] == [
            p.url for p in build_web_corpus(world, config)
        ][:20]


class TestSearch:
    def test_entity_query_finds_entity_pages(self, engine):
        snippets = engine.search("Jacques Chirac", limit=5)
        assert snippets
        assert any("Chirac" in s.title or "Chirac" in s.text for s in snippets)

    def test_title_match_boost(self, engine):
        snippets = engine.search("People", limit=3)
        assert snippets
        assert "people" in snippets[0].title.lower()

    def test_empty_query(self, engine):
        assert engine.search("") == []
        assert engine.search("the of and") == []

    def test_unknown_query(self, engine):
        assert engine.search("xyzzyqwertyzzz") == []

    def test_limit_respected(self, engine):
        assert len(engine.search("Chirac", limit=2)) <= 2


class TestContextMining:
    def test_facet_terms_in_context(self, engine):
        terms = engine.frequent_snippet_terms("Jacques Chirac", limit=30)
        joined = " ".join(terms)
        assert "political" in joined or "france" in joined or "leaders" in joined

    def test_query_words_excluded(self, engine):
        terms = engine.frequent_snippet_terms("Jacques Chirac", limit=30)
        assert "jacques" not in terms
        assert "chirac" not in terms

    def test_limit(self, engine):
        assert len(engine.frequent_snippet_terms("France", limit=5)) <= 5

    def test_fragment_suppression(self):
        # "united" occurs only inside "united states" -> suppressed.
        pages = [
            WebPage(f"u{i}", "United States", "United States . United States")
            for i in range(3)
        ]
        engine = SearchEngineSim(pages)
        terms = engine.frequent_snippet_terms("america usa united", limit=20)
        # Query words excluded; remaining mined phrases should prefer
        # the full phrase over the fragment "states".
        if "states" in terms and "united states" in terms:
            assert terms.index("united states") < terms.index("states")

    def test_some_noise_present(self, engine):
        """Google context should contain SOME boilerplate (the paper's
        precision-drop mechanism) across a range of queries."""
        noise = 0
        for query in ("Jacques Chirac", "France", "Federal Reserve"):
            terms = engine.frequent_snippet_terms(query, limit=30)
            noise += sum(1 for t in terms if t in BOILERPLATE)
        assert noise >= 1
