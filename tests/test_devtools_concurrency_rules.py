"""Tests for the concurrency/lifecycle rules (ASYNC*/LEAK001/RACE002).

Each rule gets a triggering fixture, a clean fixture, and a
``# repro: noqa`` suppression; ASYNC001 additionally proves the
acceptance criterion — a blocking call two frames below a coroutine
that the syntactic SRV001 cannot see — and LEAK001's ``--fix`` rewrite
is checked for idempotency (applying it removes the finding).
"""

from __future__ import annotations

import ast
import textwrap

from repro.devtools import Analyzer
from repro.devtools.fixer import fix_source


def check(source: str, module: str = "repro.serving.app") -> list:
    return Analyzer().analyze_source(
        textwrap.dedent(source),
        path=f"{module.replace('.', '/')}.py",
        module=module,
    )


def rule_ids(findings: list) -> set[str]:
    return {finding.rule_id for finding in findings}


# -- ASYNC001 ---------------------------------------------------------------------

TWO_DEEP_BLOCKING = """
    import time

    async def view(request):
        return handler(request)

    def handler(request):
        return helper(request)

    def helper(request):
        time.sleep(0.2)
        return request
"""


def test_async001_catches_blocking_call_two_frames_deep():
    findings = check(TWO_DEEP_BLOCKING)
    assert rule_ids(findings) == {"ASYNC001"}
    finding = findings[0]
    assert "time.sleep" in finding.message
    assert "view" in finding.message


def test_async001_finds_what_the_syntactic_srv001_misses():
    # The acceptance fixture: SRV001 only looks inside ``async def``
    # bodies, so the transitive call is invisible to it.
    findings = check(TWO_DEEP_BLOCKING)
    assert "SRV001" not in rule_ids(findings)
    assert "ASYNC001" in rule_ids(findings)


def test_async001_trace_walks_the_call_chain():
    findings = check(TWO_DEEP_BLOCKING)
    trace = findings[0].trace
    # coroutine root -> view calls handler -> handler calls helper ->
    # the blocking call itself.
    assert len(trace) == 4
    assert "event loop" in trace[0].message
    assert "blocks" in trace[-1].message
    payload = findings[0].to_dict()
    assert len(payload["trace"]) == 4


def test_async001_executor_hop_is_clean():
    findings = check(
        """
        import asyncio
        import time

        async def view(request):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, handler, request)

        def handler(request):
            time.sleep(0.2)
            return request
        """
    )
    assert "ASYNC001" not in rule_ids(findings)


def test_async001_suppressed_by_noqa():
    findings = check(
        """
        import time

        async def view(request):
            return handler(request)

        def handler(request):
            time.sleep(0.2)  # repro: noqa[ASYNC001]
            return request
        """
    )
    assert "ASYNC001" not in rule_ids(findings)


# -- ASYNC002 ---------------------------------------------------------------------


def test_async002_flags_a_dropped_coroutine_call():
    findings = check(
        """
        async def job():
            return 1

        async def view(request):
            job()
            return request
        """
    )
    assert rule_ids(findings) == {"ASYNC002"}


def test_async002_awaited_and_scheduled_calls_are_clean():
    findings = check(
        """
        import asyncio

        async def job():
            return 1

        async def view(request):
            await job()
            task = asyncio.create_task(job())
            return await task
        """
    )
    assert "ASYNC002" not in rule_ids(findings)


def test_async002_suppressed_by_noqa():
    findings = check(
        """
        async def job():
            return 1

        async def view(request):
            job()  # repro: noqa[ASYNC002]
            return request
        """
    )
    assert "ASYNC002" not in rule_ids(findings)


# -- ASYNC003 ---------------------------------------------------------------------


def test_async003_flags_await_under_a_sync_lock():
    findings = check(
        """
        async def view(self, request):
            with self._lock:
                await self.refresh()
            return request
        """
    )
    assert rule_ids(findings) == {"ASYNC003"}


def test_async003_lock_released_before_await_is_clean():
    findings = check(
        """
        async def view(self, request):
            with self._lock:
                snapshot = dict(self._cache)
            await self.refresh(snapshot)
            return request
        """
    )
    assert "ASYNC003" not in rule_ids(findings)


def test_async003_async_lock_is_clean():
    findings = check(
        """
        async def view(self, request):
            async with self._lock:
                await self.refresh()
            return request
        """
    )
    assert "ASYNC003" not in rule_ids(findings)


def test_async003_suppressed_by_noqa():
    findings = check(
        """
        async def view(self, request):
            with self._lock:
                await self.refresh()  # repro: noqa[ASYNC003]
            return request
        """
    )
    assert "ASYNC003" not in rule_ids(findings)


# -- LEAK001 ----------------------------------------------------------------------

EXCEPTION_PATH_LEAK = """
    import sqlite3
    from contextlib import closing

    def load(path):
        conn = sqlite3.connect(path)
        try:
            rows = conn.execute("SELECT 1").fetchall()
        except sqlite3.Error:
            return []
        conn.close()
        return rows
"""


def test_leak001_flags_the_exception_path_leak():
    # The swallow-and-return handler also trips FLOW002; this test only
    # pins down the lifecycle finding.
    findings = [
        f
        for f in check(EXCEPTION_PATH_LEAK, module="repro.db.store")
        if f.rule_id == "LEAK001"
    ]
    assert len(findings) == 1
    assert "some paths" in findings[0].message


def test_leak001_fix_wraps_in_closing_and_is_idempotent():
    source = textwrap.dedent(EXCEPTION_PATH_LEAK)
    findings = check(EXCEPTION_PATH_LEAK, module="repro.db.store")
    fixed, applied, skipped = fix_source(source, findings)
    assert applied == 1 and skipped == 0
    assert "with closing(sqlite3.connect(path)) as conn:" in fixed
    ast.parse(fixed)  # the rewrite must stay valid Python
    refixed = Analyzer().analyze_source(
        fixed, path="repro/db/store.py", module="repro.db.store"
    )
    assert "LEAK001" not in rule_ids(refixed)
    again, applied_again, _ = fix_source(fixed, refixed)
    assert applied_again == 0 and again == fixed


def test_leak001_closed_on_every_path_is_clean():
    findings = check(
        """
        import sqlite3

        def load(path):
            conn = sqlite3.connect(path)
            try:
                return conn.execute("SELECT 1").fetchall()
            finally:
                conn.close()
        """,
        module="repro.db.store",
    )
    assert "LEAK001" not in rule_ids(findings)


def test_leak001_suppressed_by_noqa():
    findings = check(
        """
        import sqlite3

        def load(path):
            conn = sqlite3.connect(path)  # repro: noqa[LEAK001]
            return conn
        """,
        module="repro.db.store",
    )
    assert "LEAK001" not in rule_ids(findings)


# -- RACE002 ----------------------------------------------------------------------

LOOP_THREAD_RACE = """
    import threading

    class Index:
        def __init__(self):
            self._pending = []
            self._lock = threading.Lock()

        def start(self):
            thread = threading.Thread(target=self._worker)
            thread.start()

        def _worker(self):
            self._pending.append("job")

        async def view(self, request):
            return len(self._pending)
"""


def test_race002_flags_unlocked_shared_attribute():
    findings = check(LOOP_THREAD_RACE)
    assert "RACE002" in rule_ids(findings)
    finding = next(f for f in findings if f.rule_id == "RACE002")
    assert "_pending" in finding.message
    assert len(finding.trace) >= 2


def test_race002_locked_mutation_is_clean():
    findings = check(
        """
        import threading

        class Index:
            def __init__(self):
                self._pending = []
                self._lock = threading.Lock()

            def start(self):
                thread = threading.Thread(target=self._worker)
                thread.start()

            def _worker(self):
                with self._lock:
                    self._pending.append("job")

            async def view(self, request):
                return len(self._pending)
        """
    )
    assert "RACE002" not in rule_ids(findings)


def test_race002_suppressed_by_noqa():
    findings = check(
        """
        import threading

        class Index:
            def __init__(self):
                self._pending = []

            def start(self):
                thread = threading.Thread(target=self._worker)
                thread.start()

            def _worker(self):
                self._pending.append("job")  # repro: noqa[RACE002]

            async def view(self, request):
                return len(self._pending)
        """
    )
    assert "RACE002" not in rule_ids(findings)
