"""Tests for facet-forest export/import."""

from __future__ import annotations

import json

from repro.core.export import (
    from_dict,
    to_dict,
    to_flat_rows,
    to_json,
    to_text_tree,
)
from repro.core.hierarchy import FacetHierarchy, FacetNode


def forest():
    france = FacetNode(term="france", doc_ids={"a", "b"})
    europe = FacetNode(term="europe", doc_ids={"a", "b", "c"}, children=[france])
    asia = FacetNode(term="asia", doc_ids={"d"})
    return [FacetHierarchy(root=europe), FacetHierarchy(root=asia)]


class TestToDict:
    def test_structure(self):
        data = to_dict(forest())
        assert data[0]["term"] == "europe"
        assert data[0]["count"] == 3
        assert data[0]["children"][0]["term"] == "france"
        assert "children" not in data[1]

    def test_doc_ids_optional(self):
        assert "doc_ids" not in to_dict(forest())[0]
        with_docs = to_dict(forest(), include_docs=True)
        assert with_docs[0]["doc_ids"] == ["a", "b", "c"]


class TestJson:
    def test_round_trips_through_json(self):
        text = to_json(forest(), include_docs=True)
        data = json.loads(text)
        rebuilt = from_dict(data)
        assert rebuilt[0].root.term == "europe"
        assert rebuilt[0].root.doc_ids == {"a", "b", "c"}
        assert rebuilt[0].root.children[0].term == "france"

    def test_rebuild_without_docs_sums_children(self):
        data = json.loads(to_json(forest()))
        rebuilt = from_dict(data)
        # Counts rebuilt from children where doc ids were omitted.
        assert rebuilt[0].root.doc_ids == rebuilt[0].root.children[0].doc_ids


class TestTextTree:
    def test_rendering(self):
        text = to_text_tree(forest())
        assert "europe (3)" in text
        assert "  - france (2)" in text

    def test_max_facets(self):
        text = to_text_tree(forest(), max_facets=1)
        assert "asia" not in text


class TestFlatRows:
    def test_rows(self):
        rows = to_flat_rows(forest())
        assert ("europe", "europe", "europe", 3) in rows
        assert ("europe", "europe/france", "france", 2) in rows
        assert ("asia", "asia", "asia", 1) in rows

    def test_row_count_equals_nodes(self):
        assert len(to_flat_rows(forest())) == 3

    def test_on_pipeline_output(self, pipeline_result):
        rows = to_flat_rows(pipeline_result.hierarchies)
        total_nodes = sum(f.size for f in pipeline_result.hierarchies)
        assert len(rows) == total_nodes
        for facet, path, term, count in rows[:50]:
            assert path.endswith(term)
            assert path.startswith(facet)
            assert count >= 0
