"""Tests for the ASGI service (repro.serving.app/server/testing).

Views are driven in-process through :class:`AsgiClient` (the real
scope/receive/send path — routing, executor dispatch, timeouts, ETags)
plus one socket-level test of the stdlib HTTP bridge.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.config import ServingConfig
from repro.core.interface import FacetedInterface
from repro.errors import ConfigError
from repro.serving import AsgiClient, FacetApp, FacetIndex, run_in_thread
from repro.serving.renderers import PAYLOAD_SCHEMA, canonical_json, drilldown_payload


@pytest.fixture(scope="module")
def interface(pipeline_result) -> FacetedInterface:
    return FacetedInterface.from_result(pipeline_result)


@pytest.fixture(scope="module")
def index(pipeline_result, tmp_path_factory) -> FacetIndex:
    path = str(tmp_path_factory.mktemp("serving-app") / "facets.idx")
    built = FacetIndex.build(pipeline_result, path=path)
    yield built
    built.close()


@pytest.fixture(scope="module")
def client(index) -> AsgiClient:
    return AsgiClient(FacetApp(index))


class TestRoutes:
    def test_facets_ok(self, client, interface):
        response = client.get("/facets")
        assert response.status == 200
        assert response.header("content-type").startswith("application/json")
        payload = response.json()
        assert payload["schema"] == PAYLOAD_SCHEMA
        assert payload["document_count"] == interface.document_count
        assert len(payload["facets"]) == len(interface.facet_names())
        first = payload["facets"][0]
        assert set(first) == {"term", "count", "depth"}

    def test_root_aliases_facets(self, client):
        assert client.get("/").json() == client.get("/facets").json()

    def test_children(self, client, interface):
        term = interface.facet_names()[0]
        payload = client.get(f"/facets/{term}/children").json()
        assert payload["term"] == term
        assert payload["depth"] == 0
        assert payload["breadcrumb"] == [term]
        for child in payload["children"]:
            assert child["depth"] == 1

    def test_document(self, client, interface):
        doc = interface.dice([])[0]
        payload = client.get(f"/documents/{doc.doc_id}").json()
        assert payload["doc_id"] == doc.doc_id
        assert payload["body"] == doc.body

    def test_healthz(self, client, index):
        response = client.get("/healthz")
        assert response.status == 200
        assert response.header("cache-control") == "no-store"
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["checksum"] == index.checksum

    def test_head_has_headers_but_no_body(self, client):
        response = client.head("/facets")
        assert response.status == 200
        assert response.body == b""
        assert int(response.header("content-length")) > 0

    def test_html_renderer(self, client, interface):
        response = client.get("/facets?format=html")
        assert response.status == 200
        assert response.header("content-type").startswith("text/html")
        assert interface.facet_names()[0] in response.text

    def test_accept_header_selects_html(self, client):
        response = client.get("/facets", headers={"Accept": "text/html"})
        assert response.header("content-type").startswith("text/html")


class TestDrilldown:
    def test_drilldown_json_schema(self, client, interface):
        term = interface.facet_names()[0]
        payload = client.get(f"/drilldown?facet={term}&limit=5").json()
        assert payload["query"] == {"terms": [term], "q": "", "limit": 5}
        assert payload["total"] == len(interface.dice([term]))
        assert len(payload["documents"]) <= 5
        assert payload["facet_counts"]

    def test_drilldown_http_matches_interface_bytes(self, client, interface):
        """The acceptance criterion: HTTP body == in-memory answer, byte-level."""
        term = interface.facet_names()[0]
        response = client.get(f"/drilldown?facet={term}&limit=7")
        expected = canonical_json(
            drilldown_payload(interface, terms=[term], query=None, limit=7)
        )
        assert response.body == expected

    def test_drilldown_with_query_matches_interface_bytes(
        self, client, interface
    ):
        response = client.get("/drilldown?q=minister&limit=5")
        expected = canonical_json(
            drilldown_payload(interface, terms=[], query="minister", limit=5)
        )
        assert response.body == expected

    def test_multi_facet_dice(self, client, interface):
        names = interface.facet_names()[:2]
        url = "/drilldown?" + "&".join(f"facet={name}" for name in names)
        payload = client.get(url).json()
        assert payload["total"] == len(interface.dice(names))


class TestErrors:
    def test_unknown_route_404(self, client):
        response = client.get("/nope")
        assert response.status == 404
        error = response.json()["error"]
        assert error["status"] == 404
        assert "/nope" in error["message"]

    def test_unknown_facet_404(self, client):
        response = client.get("/facets/zz-missing/children")
        assert response.status == 404
        assert "zz-missing" in response.json()["error"]["message"]

    def test_unknown_document_404(self, client):
        assert client.get("/documents/zz-missing").status == 404

    def test_bad_limit_400(self, client):
        response = client.get("/drilldown?limit=banana")
        assert response.status == 400
        assert "limit" in response.json()["error"]["message"]

    def test_limit_above_cap_400(self, client):
        response = client.get("/drilldown?limit=100000")
        assert response.status == 400
        assert response.json()["error"]["status"] == 400

    def test_limit_zero_400(self, client):
        assert client.get("/drilldown?limit=0").status == 400

    def test_method_not_allowed_405(self, client):
        assert client.request("POST", "/facets").status == 405

    def test_errors_are_not_cached(self, client):
        response = client.get("/nope")
        assert response.header("cache-control") == "no-store"


class TestCaching:
    def test_etag_present_and_stable(self, client):
        first = client.get("/facets")
        second = client.get("/facets")
        assert first.header("etag") == second.header("etag")
        assert first.header("cache-control").startswith("public, max-age=")

    def test_etag_varies_by_url(self, client):
        assert client.get("/facets").header("etag") != client.get(
            "/drilldown"
        ).header("etag")

    def test_if_none_match_304(self, client):
        etag = client.get("/facets").header("etag")
        response = client.get("/facets", headers={"If-None-Match": etag})
        assert response.status == 304
        assert response.body == b""
        assert response.header("etag") == etag

    def test_if_none_match_star_304(self, client):
        assert (
            client.get("/facets", headers={"If-None-Match": "*"}).status == 304
        )

    def test_stale_etag_revalidates(self, client):
        response = client.get("/facets", headers={"If-None-Match": '"stale"'})
        assert response.status == 200

    def test_no_etag_without_checksum(self, interface):
        memory_client = AsgiClient(FacetApp(interface))
        response = memory_client.get("/facets")
        assert response.status == 200
        assert response.header("etag") is None
        assert response.header("cache-control") == "no-cache"


class _SlowBrowser:
    """Delegates to an interface but stalls, to trip the time budget."""

    def __init__(self, inner: FacetedInterface, delay: float) -> None:
        self._inner = inner
        self._delay = delay

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def top_level_counts(self):
        time.sleep(self._delay)
        return self._inner.top_level_counts()


class TestLimitsAndTimeouts:
    def test_time_budget_exceeded_503(self, interface):
        config = ServingConfig(time_budget_seconds=0.05)
        slow_client = AsgiClient(
            FacetApp(_SlowBrowser(interface, delay=0.5), config=config)
        )
        response = slow_client.get("/facets")
        assert response.status == 503
        assert "time budget" in response.json()["error"]["message"]

    def test_healthz_ignores_time_budget(self, interface):
        config = ServingConfig(time_budget_seconds=0.05)
        slow_client = AsgiClient(
            FacetApp(_SlowBrowser(interface, delay=0.5), config=config)
        )
        assert slow_client.get("/healthz").status == 200

    def test_default_limit_applied(self, client, interface):
        payload = client.get("/drilldown").json()
        assert payload["query"]["limit"] == ServingConfig().default_limit

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServingConfig(port=70000)
        with pytest.raises(ConfigError):
            ServingConfig(default_limit=0)
        with pytest.raises(ConfigError):
            ServingConfig(max_limit=5, default_limit=10)
        with pytest.raises(ConfigError):
            ServingConfig(time_budget_seconds=0)


class TestObservability:
    def test_requests_traced_and_counted(self, index):
        from repro.observability import Observability

        obs = Observability.enabled()
        traced_client = AsgiClient(FacetApp(index, observability=obs))
        traced_client.get("/facets")
        traced_client.get("/nope")
        spans = [span for span in obs.tracer.roots]
        assert [span.name for span in spans] == ["serving.request"] * 2
        assert spans[0].tags["path"] == "/facets"
        assert spans[0].tags["status"] == 200
        assert spans[1].tags["status"] == 404
        assert obs.metrics.counter_value("serving.requests") == 2
        assert obs.metrics.counter_value("serving.status.200") == 1
        assert obs.metrics.counter_value("serving.status.404") == 1


class TestHttpBridge:
    def test_socket_roundtrip_keepalive_and_etag(self, index):
        app = FacetApp(index)
        with run_in_thread(app) as (host, port):
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request("GET", "/facets")
            first = connection.getresponse()
            body = first.read()
            assert first.status == 200
            etag = first.getheader("ETag")
            assert etag
            assert json.loads(body)["schema"] == PAYLOAD_SCHEMA
            # keep-alive: second request on the same connection, with 304
            connection.request(
                "GET", "/facets", headers={"If-None-Match": etag}
            )
            second = connection.getresponse()
            second.read()
            assert second.status == 304
            connection.close()

    def test_bad_request_line_rejected(self, index):
        app = FacetApp(index)
        with run_in_thread(app) as (host, port):
            import socket

            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(b"GARBAGE\r\n\r\n")
                assert raw.recv(1024).startswith(b"HTTP/1.1 400")

    def test_graceful_shutdown_closes_executor_and_socket(self, index):
        app = FacetApp(index)
        with run_in_thread(app) as (host, port):
            connection = http.client.HTTPConnection(host, port, timeout=10)
            connection.request("GET", "/healthz")
            assert connection.getresponse().status == 200
            connection.close()
        # Teardown is deterministic: the app's query executor is shut
        # down (its threads joined), not abandoned to interpreter exit...
        assert app._closed is True
        assert app._executor._shutdown is True
        # ...and the listening socket is really closed: a fresh
        # connection attempt must be refused, not queued.
        import socket

        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()
