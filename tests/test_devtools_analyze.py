"""Tests for the project-invariant static analyzer (repro.devtools).

Each rule is exercised with a fixture snippet that violates it, one
that satisfies it, and one that suppresses it with ``# repro: noqa``.
The CLI contract — exit non-zero with ``file:line`` + rule-id output on
a violating package, exit zero on the real ``src/repro`` tree — is
checked via ``python -m repro lint`` subprocesses, and the JSON
reporter's schema is validated.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import Analyzer, Severity, all_rules, render_json, render_text
from repro.devtools.analyzer import PARSE_ERROR
from repro.devtools.context import ModuleContext, infer_module_name
from repro.devtools.imports import ImportTracker

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_RULES = {
    "DET001",
    "DET002",
    "PAR001",
    "OBS001",
    "CACHE001",
    "API001",
    "CKPT001",
    "SRV001",
}


def check(source: str, module: str) -> list:
    """Analyze a dedented snippet under a given dotted module name."""
    return Analyzer().analyze_source(
        textwrap.dedent(source), path=f"{module.replace('.', '/')}.py", module=module
    )


def rule_ids(findings: list) -> set[str]:
    return {finding.rule_id for finding in findings}


# -- registry ---------------------------------------------------------------------


def test_registry_has_the_full_initial_ruleset():
    assert {rule.rule_id for rule in all_rules()} >= EXPECTED_RULES


def test_rules_carry_metadata():
    for rule in all_rules():
        assert rule.summary, rule.rule_id
        assert rule.hint, rule.rule_id
        assert isinstance(rule.severity, Severity)


# -- import tracker ---------------------------------------------------------------


def test_import_tracker_resolves_absolute_and_aliased_imports():
    import ast

    tree = ast.parse(
        "import time\nimport os.path\nfrom uuid import uuid4 as u4\n"
    )
    tracker = ImportTracker.from_module(tree)
    assert tracker.resolve(ast.parse("time.time", mode="eval").body) == "time.time"
    assert tracker.resolve(ast.parse("os.path.join", mode="eval").body) == "os.path.join"
    assert tracker.resolve(ast.parse("u4", mode="eval").body) == "uuid.uuid4"
    assert tracker.resolve(ast.parse("unbound.name", mode="eval").body) is None


def test_import_tracker_resolves_relative_imports():
    import ast

    tree = ast.parse("from ..observability.tracing import Span\n")
    tracker = ImportTracker.from_module(
        tree, module="repro.resources.base", is_package=False
    )
    assert (
        tracker.resolve(ast.parse("Span", mode="eval").body)
        == "repro.observability.tracing.Span"
    )


def test_module_name_inference_walks_packages(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "stages.py").write_text("")
    assert infer_module_name(pkg / "stages.py") == "repro.core.stages"
    assert infer_module_name(pkg / "__init__.py") == "repro.core"


# -- DET001 -----------------------------------------------------------------------


def test_det001_flags_wall_clock_in_core():
    findings = check(
        """
        import time

        def stage():
            return time.time()
        """,
        "repro.core.stages",
    )
    assert rule_ids(findings) == {"DET001"}
    assert findings[0].severity is Severity.ERROR
    assert "time.time" in findings[0].message


def test_det001_flags_unseeded_random_and_urandom():
    findings = check(
        """
        import os
        import random

        def extract():
            random.shuffle([])
            r = random.Random()
            return os.urandom(8)
        """,
        "repro.extractors.fancy",
    )
    assert len(findings) == 3
    assert rule_ids(findings) == {"DET001"}


def test_det001_allows_seeded_rngs_and_monotonic_clocks():
    findings = check(
        """
        import random
        import time

        def stage(seed: int) -> float:
            rng = random.Random(seed)
            start = time.perf_counter()
            rng.random()
            return time.perf_counter() - start
        """,
        "repro.core.stages",
    )
    assert findings == []


def test_det001_out_of_scope_module_is_ignored():
    findings = check(
        "import time\n\ndef f():\n    return time.time()\n",
        "repro.harness.timers",
    )
    assert findings == []


def test_det001_suppressed_by_noqa():
    findings = check(
        """
        import time

        def stage():
            return time.time()  # repro: noqa[DET001]
        """,
        "repro.core.stages",
    )
    assert findings == []


# -- DET002 -----------------------------------------------------------------------


def test_det002_flags_set_iteration():
    findings = check(
        """
        def merge(p, q):
            out = []
            for term in set(p) | set(q):
                out.append(term)
            return out
        """,
        "repro.core.distributional",
    )
    assert rule_ids(findings) == {"DET002"}


def test_det002_flags_dict_view_and_set_variable():
    findings = check(
        """
        def f(d, xs):
            items = [v for v in d.values()]
            s = set(xs)
            more = [x for x in s]
            return items, more
        """,
        "repro.core.stages",
    )
    assert len(findings) == 2
    assert rule_ids(findings) == {"DET002"}


def test_det002_sorted_wrapper_is_clean():
    findings = check(
        """
        def merge(p, q):
            return [term for term in sorted(set(p) | set(q))]
        """,
        "repro.core.distributional",
    )
    assert findings == []


def test_det002_ordering_comment_is_clean():
    findings = check(
        """
        def f(d):
            # order: summing ints is order-insensitive
            return sum(len(v) for v in d.values())
        """,
        "repro.core.stages",
    )
    assert findings == []


def test_det002_safe_consumers_are_clean():
    findings = check(
        """
        def f(xs):
            s = set(xs)
            return len(s), sorted(x for x in s), max(s | {0})
        """,
        "repro.core.stages",
    )
    assert findings == []


def test_det002_only_applies_to_core():
    findings = check(
        "def f(d):\n    return [v for v in d.values()]\n",
        "repro.eval.metrics",
    )
    assert findings == []


# -- PAR001 -----------------------------------------------------------------------


def test_par001_flags_lock_in_callable_payload():
    findings = check(
        """
        import threading

        class ChunkPayload:
            def __init__(self):
                self._lock = threading.Lock()

            def __call__(self, chunk):
                return chunk
        """,
        "repro.parallel_ext",
    )
    assert rule_ids(findings) == {"PAR001"}
    assert "self._lock" in findings[0].message


def test_par001_flags_open_file_and_tracer_handles():
    findings = check(
        """
        from repro.observability import Tracer

        class Payload:
            def __init__(self, path):
                self.handle = open(path)
                self.tracer = Tracer()

            def __call__(self, chunk):
                return chunk
        """,
        "repro.workers",
    )
    assert "PAR001" in rule_ids(findings)
    par = [f for f in findings if f.rule_id == "PAR001"]
    assert len(par) == 2


def test_par001_getstate_makes_payload_clean():
    findings = check(
        """
        import threading

        class Payload:
            def __init__(self):
                self._lock = threading.Lock()

            def __call__(self, chunk):
                return chunk

            def __getstate__(self):
                state = self.__dict__.copy()
                state["_lock"] = None
                return state
        """,
        "repro.workers",
    )
    assert findings == []


def test_par001_non_callable_classes_are_ignored():
    findings = check(
        """
        import threading

        class NotAPayload:
            def __init__(self):
                self._lock = threading.Lock()
        """,
        "repro.workers",
    )
    assert findings == []


# -- OBS001 -----------------------------------------------------------------------


def test_obs001_flags_direct_span_construction():
    findings = check(
        """
        from repro.observability.tracing import Span

        def hot_path():
            span = Span(name="work", start=0.0)
            return span
        """,
        "repro.core.stages",
    )
    assert "OBS001" in rule_ids(findings)


def test_obs001_allows_factory_and_observability_internals():
    clean = check(
        """
        from repro.observability.tracing import Span

        def hot_path():
            span = Span.begin("work", items=3)
            span.finish()
            return span
        """,
        "repro.core.stages",
    )
    assert clean == []
    internal = check(
        """
        from .tracing import Span

        def helper():
            return Span(name="x")
        """,
        "repro.observability.helpers",
    )
    assert internal == []


# -- CACHE001 ---------------------------------------------------------------------


def test_cache001_flags_mutable_put_values():
    findings = check(
        """
        def store(cache, namespace, key, values):
            cache.put(namespace, key, list(values))
            cache.put(namespace, key, [v for v in values])
        """,
        "repro.resources.custom",
    )
    assert len(findings) == 2
    assert rule_ids(findings) == {"CACHE001"}


def test_cache001_flags_mutable_subscript_store():
    findings = check(
        """
        class Resource:
            def remember(self, key, values):
                self._cache[key] = list(values)
        """,
        "repro.resources.custom",
    )
    assert rule_ids(findings) == {"CACHE001"}


def test_cache001_tuple_values_are_clean():
    findings = check(
        """
        def store(cache, namespace, key, values):
            cache.put(namespace, key, tuple(values))
        """,
        "repro.resources.custom",
    )
    assert findings == []


# -- API001 -----------------------------------------------------------------------


def test_api001_flags_missing_annotations_in_public_api():
    findings = check(
        """
        def run(documents, top_k=10):
            return documents[:top_k]
        """,
        "repro.api",
    )
    assert rule_ids(findings) == {"API001"}
    assert "documents" in findings[0].message
    assert "return" in findings[0].message


def test_api001_checks_init_params_but_not_private_helpers():
    findings = check(
        """
        class Pipeline:
            def __init__(self, top_k, validator=None) -> None:
                self._top_k = top_k

        def _helper(x):
            return x
        """,
        "repro.core.pipeline",
    )
    assert rule_ids(findings) == {"API001"}
    assert len(findings) == 1


def test_api001_fully_annotated_is_clean():
    findings = check(
        """
        def run(documents: list[str], top_k: int = 10) -> list[str]:
            return documents[:top_k]
        """,
        "repro.api",
    )
    assert findings == []


def test_api001_out_of_scope_module_is_ignored():
    findings = check("def f(x):\n    return x\n", "repro.harness.tables")
    assert findings == []


# -- CKPT001 ----------------------------------------------------------------------


def test_ckpt001_flags_plain_write_mode_open():
    findings = check(
        """
        def save(path, text):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        """,
        "repro.incremental.state",
    )
    assert rule_ids(findings) == {"CKPT001"}
    assert findings[0].severity is Severity.ERROR
    assert "torn file" in findings[0].message


def test_ckpt001_flags_path_write_text_and_dynamic_mode():
    findings = check(
        """
        def save(path, payload, mode):
            path.write_text(payload)
            open(path, mode)
        """,
        "repro.incremental.supervisor",
    )
    # The discarded ``open(path, mode)`` handle is also a genuine leak,
    # so LEAK001 fires alongside the two torn-write findings.
    assert rule_ids(findings) == {"CKPT001", "LEAK001"}
    assert len([f for f in findings if f.rule_id == "CKPT001"]) == 2


def test_ckpt001_read_mode_and_atomic_helper_are_clean():
    findings = check(
        """
        from .checkpoint import atomic_write_json

        def roundtrip(path, payload):
            atomic_write_json(path, payload)
            with open(path, encoding="utf-8") as handle:
                return handle.read()
        """,
        "repro.incremental.state",
    )
    assert findings == []


def test_ckpt001_suppressed_by_noqa():
    findings = check(
        """
        def save(path, text):
            path.write_text(text)  # repro: noqa[CKPT001]
        """,
        "repro.incremental.state",
    )
    assert findings == []


def test_ckpt001_checkpoint_module_and_out_of_scope_are_exempt():
    snippet = """
        def save(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
    assert "CKPT001" not in rule_ids(check(snippet, "repro.incremental.checkpoint"))
    assert "CKPT001" not in rule_ids(check(snippet, "repro.core.persistence"))


# -- SRV001 -----------------------------------------------------------------------


def test_srv001_flags_blocking_calls_in_async_views():
    findings = check(
        """
        import sqlite3
        import time

        async def view(request):
            time.sleep(0.1)
            connection = sqlite3.connect("index.db")
            return connection
        """,
        "repro.serving.app",
    )
    # ASYNC001 (the transitive tier) also covers the depth-0 case, so
    # both rules fire on a blocking call made directly in the view.
    assert rule_ids(findings) == {"ASYNC001", "SRV001"}
    srv = [f for f in findings if f.rule_id == "SRV001"]
    assert len(srv) == 2
    assert srv[0].severity is Severity.ERROR
    assert "event loop" in srv[0].message


def test_srv001_executor_dispatch_and_sync_helpers_are_clean():
    findings = check(
        """
        import asyncio
        import sqlite3
        import time

        def query(path):
            # sync helper: runs on an executor thread, blocking is fine
            connection = sqlite3.connect(path)
            time.sleep(0)
            return connection

        async def view(request):
            loop = asyncio.get_running_loop()
            return await asyncio.wait_for(
                loop.run_in_executor(None, query, "index.db"), timeout=5.0
            )
        """,
        "repro.serving.app",
    )
    assert findings == []


def test_srv001_nested_sync_def_inside_async_view_is_exempt():
    findings = check(
        """
        import sqlite3

        async def view(request):
            def connect():
                return sqlite3.connect("index.db")
            return connect
        """,
        "repro.serving.app",
    )
    assert findings == []


def test_srv001_suppressed_by_noqa_and_scoped_to_serving():
    suppressed = check(
        """
        import time

        async def view(request):
            time.sleep(0.1)  # repro: noqa[SRV001,ASYNC001]
        """,
        "repro.serving.app",
    )
    assert suppressed == []
    snippet = """
        import time

        async def worker():
            time.sleep(0.1)
        """
    assert "SRV001" not in rule_ids(check(snippet, "repro.parallel.pool"))


# -- analyzer machinery -----------------------------------------------------------


def test_select_and_ignore_filter_rules():
    source = "import time\n\ndef f(x):\n    return time.time()\n"
    only_det = Analyzer(select={"DET001"}).analyze_source(
        source, module="repro.core.stages"
    )
    assert rule_ids(only_det) == {"DET001"}
    without_det = Analyzer(ignore={"DET001"}).analyze_source(
        source, module="repro.core.stages"
    )
    assert "DET001" not in rule_ids(without_det)
    with pytest.raises(ValueError):
        Analyzer(select={"NOPE999"})


def test_syntax_error_becomes_parse_finding():
    findings = Analyzer().analyze_source("def broken(:\n", path="bad.py")
    assert len(findings) == 1
    assert findings[0].rule_id == PARSE_ERROR
    assert findings[0].severity is Severity.ERROR


def test_blanket_noqa_suppresses_every_rule():
    findings = check(
        """
        import time

        def f():
            return time.time()  # repro: noqa
        """,
        "repro.core.stages",
    )
    assert findings == []


def test_context_tracks_ordering_comments_and_noqa():
    ctx = ModuleContext(
        "x = 1  # repro: noqa[DET001,API001]\n# order: stable\ny = 2\n",
        module="repro.core.x",
    )
    assert ctx.is_suppressed(1, "DET001")
    assert ctx.is_suppressed(1, "api001")
    assert not ctx.is_suppressed(1, "OBS001")
    assert ctx.has_ordering_comment(2)
    assert ctx.has_ordering_comment(3)
    assert not ctx.has_ordering_comment(1)


# -- reporters --------------------------------------------------------------------


def _sample_findings() -> list:
    return check(
        """
        import time

        def f():
            return time.time()
        """,
        "repro.core.stages",
    )


def test_text_reporter_formats_location_and_rule():
    findings = _sample_findings()
    text = render_text(findings)
    assert "repro/core/stages.py:5:" in text
    assert "DET001" in text
    assert "finding(s)" in text
    assert render_text([]) == "no findings"


def test_json_reporter_schema():
    findings = _sample_findings()
    report = json.loads(render_json(findings))
    assert report["version"] == 1
    assert set(report) == {"version", "findings", "summary"}
    assert report["summary"]["total"] == len(findings)
    assert report["summary"]["by_rule"]["DET001"] == 1
    assert report["summary"]["by_severity"]["error"] == 1
    for entry in report["findings"]:
        assert set(entry) == {
            "path",
            "line",
            "col",
            "rule_id",
            "severity",
            "message",
            "hint",
        }
        assert isinstance(entry["line"], int)
        assert entry["severity"] in {"info", "warning", "error"}


# -- CLI --------------------------------------------------------------------------


def _run_lint(*args: str, cwd: Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
        timeout=120,
    )


def _write_violating_package(root: Path) -> Path:
    """A temp package shaped like repro, seeded with violations."""
    core = root / "repro" / "core"
    core.mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (core / "__init__.py").write_text("")
    (core / "bad.py").write_text(
        textwrap.dedent(
            """
            import time

            def stage(p, q):
                out = []
                for term in set(p) | set(q):
                    out.append(term)
                return out, time.time()
            """
        )
    )
    return root / "repro"


def test_cli_exits_nonzero_on_violating_package(tmp_path):
    package = _write_violating_package(tmp_path)
    result = _run_lint(str(package))
    assert result.returncode == 1
    assert "DET001" in result.stdout
    assert "DET002" in result.stdout
    assert "bad.py:" in result.stdout


def test_cli_exits_zero_on_the_repo():
    result = _run_lint("src/repro")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no findings" in result.stdout


def test_cli_json_format(tmp_path):
    package = _write_violating_package(tmp_path)
    result = _run_lint(str(package), "--format", "json")
    assert result.returncode == 1
    report = json.loads(result.stdout)
    assert report["version"] == 1
    assert report["summary"]["total"] >= 2


def test_cli_list_rules():
    result = _run_lint("--list-rules")
    assert result.returncode == 0
    for rule_id in EXPECTED_RULES:
        assert rule_id in result.stdout


def test_cli_fail_on_never_reports_but_passes(tmp_path):
    package = _write_violating_package(tmp_path)
    result = _run_lint(str(package), "--fail-on", "never")
    assert result.returncode == 0
    assert "DET001" in result.stdout


def test_cli_unknown_rule_id_is_usage_error():
    result = _run_lint("--select", "NOPE999")
    assert result.returncode == 2
    assert "unknown rule" in result.stderr
