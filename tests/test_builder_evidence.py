"""Tests for the pipeline builder and hierarchy edge evidence."""

from __future__ import annotations

import pytest

from repro.builder import FacetPipelineBuilder
from repro.core.evidence import LinkEvidence
from repro.extractors.base import ExtractorName
from repro.resources.base import ResourceName


class TestLinkEvidence:
    @pytest.fixture(scope="class")
    def evidence(self, builder):
        return builder.edge_evidence

    def test_taxonomy_edge_supported(self, evidence):
        assert evidence("France", "Europe")
        assert evidence("Political Leaders", "Leaders")

    def test_entity_to_facet_supported(self, evidence):
        assert evidence("Jacques Chirac", "Political Leaders")
        assert evidence("Jacques Chirac", "France")

    def test_unrelated_pair_rejected(self, evidence):
        assert not evidence("France", "Baseball")
        assert not evidence("Jacques Chirac", "Hurricanes")

    def test_hypernym_edge_supported(self, evidence):
        assert evidence("president", "leaders")

    def test_unknown_terms_rejected(self, evidence):
        assert not evidence("gibberish abc", "more gibberish")

    def test_no_substrates_rejects_everything(self):
        empty = LinkEvidence()
        assert not empty("France", "Europe")

    def test_reverse_link_supported(self, evidence):
        # Facet pages link to their children, so either direction of a
        # parent/child pair carries evidence.
        assert evidence("Europe", "France") or evidence("France", "Europe")


class TestBuilder:
    def test_default_builds_all(self, builder):
        pipeline = builder.build()
        assert len(pipeline._extractors) == len(ExtractorName)

    def test_fluent_chaining_returns_self(self, config):
        builder = FacetPipelineBuilder(config)
        assert builder.with_top_k(10) is builder
        assert builder.with_statistic("chi-square") is builder
        assert builder.with_shift_requirement(False) is builder

    def test_single_resource_not_wrapped(self, config):
        builder = FacetPipelineBuilder(config).with_resources(
            [ResourceName.WIKI_GRAPH]
        )
        pipeline = builder.build()
        from repro.resources.wiki_graph import WikipediaGraphResource

        assert isinstance(pipeline._resources[0], WikipediaGraphResource)

    def test_multiple_resources_wrapped_in_composite(self, config):
        builder = FacetPipelineBuilder(config)
        pipeline = builder.build()
        from repro.resources.composite import CompositeResource

        assert isinstance(pipeline._resources[0], CompositeResource)

    def test_substrates_shared_across_builds(self, config):
        builder = FacetPipelineBuilder(config)
        assert builder.substrates is builder.substrates
        p1 = builder.build()
        p2 = builder.build()
        assert p1 is not p2
