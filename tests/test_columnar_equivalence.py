"""Differential harness: columnar data plane on == off, byte for byte.

``ParallelConfig.columnar`` swaps the representation of Steps 1-3 — the
interned id columns, memoized text functions, shared-memory background
segments and vectorized selection pretest of :mod:`repro.core.columnar`
— but the ISSUE contract is that not a single output byte moves.  This
module certifies it against a columnar-off baseline across:

* worker counts {1, 4} x ``batch_queries`` on/off — the execution-mode
  matrix named in the acceptance criteria;
* the process backend (which exercises the shared-memory background
  segment end to end, pickle fallback included);
* incremental appends (the columnar memo also runs under the
  incremental extractor's chunk workers);
* the serving artifact: the SQLite payload compiled from a columnar run
  must carry the identical content checksum.

Scores are compared as IEEE-754 hex so not even a ULP of drift passes;
hierarchies are serialized with their full document populations.
"""

from __future__ import annotations

import pytest

from repro.builder import FacetPipelineBuilder
from repro.config import ParallelConfig, ReproConfig
from repro.core.export import to_dict
from repro.incremental import canonical_json
from repro.serving.artifact import FacetIndex

SCALE = 0.05


def result_bytes(result) -> bytes:
    """Canonical bytes of every certified output surface."""
    payload = {
        "facet_terms": [
            [
                c.term,
                c.df_original,
                c.df_contextualized,
                c.shift_f,
                c.shift_r,
                c.score.hex(),
            ]
            for c in result.facet_terms
        ],
        "hierarchies": to_dict(result.hierarchies, include_docs=True),
        "important": result.annotated.important_terms,
        "term_sets": {
            doc_id: sorted(terms)
            for doc_id, terms in result.annotated.term_sets.items()
        },
        "context": result.contextualized.context_terms,
        "expanded": {
            doc_id: sorted(terms)
            for doc_id, terms in result.contextualized.expanded_sets.items()
        },
    }
    return canonical_json(payload).encode("utf-8")


@pytest.fixture(scope="module")
def col_config() -> ReproConfig:
    return ReproConfig(scale=SCALE)


@pytest.fixture(scope="module")
def col_builder(col_config: ReproConfig) -> FacetPipelineBuilder:
    return FacetPipelineBuilder(col_config)


@pytest.fixture(scope="module")
def docs(col_config: ReproConfig):
    from repro.corpus import build_snyt

    return build_snyt(col_config).documents


@pytest.fixture(scope="module")
def baseline(col_builder: FacetPipelineBuilder, docs) -> bytes:
    """The dict-of-strings reference: columnar off, serial, per-term."""
    col_builder.with_parallel(
        ParallelConfig(workers=1, columnar=False, batch_queries=False)
    )
    return result_bytes(col_builder.build().run(docs))


class TestColumnarDifferential:
    def test_columnar_off_modes_agree_with_the_baseline(
        self, col_builder, docs, baseline
    ):
        """Close the off-side of the matrix before testing the on-side."""
        col_builder.with_parallel(
            ParallelConfig(workers=4, columnar=False, batch_queries=True)
        )
        assert result_bytes(col_builder.build().run(docs)) == baseline

    @pytest.mark.parametrize("batch_queries", [True, False])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_columnar_matches_across_workers_and_query_modes(
        self, col_builder, docs, baseline, workers, batch_queries
    ):
        col_builder.with_parallel(
            ParallelConfig(
                workers=workers, columnar=True, batch_queries=batch_queries
            )
        )
        result = col_builder.build().run(docs)
        assert result_bytes(result) == baseline
        # The columnar run must actually have produced the id columns.
        assert result.annotated.columns is not None
        assert len(result.annotated.columns) == len(docs)

    def test_columnar_process_backend_matches(self, col_builder, docs, baseline):
        """Exercises the shared-memory background segment end to end."""
        col_builder.with_parallel(
            ParallelConfig(workers=2, backend="process", columnar=True)
        )
        assert result_bytes(col_builder.build().run(docs)) == baseline

    def test_incremental_append_matches(self, col_builder, docs, baseline):
        col_builder.with_parallel(ParallelConfig(workers=2, columnar=True))
        extractor = col_builder.build_incremental()
        extractor.append(docs[:17])
        extractor.append(docs[17:])
        assert result_bytes(extractor.snapshot_result()) == baseline

    def test_serving_artifact_checksum_matches(
        self, col_builder, docs, baseline, tmp_path
    ):
        """The compiled serving payload is identical, byte for byte."""
        col_builder.with_parallel(
            ParallelConfig(workers=1, columnar=False, batch_queries=False)
        )
        off = col_builder.build().run(docs)
        col_builder.with_parallel(ParallelConfig(workers=4, columnar=True))
        on = col_builder.build().run(docs)
        with FacetIndex.build(off, path=str(tmp_path / "off.db")) as index_off:
            with FacetIndex.build(on, path=str(tmp_path / "on.db")) as index_on:
                assert index_on.checksum == index_off.checksum
