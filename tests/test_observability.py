"""Tests for repro.observability: tracing, metrics, logging, integration."""

from __future__ import annotations

import io
import json
import logging
import pickle
import threading

import pytest

from repro.observability import (
    DISABLED,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    ResourceStats,
    Span,
    SpanTimings,
    Tracer,
    configure_logging,
    context,
    get_logger,
    load_trace,
    render_spans,
    trace_jsonl_lines,
)
from repro.observability.metrics import Histogram, TimerStat


class TestSpan:
    def test_duration_and_counters(self):
        span = Span(name="work", start=10.0, end=10.5)
        assert span.duration == pytest.approx(0.5)
        span.add("items")
        span.add("items", 2)
        assert span.counters == {"items": 3.0}

    def test_duration_never_negative(self):
        assert Span(name="x", start=5.0, end=4.0).duration == 0.0

    def test_set_tags_chains(self):
        span = Span(name="x")
        assert span.set(a=1).set(b=2) is span
        assert span.tags == {"a": 1, "b": 2}

    def test_walk_preorder(self):
        root = Span(name="root")
        a, b = Span(name="a"), Span(name="b")
        a.children.append(Span(name="a1"))
        root.children.extend([a, b])
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]


class TestTracer:
    def test_nesting_via_context(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
        assert tracer.current() is None
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in tracer.roots[0].children] == ["inner"]

    def test_error_status_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        span = tracer.roots[0]
        assert span.status == "error"
        assert span.end >= span.start

    def test_attach_explicit_parent(self):
        tracer = Tracer()
        parent = Span(name="parent")
        tracer.attach(parent)
        child = Span(name="child")
        tracer.attach(child, parent=parent)
        assert parent.children == [child]
        assert tracer.roots == [parent]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("pipeline", documents=3) as pipeline:
            pipeline.add("facets", 2)
            with tracer.span("stage:annotation"):
                pass
            with tracer.span("stage:selection"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))

        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert records[0]["parent"] is None
        assert all(r["parent"] == records[0]["id"] for r in records[1:])

        roots = load_trace(str(path))
        assert len(roots) == 1
        assert roots[0].name == "pipeline"
        assert roots[0].tags == {"documents": 3}
        assert roots[0].counters == {"facets": 2.0}
        assert [c.name for c in roots[0].children] == [
            "stage:annotation",
            "stage:selection",
        ]

    def test_render_tree(self):
        root = Span(name="root", start=0.0, end=1.0)
        root.children = [Span(name=f"child-{i}") for i in range(4)]
        rendered = render_spans([root])
        assert "root" in rendered
        assert "├─ child-0" in rendered
        assert "└─ child-3" in rendered

    def test_render_truncates_children(self):
        root = Span(name="root")
        root.children = [Span(name=f"child-{i}") for i in range(10)]
        rendered = render_spans([root], max_children=2)
        assert "child-1" in rendered
        assert "child-5" not in rendered
        assert "8 more span(s)" in rendered

    def test_jsonl_lines_empty_forest(self):
        assert list(trace_jsonl_lines([])) == []


class TestNullTracer:
    def test_all_noops(self, tmp_path):
        with NULL_TRACER.span("anything", tag=1) as span:
            assert span is NULL_SPAN
            assert span.set(a=1) is NULL_SPAN
            span.add("counter")
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.render() == ""
        path = tmp_path / "never.jsonl"
        NULL_TRACER.write_jsonl(str(path))
        assert not path.exists()
        assert not NULL_TRACER.enabled


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.increment("hits")
        registry.increment("hits", 4)
        registry.gauge("vocab", 100)
        registry.gauge("vocab", 250)
        assert registry.counter_value("hits") == 5.0
        assert registry.counter_value("absent") == 0.0
        assert registry.gauges == {"vocab": 250.0}

    def test_timers(self):
        registry = MetricsRegistry()
        registry.record_time("work", 0.5)
        registry.record_time("work", 1.5)
        timer = registry.timer_value("work")
        assert timer.count == 2
        assert timer.total == pytest.approx(2.0)
        assert timer.mean == pytest.approx(1.0)
        assert timer.min == pytest.approx(0.5)
        assert timer.max == pytest.approx(1.5)
        assert registry.timer_value("absent") is None

    def test_time_context_manager(self):
        registry = MetricsRegistry()
        with registry.time("block"):
            pass
        timer = registry.timer_value("block")
        assert timer is not None and timer.count == 1

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.0005)
        registry.observe("lat", 100.0)
        histogram = registry.histograms["lat"]
        assert histogram.count == 2
        assert histogram.buckets[0] == 1  # below the first bound
        assert histogram.buckets[-1] == 1  # overflow bucket

    def test_merge_is_deterministic_and_commutative_for_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.increment("n", 2)
        b.increment("n", 3)
        a.record_time("t", 1.0)
        b.record_time("t", 3.0)
        a.merge(b)
        assert a.counter_value("n") == 5.0
        timer = a.timer_value("t")
        assert timer.count == 2 and timer.total == pytest.approx(4.0)

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g", 1)
        b.gauge("g", 2)
        a.merge(b)
        assert a.gauges == {"g": 2.0}

    def test_pickle_round_trip(self):
        registry = MetricsRegistry()
        registry.increment("n", 7)
        registry.record_time("t", 0.25)
        registry.observe("h", 0.1)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter_value("n") == 7.0
        assert clone.timer_value("t").count == 1
        clone.increment("n")  # lock restored: still usable
        assert clone.counter_value("n") == 8.0

    def test_as_dict_and_format_table(self):
        registry = MetricsRegistry()
        registry.increment("resource.google.misses", 3)
        registry.record_time("stage.selection.seconds", 0.01)
        dump = registry.as_dict()
        assert dump["counters"] == {"resource.google.misses": 3.0}
        table = registry.format_table()
        assert "resource.google.misses" in table
        assert "stage.selection.seconds" in table

    def test_timer_stat_combine(self):
        a = TimerStat()
        a.record(1.0)
        b = TimerStat()
        b.record(3.0)
        a.combine(b)
        assert a.count == 2
        assert a.min == pytest.approx(1.0)
        assert a.max == pytest.approx(3.0)

    def test_histogram_combine(self):
        a = Histogram.empty([1.0, 2.0])
        a.observe(0.5)
        b = Histogram.empty([1.0, 2.0])
        b.observe(5.0)
        a.combine(b)
        assert a.count == 2
        assert a.buckets == [1, 0, 1]

    def test_histogram_combine_mismatched_bounds(self):
        a = Histogram.empty([1.0, 2.0])
        b = Histogram.empty([0.5])
        b.observe(0.1)
        b.observe(9.0)
        a.combine(b)
        assert a.count == 2
        assert sum(a.buckets) == 2


class TestContext:
    def test_metrics_scoped_to_thread(self):
        registry = MetricsRegistry()
        seen_in_thread = []

        def probe():
            seen_in_thread.append(context.current_metrics())

        with context.use_metrics(registry):
            assert context.current_metrics() is registry
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert context.current_metrics() is None
        assert seen_in_thread == [None]

    def test_use_metrics_none_is_passthrough(self):
        with context.use_metrics(None):
            assert context.current_metrics() is None

    def test_span_stack(self):
        outer, inner = Span(name="outer"), Span(name="inner")
        with context.use_span(outer):
            with context.use_span(inner):
                assert context.current_span() is inner
            assert context.current_span() is outer
        assert context.current_span() is None


class TestLogging:
    def test_json_format_parses(self):
        stream = io.StringIO()
        configure_logging(log_format="json", level="INFO", stream=stream)
        try:
            get_logger("repro.test").info("unit.event", items=3, name="x")
            record = json.loads(stream.getvalue().strip())
            assert record["event"] == "unit.event"
            assert record["items"] == 3
            assert record["logger"] == "repro.test"
            assert record["level"] == "INFO"
        finally:
            configure_logging()  # restore default stderr/WARNING handler

    def test_text_format_key_values(self):
        stream = io.StringIO()
        configure_logging(log_format="text", level="INFO", stream=stream)
        try:
            get_logger("repro.test").info("unit.event", items=3)
            line = stream.getvalue()
            assert "unit.event" in line
            assert "items=3" in line
        finally:
            configure_logging()

    def test_default_level_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        stream = io.StringIO()
        configure_logging(log_format="text", stream=stream)
        try:
            log = get_logger("repro.test")
            log.info("hidden.event")
            log.warning("visible.event")
            output = stream.getvalue()
            assert "hidden.event" not in output
            assert "visible.event" in output
        finally:
            configure_logging()

    def test_env_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        stream = io.StringIO()
        configure_logging(log_format="text", stream=stream)
        try:
            get_logger("repro.test").debug("deep.event")
            assert "deep.event" in stream.getvalue()
        finally:
            monkeypatch.delenv("REPRO_LOG_LEVEL")
            configure_logging()

    def test_rejects_unknown_format_and_level(self):
        with pytest.raises(ValueError):
            configure_logging(log_format="xml")
        with pytest.raises(ValueError):
            configure_logging(level="LOUD")

    def test_get_logger_namespaces_under_repro(self):
        assert get_logger("mymodule").raw.name == "repro.mymodule"
        assert get_logger("repro.core").raw.name == "repro.core"

    def test_configure_is_idempotent(self):
        configure_logging()
        configure_logging()
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1


class TestObservabilityBundle:
    def test_disabled_bundle(self):
        assert DISABLED.tracer is NULL_TRACER
        assert DISABLED.metrics is None
        assert not DISABLED.active
        with DISABLED.collect():
            assert context.current_metrics() is None

    def test_enabled_bundle(self):
        obs = Observability.enabled()
        assert obs.active
        assert isinstance(obs.tracer, Tracer)
        assert isinstance(obs.metrics, MetricsRegistry)
        with obs.collect():
            assert context.current_metrics() is obs.metrics


class TestStatsTypes:
    def test_resource_stats_derived_values(self):
        stats = ResourceStats(memory_hits=3, persistent_hits=1, misses=4)
        assert stats.hits == 4
        assert stats.queries == 8
        assert stats.hit_rate == pytest.approx(0.5)
        assert ResourceStats().hit_rate == 0.0

    def test_span_timings_from_spans(self):
        root = Span(name="pipeline", start=0.0, end=4.0)
        for name, dur in [("annotation", 1.0), ("selection", 0.5)]:
            child = Span(name=f"stage:{name}", start=0.0, end=dur)
            root.children.append(child)
        timings = SpanTimings.from_spans([root])
        assert timings.annotation == pytest.approx(1.0)
        assert timings.selection == pytest.approx(0.5)
        assert timings.contextualization == 0.0
        assert timings.total == pytest.approx(1.5)


@pytest.fixture(scope="module")
def instrumented_run(builder, snyt):
    """One instrumented pipeline run shared by the integration tests."""
    obs = Observability.enabled()
    try:
        builder.with_observability(obs)
        result = builder.build().run(snyt.documents[:40])
    finally:
        builder.with_observability(None)
    return obs, result


class TestPipelineIntegration:
    def test_all_four_stage_spans(self, instrumented_run):
        obs, _ = instrumented_run
        assert len(obs.tracer.roots) == 1
        pipeline = obs.tracer.roots[0]
        assert pipeline.name == "pipeline"
        stage_names = [c.name for c in pipeline.children]
        assert stage_names == [
            "stage:annotation",
            "stage:contextualization",
            "stage:selection",
            "stage:hierarchy",
        ]

    def test_chunk_and_resource_spans_nest(self, instrumented_run):
        obs, _ = instrumented_run
        pipeline = obs.tracer.roots[0]
        contextualization = pipeline.children[1]
        chunks = [c for c in contextualization.children if c.name == "chunk"]
        assert chunks
        resource_spans = [
            s
            for chunk in chunks
            for s in chunk.walk()
            if s.name.startswith("resource:")
        ]
        assert resource_spans

    def test_registry_has_stage_timers_and_resource_counters(
        self, instrumented_run
    ):
        obs, _ = instrumented_run
        for stage in ("annotation", "contextualization", "selection", "hierarchy"):
            timer = obs.metrics.timer_value(f"stage.{stage}.seconds")
            assert timer is not None and timer.total > 0
        counters = obs.metrics.counters
        assert any(name.startswith("resource.") for name in counters)
        assert obs.metrics.counter_value("annotate.documents") == 40

    def test_result_timings_and_resource_stats(self, instrumented_run):
        _, result = instrumented_run
        assert result.timings.total > 0
        assert result.resource_stats
        for stats in result.resource_stats.values():
            assert isinstance(stats, ResourceStats)

    def test_trace_matches_result_timings(self, instrumented_run):
        obs, result = instrumented_run
        recovered = SpanTimings.from_spans(obs.tracer.roots)
        # Span clocks are epoch-based, stage timings perf_counter-based;
        # they agree to within scheduling noise.
        assert recovered.annotation == pytest.approx(
            result.timings.annotation, abs=0.25
        )

    def test_parallel_matches_serial_with_observability(self, builder, snyt):
        from repro.config import ParallelConfig

        documents = snyt.documents[:30]
        serial = builder.build().run(documents)
        obs = Observability.enabled()
        try:
            builder.with_parallel(ParallelConfig(workers=3))
            builder.with_observability(obs)
            parallel = builder.build().run(documents)
        finally:
            builder.with_parallel(ParallelConfig(workers=1))
            builder.with_observability(None)
        assert parallel.facet_term_strings() == serial.facet_term_strings()
        chunk_spans = [
            s
            for root in obs.tracer.roots
            for s in root.walk()
            if s.name == "chunk"
        ]
        assert len(chunk_spans) > 1  # genuinely sharded
        # Contextualization is a single map pass: its chunk spans must
        # be attached in submission order, whatever the scheduling.
        indices = [
            s.tags["index"]
            for s in obs.tracer.roots[0].children[1].children
            if s.name == "chunk"
        ]
        assert indices == sorted(indices)


class TestDeprecationShims:
    def test_stage_timings_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="StageTimings"):
            from repro.core.pipeline import StageTimings
        assert StageTimings is SpanTimings

    def test_cache_stats_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="CacheStats"):
            from repro.core.pipeline import CacheStats
        assert CacheStats is ResourceStats

    def test_result_cache_stats_property_warns(self, instrumented_run):
        _, result = instrumented_run
        with pytest.warns(DeprecationWarning, match="cache_stats"):
            assert result.cache_stats is result.resource_stats

    def test_unknown_attribute_still_raises(self):
        from repro.core import pipeline

        with pytest.raises(AttributeError):
            pipeline.NoSuchThing


class TestKeywordOnlyConfigs:
    def test_repro_config_rejects_positional(self):
        from repro.config import ReproConfig

        with pytest.raises(TypeError):
            ReproConfig(42)

    def test_parallel_config_rejects_positional(self):
        from repro.config import ParallelConfig

        with pytest.raises(TypeError):
            ParallelConfig(4)
