"""Tests for the three term extractors and the registry."""

from __future__ import annotations

import pytest

from repro.corpus.document import Document
from repro.errors import ExtractionError
from repro.extractors.base import ExtractorName
from repro.extractors.named_entities import NamedEntityExtractor
from repro.extractors.registry import build_extractor, build_extractors
from repro.extractors.significant_terms import SignificantTermsExtractor
from repro.extractors.wiki_titles import WikipediaTitleExtractor
from repro.text.vocabulary import Vocabulary


def doc(text: str, title: str = "Untitled Report") -> Document:
    return Document(doc_id="t", title=title, body=text)


class TestNamedEntityExtractor:
    def test_finds_multiword_names(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(
            doc("He met Jacques Chirac in the capital yesterday.")
        )
        assert "Jacques Chirac" in terms

    def test_skips_common_nouns(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(
            doc("The election results surprised many voters this year.")
        )
        assert "election" not in [t.lower() for t in terms]

    def test_skips_headline_case_sentences(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(
            Document(
                doc_id="t",
                title="Storm Clouds Gather Over The Capital Region",
                body="Nothing notable happened afterwards.",
            )
        )
        assert "Storm Clouds Gather Over The Capital Region" not in terms

    def test_common_openers_rejected(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(
            doc("People familiar with the deal said so. People agreed.")
        )
        assert "People" not in terms

    def test_sentence_initial_singleton_needs_repetition(self):
        extractor = NamedEntityExtractor()
        # "Paris" opens a sentence once and never recurs capitalized.
        terms_once = extractor.extract(doc("Paris wants the deal done."))
        assert "Paris" not in terms_once
        # When it recurs, it counts.
        terms_twice = extractor.extract(
            doc("Paris wants the deal done. Officials in Paris agreed.")
        )
        assert "Paris" in terms_twice

    def test_mid_sentence_singleton_accepted(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(doc("Talks continued in Geneva overnight."))
        assert "Geneva" in terms

    def test_deduplication(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(
            doc(
                "He quietly met Anna Keller at the border station. "
                "The talks with Anna Keller continued into the night."
            )
        )
        assert terms.count("Anna Keller") == 1

    def test_name_dense_sentence_treated_as_headline(self):
        extractor = NamedEntityExtractor()
        # Mostly-capitalized short sentences look like headlines and are
        # skipped wholesale.
        terms = extractor.extract(doc("Later Anna Keller Spoke Again."))
        assert "Anna Keller" not in terms

    def test_dateline_not_merged(self):
        extractor = NamedEntityExtractor()
        terms = extractor.extract(doc("PARIS — Delegates met Anna Keller here."))
        assert not any("PARIS Delegates" in t for t in terms)


class TestSignificantTermsExtractor:
    def test_returns_top_terms(self):
        extractor = SignificantTermsExtractor(max_terms=5)
        terms = extractor.extract(
            doc(
                "The vaccine trial results showed the vaccine reduced "
                "infection. The vaccine will ship soon."
            )
        )
        assert len(terms) <= 5
        assert "vaccine" in terms

    def test_background_idf_demotes_ubiquitous_terms(self):
        # "report" and "year" blanket the background corpus; "vaccine"
        # is rare.  Rank by tf*idf must put vaccine above them even
        # though report has higher tf in the document.
        background = Vocabulary()
        text = "The report this year covered the vaccine and the report."
        from repro.core.annotate import document_terms

        doc_obj = doc(text)
        for _ in range(50):
            background.add_document(document_terms(doc(  # noqa: B023
                "The report this year covered the budget and the report."
            )))
        background.add_document(document_terms(doc_obj))
        extractor = SignificantTermsExtractor(background=background, max_terms=4)
        terms = extractor.extract(doc_obj)
        assert "vaccine" in terms
        if "report" in terms:
            assert terms.index("vaccine") < terms.index("report")

    def test_use_background_only_fills_empty(self):
        explicit = Vocabulary()
        explicit.add_document(["keep"])
        extractor = SignificantTermsExtractor(background=explicit)
        other = Vocabulary()
        extractor.use_background(other)
        assert extractor._background is explicit

    def test_phrases_preferred(self):
        extractor = SignificantTermsExtractor(max_terms=8)
        terms = extractor.extract(
            doc("Stock market gains. Stock market news. Stock market data.")
        )
        assert "stock market" in terms

    def test_invalid_max_terms(self):
        with pytest.raises(ValueError):
            SignificantTermsExtractor(max_terms=0)

    def test_latency_simulation(self):
        extractor = SignificantTermsExtractor(
            simulate_latency=True, latency_seconds=0.01
        )
        import time

        start = time.perf_counter()
        extractor.extract(doc("Quick latency check."))
        assert time.perf_counter() - start >= 0.01


class TestWikipediaTitleExtractor:
    def test_returns_surfaces(self, wikipedia):
        extractor = WikipediaTitleExtractor(wikipedia)
        terms = extractor.extract(doc("Hillary Clinton visited France."))
        assert "Hillary Clinton" in terms  # the surface, not the title
        assert "France" in terms

    def test_deduplicates_surfaces(self, wikipedia):
        extractor = WikipediaTitleExtractor(wikipedia)
        terms = extractor.extract(doc("France said France would act."))
        assert terms.count("France") == 1


class TestRegistry:
    def test_build_each_by_enum(self, wikipedia):
        for name in ExtractorName:
            extractor = build_extractor(name, wikipedia=wikipedia)
            assert extractor.name == name

    def test_build_by_string(self, wikipedia):
        assert build_extractor("NE").name == ExtractorName.NAMED_ENTITIES
        assert build_extractor("Yahoo").name == ExtractorName.YAHOO

    def test_unknown_name(self):
        with pytest.raises(ExtractionError):
            build_extractor("Bing")

    def test_wikipedia_extractor_requires_snapshot(self):
        with pytest.raises(ExtractionError):
            build_extractor(ExtractorName.WIKIPEDIA)

    def test_build_many(self, wikipedia):
        extractors = build_extractors(["NE", "Wikipedia"], wikipedia=wikipedia)
        assert len(extractors) == 2
