"""Tests for fault injection and the resilient resource wrapper."""

from __future__ import annotations

import pytest

from repro.config import ParallelConfig
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.db.resource_cache import PersistentResourceCache
from repro.errors import ResourceError
from repro.resources.base import ExternalResource, ResourceName
from repro.resources.resilience import (
    FlakyResource,
    ResilientResource,
    SimulatedLatencyResource,
)


class EchoResource(ExternalResource):
    name = ResourceName.GOOGLE
    remote = True

    def __init__(self):
        super().__init__()
        self.queries = 0

    def _query(self, term):
        self.queries += 1
        return [f"about {term.lower()}"]


class AlwaysFailing(ExternalResource):
    name = ResourceName.GOOGLE

    def _query(self, term):
        raise ResourceError("down")


class TestFlakyResource:
    def test_passes_through_when_healthy(self):
        flaky = FlakyResource(EchoResource(), error_rate=0.0)
        assert flaky.context_terms("Paris") == ["about paris"]
        assert flaky.failures == 0

    def test_always_fails_at_rate_one(self):
        flaky = FlakyResource(EchoResource(), error_rate=1.0)
        with pytest.raises(ResourceError):
            flaky.context_terms("Paris")
        assert flaky.failures == 1

    def test_intermittent_failures(self):
        flaky = FlakyResource(EchoResource(), error_rate=0.5, seed=7)
        outcomes = []
        for i in range(40):
            try:
                flaky.context_terms(f"term{i}")
                outcomes.append(True)
            except ResourceError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FlakyResource(EchoResource(), error_rate=2.0)

    def test_inherits_identity(self):
        inner = EchoResource()
        flaky = FlakyResource(inner, error_rate=0.1)
        assert flaky.name == inner.name
        assert flaky.remote == inner.remote


class TestResilientResource:
    def test_retries_until_success(self):
        inner = EchoResource()
        flaky = FlakyResource(inner, error_rate=0.6, seed=3)
        resilient = ResilientResource(flaky, max_attempts=10)
        for i in range(20):
            assert resilient.context_terms(f"t{i}") == [f"about t{i}"]
        assert resilient.retries > 0
        assert resilient.gave_up == 0

    def test_degrades_to_empty_when_exhausted(self):
        resilient = ResilientResource(AlwaysFailing(), max_attempts=2)
        assert resilient.context_terms("anything") == []
        assert resilient.gave_up == 1

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            ResilientResource(EchoResource(), max_attempts=0)

    def test_pipeline_survives_outages(self, builder, snyt):
        """End-to-end: an unreliable Google never crashes extraction."""
        from repro.core.annotate import annotate_database
        from repro.core.contextualize import contextualize
        from repro.core.selection import select_facet_terms
        from repro.extractors.base import ExtractorName
        from repro.extractors.registry import build_extractors
        from repro.resources.base import ResourceName
        from repro.resources.registry import build_resources

        google = build_resources(
            [ResourceName.GOOGLE], builder.substrates, builder.config
        )[0]
        unreliable = ResilientResource(
            FlakyResource(google, error_rate=0.4, seed=11), max_attempts=2
        )
        docs = list(snyt)[:30]
        extractors = build_extractors(
            [ExtractorName.NAMED_ENTITIES], wikipedia=builder.substrates.wikipedia
        )
        annotated = annotate_database(docs, extractors)
        contextualized = contextualize(annotated, [unreliable])
        candidates = select_facet_terms(contextualized, top_k=None)
        # The run completes; degradation may cost recall, never a crash.
        assert isinstance(candidates, list)


def _annotate_sample(builder, snyt, count=20):
    from repro.extractors.base import ExtractorName
    from repro.extractors.registry import build_extractors

    docs = list(snyt)[:count]
    extractors = build_extractors(
        [ExtractorName.NAMED_ENTITIES], wikipedia=builder.substrates.wikipedia
    )
    return annotate_database(docs, extractors)


class TestParallelResilience:
    """Fault injection inside the worker pool (Steps 1-2 sharded)."""

    def test_worker_failure_surfaces_no_partial_results(self, builder, snyt):
        """A resource raising mid-chunk aborts the whole stage loudly."""
        annotated = _annotate_sample(builder, snyt)
        always_down = FlakyResource(EchoResource(), error_rate=1.0)
        with pytest.raises(ResourceError):
            contextualize(
                annotated,
                [always_down],
                ParallelConfig(workers=2, chunk_size=3),
            )

    def test_intermittent_worker_failure_still_surfaces(self, builder, snyt):
        """Even one failing chunk among many healthy ones propagates."""
        annotated = _annotate_sample(builder, snyt)
        flaky = FlakyResource(EchoResource(), error_rate=0.2, seed=5)
        with pytest.raises(ResourceError):
            for _ in range(50):  # the injected fault fires eventually
                flaky.clear_cache()
                contextualize(
                    annotated, [flaky], ParallelConfig(workers=4, chunk_size=2)
                )

    def test_retry_wrapper_composes_with_pool_and_shared_cache(
        self, builder, snyt, tmp_path
    ):
        """Retry/degrade inside the pool, backed by the persistent store."""
        annotated = _annotate_sample(builder, snyt)
        store = PersistentResourceCache(str(tmp_path / "cache.db"))

        def run(error_rate, seed):
            resilient = ResilientResource(
                FlakyResource(EchoResource(), error_rate, seed=seed),
                max_attempts=4,
            )
            resilient.attach_cache(store)
            return resilient, contextualize(
                annotated, [resilient], ParallelConfig(workers=3, chunk_size=2)
            )

        resource, contextualized = run(error_rate=0.3, seed=11)
        assert resource.cache_stats.misses > 0
        # A healthy re-run over the same store answers from SQLite.
        healthy, again = run(error_rate=0.0, seed=0)
        assert again.context_terms == contextualized.context_terms or (
            resource.gave_up > 0
        )
        assert healthy.cache_stats.persistent_hits > 0

    def test_degraded_answers_never_enter_persistent_tier(self, tmp_path):
        store = PersistentResourceCache(str(tmp_path / "cache.db"))
        resilient = ResilientResource(AlwaysFailing(), max_attempts=2)
        resilient.attach_cache(store)
        assert resilient.context_terms("paris") == []
        assert resilient.gave_up == 1
        # Degraded [] stays in the memory tier only.
        assert resilient.cache_size == 1
        assert store.size(resilient.cache_namespace()) == 0
        # A recovered resource sharing the store re-queries and persists.
        recovered = ResilientResource(EchoResource(), max_attempts=2)
        recovered.attach_cache(store)
        assert recovered.context_terms("paris") == ["about paris"]
        assert store.size(recovered.cache_namespace()) == 1

    def test_wrappers_share_the_inner_cache_namespace(self):
        inner = EchoResource()
        assert (
            FlakyResource(inner, error_rate=0.5).cache_namespace()
            == ResilientResource(inner).cache_namespace()
            == SimulatedLatencyResource(inner, 0.0).cache_namespace()
            == inner.cache_namespace()
        )


class TestSimulatedLatencyResource:
    def test_delegates_and_counts_round_trips(self):
        inner = EchoResource()
        slow = SimulatedLatencyResource(inner, latency_seconds=0.0)
        assert slow.context_terms("Paris") == ["about paris"]
        assert slow.context_terms("Paris") == ["about paris"]
        assert slow.simulated_calls == 1  # the cache hit skips the sleep
        assert slow.remote

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            SimulatedLatencyResource(EchoResource(), latency_seconds=-1.0)
