"""Tests for fault injection and the resilient resource wrapper."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.resources.base import ExternalResource, ResourceName
from repro.resources.resilience import FlakyResource, ResilientResource


class EchoResource(ExternalResource):
    name = ResourceName.GOOGLE
    remote = True

    def __init__(self):
        super().__init__()
        self.queries = 0

    def _query(self, term):
        self.queries += 1
        return [f"about {term.lower()}"]


class AlwaysFailing(ExternalResource):
    name = ResourceName.GOOGLE

    def _query(self, term):
        raise ResourceError("down")


class TestFlakyResource:
    def test_passes_through_when_healthy(self):
        flaky = FlakyResource(EchoResource(), error_rate=0.0)
        assert flaky.context_terms("Paris") == ["about paris"]
        assert flaky.failures == 0

    def test_always_fails_at_rate_one(self):
        flaky = FlakyResource(EchoResource(), error_rate=1.0)
        with pytest.raises(ResourceError):
            flaky.context_terms("Paris")
        assert flaky.failures == 1

    def test_intermittent_failures(self):
        flaky = FlakyResource(EchoResource(), error_rate=0.5, seed=7)
        outcomes = []
        for i in range(40):
            try:
                flaky.context_terms(f"term{i}")
                outcomes.append(True)
            except ResourceError:
                outcomes.append(False)
        assert any(outcomes) and not all(outcomes)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FlakyResource(EchoResource(), error_rate=2.0)

    def test_inherits_identity(self):
        inner = EchoResource()
        flaky = FlakyResource(inner, error_rate=0.1)
        assert flaky.name == inner.name
        assert flaky.remote == inner.remote


class TestResilientResource:
    def test_retries_until_success(self):
        inner = EchoResource()
        flaky = FlakyResource(inner, error_rate=0.6, seed=3)
        resilient = ResilientResource(flaky, max_attempts=10)
        for i in range(20):
            assert resilient.context_terms(f"t{i}") == [f"about t{i}"]
        assert resilient.retries > 0
        assert resilient.gave_up == 0

    def test_degrades_to_empty_when_exhausted(self):
        resilient = ResilientResource(AlwaysFailing(), max_attempts=2)
        assert resilient.context_terms("anything") == []
        assert resilient.gave_up == 1

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            ResilientResource(EchoResource(), max_attempts=0)

    def test_pipeline_survives_outages(self, builder, snyt):
        """End-to-end: an unreliable Google never crashes extraction."""
        from repro.core.annotate import annotate_database
        from repro.core.contextualize import contextualize
        from repro.core.selection import select_facet_terms
        from repro.extractors.base import ExtractorName
        from repro.extractors.registry import build_extractors
        from repro.resources.base import ResourceName
        from repro.resources.registry import build_resources

        google = build_resources(
            [ResourceName.GOOGLE], builder.substrates, builder.config
        )[0]
        unreliable = ResilientResource(
            FlakyResource(google, error_rate=0.4, seed=11), max_attempts=2
        )
        docs = list(snyt)[:30]
        extractors = build_extractors(
            [ExtractorName.NAMED_ENTITIES], wikipedia=builder.substrates.wikipedia
        )
        annotated = annotate_database(docs, extractors)
        contextualized = contextualize(annotated, [unreliable])
        candidates = select_facet_terms(contextualized, top_k=None)
        # The run completes; degradation may cost recall, never a crash.
        assert isinstance(candidates, list)
