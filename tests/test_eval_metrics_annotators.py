"""Tests for evaluation metrics, annotators, and gold sets."""

from __future__ import annotations

import pytest

from repro.eval.annotators import AnnotatorPool, SimulatedAnnotator, candidate_terms
from repro.eval.goldset import build_gold_set
from repro.eval.metrics import match_key, term_set_precision, term_set_recall


class TestMatchKey:
    def test_case_insensitive(self):
        assert match_key("Political Leaders") == match_key("political leaders")

    def test_plural_singular_conflate(self):
        assert match_key("Elections") == match_key("election")
        assert match_key("markets") == match_key("Market")

    def test_different_terms_differ(self):
        assert match_key("France") != match_key("Germany")

    def test_punctuation_ignored(self):
        assert match_key("U.S.") == match_key("u s")

    def test_empty(self):
        assert match_key("") == ""
        assert match_key("!!!") == ""


class TestSetMetrics:
    def test_recall(self):
        assert term_set_recall(["a", "b"], ["a", "c"]) == 0.5
        assert term_set_recall(["a"], ["a"]) == 1.0
        assert term_set_recall([], ["a"]) == 0.0

    def test_recall_uses_keys(self):
        assert term_set_recall(["Elections"], ["election"]) == 1.0

    def test_precision(self):
        assert term_set_precision(["a", "b"], ["a"]) == 0.5
        assert term_set_precision([], ["a"]) == 0.0


class TestAnnotators:
    def test_candidate_pool_from_gold(self, world, snyt):
        doc = snyt[0]
        pool = candidate_terms(world, doc)
        terms = [t for t, _ in pool]
        for term in doc.gold.facet_terms:
            assert term in terms

    def test_candidate_pool_empty_without_gold(self, world):
        from repro.corpus.document import Document

        doc = Document(doc_id="x", title="t", body="b")
        assert candidate_terms(world, doc) == []

    def test_annotator_respects_cap(self, world, snyt, config):
        annotator = SimulatedAnnotator(annotator_id=0, world=world)
        for doc in list(snyt)[:20]:
            terms = annotator.annotate(doc, config.rng(f"ann:{doc.doc_id}"))
            assert len(terms) <= 10

    def test_annotators_disagree(self, world, snyt, config):
        a0 = SimulatedAnnotator(annotator_id=0, world=world)
        a1 = SimulatedAnnotator(annotator_id=1, world=world)
        doc = snyt[0]
        t0 = a0.annotate(doc, config.rng("a:0"))
        t1 = a1.annotate(doc, config.rng("a:1"))
        assert t0 != t1 or len(t0) == 0

    def test_pool_agreement_filters_noise(self, world, snyt, config):
        pool = AnnotatorPool(world, config, agreement=2)
        agreed = pool.annotate_document(snyt[0])
        strict_pool = AnnotatorPool(world, config, agreement=5)
        strict = strict_pool.annotate_document(snyt[0])
        assert len(strict) <= len(agreed)

    def test_agreement_validation(self, world, config):
        with pytest.raises(ValueError):
            AnnotatorPool(world, config, agreement=0)

    def test_annotation_deterministic(self, world, snyt, config):
        pool_a = AnnotatorPool(world, config)
        pool_b = AnnotatorPool(world, config)
        assert pool_a.annotate_document(snyt[0]) == pool_b.annotate_document(snyt[0])


class TestGoldSet:
    def test_gold_set_nonempty(self, snyt, config, world):
        gold = build_gold_set(snyt, config, world)
        assert len(gold) > 30

    def test_gold_cached(self, snyt, config, world):
        assert build_gold_set(snyt, config, world) is build_gold_set(
            snyt, config, world
        )

    def test_per_document_terms_subset_of_candidates(self, snyt, config, world):
        gold = build_gold_set(snyt, config, world)
        doc = gold.documents[0]
        pool_keys = {match_key(t) for t, _ in candidate_terms(world, doc)}
        # Agreed terms are either candidates or (rarely) shared noise.
        doc_terms = gold.per_document[doc.doc_id]
        hits = sum(1 for t in doc_terms if match_key(t) in pool_keys)
        assert hits >= len(doc_terms) * 0.8

    def test_discovery_curve_monotone(self, snyt, config, world):
        gold = build_gold_set(snyt, config, world)
        curve = gold.discovery_curve([10, 50, len(gold.documents)])
        values = [curve[k] for k in sorted(curve)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_sample_size_respected(self, snyt, config, world):
        gold = build_gold_set(snyt, config, world, sample_size=20)
        assert len(gold.documents) == 20
