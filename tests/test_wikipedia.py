"""Tests for the simulated Wikipedia: database, graph, synonyms, titles."""

from __future__ import annotations

import math

import pytest

from repro.errors import StorageError
from repro.wikipedia.database import WikipediaDatabase
from repro.wikipedia.graph import WikipediaGraph
from repro.wikipedia.model import WikiPage
from repro.wikipedia.synonyms import SynonymFinder
from repro.wikipedia.titles import TitleMatcher


@pytest.fixture()
def tiny_wiki():
    db = WikipediaDatabase()
    db.add_page(WikiPage("France", links=("Europe", "Paris")))
    db.add_page(WikiPage("Europe", links=("France", "Germany")))
    db.add_page(WikiPage("Germany", links=("Europe",)))
    db.add_page(WikiPage("Paris", links=("France",)))
    db.add_page(WikiPage("Hillary Rodham Clinton", links=("Political Leaders",)))
    db.add_page(WikiPage("Political Leaders", links=()))
    db.add_redirect("Hillary Clinton", "Hillary Rodham Clinton")
    db.add_redirect("Hillary R. Clinton", "Hillary Rodham Clinton")
    db.add_anchor("Hillary Clinton", "Hillary Rodham Clinton", count=5)
    db.add_anchor("Senator Clinton", "Hillary Rodham Clinton", count=1)
    db.add_anchor("the city", "Paris", count=1)
    db.add_anchor("the city", "France", count=1)
    return db


class TestDatabase:
    def test_page_lookup(self, tiny_wiki):
        assert tiny_wiki.page("France").title == "France"

    def test_page_via_redirect(self, tiny_wiki):
        page = tiny_wiki.page("Hillary Clinton")
        assert page.title == "Hillary Rodham Clinton"

    def test_resolve_case_insensitive(self, tiny_wiki):
        assert tiny_wiki.resolve("france") == "France"
        assert tiny_wiki.resolve("HILLARY R. CLINTON") == "Hillary Rodham Clinton"

    def test_resolve_unknown(self, tiny_wiki):
        assert tiny_wiki.resolve("Atlantis") is None

    def test_duplicate_title_rejected(self, tiny_wiki):
        with pytest.raises(StorageError):
            tiny_wiki.add_page(WikiPage("France"))

    def test_degrees(self, tiny_wiki):
        assert tiny_wiki.out_degree("France") == 2
        assert tiny_wiki.in_degree("Europe") == 2
        assert tiny_wiki.in_degree("Political Leaders") == 1

    def test_redirect_group(self, tiny_wiki):
        group = tiny_wiki.redirect_group("Hillary Rodham Clinton")
        assert "Hillary Clinton" in group
        assert "Hillary R. Clinton" in group

    def test_anchor_scoring(self, tiny_wiki):
        stats = tiny_wiki.anchor_stats("the city")
        assert stats.spread == 2
        assert stats.score("Paris") == pytest.approx(0.5)
        dedicated = tiny_wiki.anchor_stats("Senator Clinton")
        assert dedicated.score("Hillary Rodham Clinton") == pytest.approx(1.0)

    def test_sqlite_roundtrip(self, tiny_wiki, tmp_path):
        path = str(tmp_path / "wiki.sqlite")
        tiny_wiki.save(path)
        loaded = WikipediaDatabase.load(path)
        assert loaded.page_count == tiny_wiki.page_count
        assert loaded.resolve("Hillary Clinton") == "Hillary Rodham Clinton"
        assert set(loaded.out_links("France")) == {"Europe", "Paris"}
        assert loaded.anchor_stats("the city").spread == 2

    def test_load_bad_file(self, tmp_path):
        path = tmp_path / "bad.sqlite"
        path.write_text("nope")
        with pytest.raises(StorageError):
            WikipediaDatabase.load(str(path))


class TestGraph:
    def test_association_formula(self, tiny_wiki):
        graph = WikipediaGraph(tiny_wiki)
        n = tiny_wiki.page_count
        expected = math.log(n / tiny_wiki.in_degree("Europe")) / tiny_wiki.out_degree(
            "France"
        )
        assert graph.association("France", "Europe") == pytest.approx(expected)

    def test_association_asymmetric(self, tiny_wiki):
        graph = WikipediaGraph(tiny_wiki)
        assert graph.association("France", "Paris") != graph.association(
            "Paris", "France"
        )

    def test_association_missing_link(self, tiny_wiki):
        graph = WikipediaGraph(tiny_wiki)
        assert graph.association("Paris", "Germany") == 0.0

    def test_neighbours_ranked(self, tiny_wiki):
        graph = WikipediaGraph(tiny_wiki)
        neighbours = graph.neighbours("France", k=10)
        assert [n.title for n in neighbours][:2] == sorted(
            ["Europe", "Paris"],
            key=lambda t: -graph.association("France", t),
        )

    def test_neighbours_top_k(self, tiny_wiki):
        graph = WikipediaGraph(tiny_wiki)
        assert len(graph.neighbours("France", k=1)) == 1

    def test_neighbours_via_redirect(self, tiny_wiki):
        graph = WikipediaGraph(tiny_wiki)
        titles = [n.title for n in graph.neighbours("Hillary Clinton", k=5)]
        assert "Political Leaders" in titles

    def test_neighbours_unknown_term(self, tiny_wiki):
        assert WikipediaGraph(tiny_wiki).neighbours("Atlantis") == []

    def test_invalid_k(self, tiny_wiki):
        with pytest.raises(ValueError):
            WikipediaGraph(tiny_wiki).neighbours("France", k=0)


class TestSynonyms:
    def test_redirect_synonyms(self, tiny_wiki):
        finder = SynonymFinder(tiny_wiki)
        phrases = [s.phrase for s in finder.synonyms("Hillary Rodham Clinton")]
        assert "Hillary Clinton" in phrases
        assert "Hillary R. Clinton" in phrases

    def test_query_by_variant_includes_canonical(self, tiny_wiki):
        finder = SynonymFinder(tiny_wiki)
        phrases = [s.phrase for s in finder.synonyms("Hillary Clinton")]
        assert "Hillary Rodham Clinton" in phrases

    def test_anchor_synonym_above_threshold(self, tiny_wiki):
        finder = SynonymFinder(tiny_wiki)
        phrases = [s.phrase for s in finder.synonyms("Hillary Rodham Clinton")]
        assert "senator clinton" in phrases

    def test_ambiguous_anchor_filtered(self, tiny_wiki):
        finder = SynonymFinder(tiny_wiki, anchor_threshold=0.6)
        phrases = [s.phrase for s in finder.synonyms("Paris")]
        assert "the city" not in phrases  # score 0.5 < 0.6

    def test_unknown_term(self, tiny_wiki):
        assert SynonymFinder(tiny_wiki).synonyms("Atlantis") == []

    def test_invalid_threshold(self, tiny_wiki):
        with pytest.raises(ValueError):
            SynonymFinder(tiny_wiki, anchor_threshold=2.0)

    def test_provenance_labels(self, tiny_wiki):
        finder = SynonymFinder(tiny_wiki)
        by_source = {s.phrase: s.source for s in finder.synonyms("Hillary Clinton")}
        assert by_source["Hillary Rodham Clinton"] == "title"
        assert by_source["Hillary R. Clinton"] == "redirect"


class TestTitleMatcher:
    def test_longest_match_wins(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki)
        matches = matcher.matches("Hillary Rodham Clinton arrived")
        assert matches[0].title == "Hillary Rodham Clinton"
        assert matches[0].surface == "Hillary Rodham Clinton"

    def test_redirect_surface_resolves(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki)
        matches = matcher.matches("Hillary Clinton arrived in France")
        titles = [m.title for m in matches]
        assert "Hillary Rodham Clinton" in titles
        assert "France" in titles

    def test_no_overlapping_matches(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki)
        matches = matcher.matches("Hillary Rodham Clinton")
        assert len(matches) == 1

    def test_lowercase_single_word_skipped(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki)
        assert matcher.match_titles("the france of old") == []

    def test_capitalized_single_word_matches(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki)
        assert matcher.match_titles("Visiting France today") == ["France"]

    def test_without_redirects(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki, use_redirects=False)
        assert matcher.match_titles("Hillary Clinton spoke") == []

    def test_no_matches(self, tiny_wiki):
        matcher = TitleMatcher(tiny_wiki)
        assert matcher.matches("nothing known here") == []


class TestBuiltSnapshot:
    """Checks against the full generated snapshot."""

    def test_chirac_expansion_matches_paper_example(self, wikipedia):
        graph = WikipediaGraph(wikipedia)
        titles = {n.title for n in graph.neighbours("Jacques Chirac", k=50)}
        # Section IV-B's worked example: context terms for Jacques
        # Chirac include "President of France".
        assert "President of France" in titles
        assert "France" in titles

    def test_every_entity_has_a_page(self, world, wikipedia):
        for entity in world.entities:
            assert wikipedia.resolve(entity.name) == entity.name

    def test_every_facet_term_has_a_page(self, world, wikipedia):
        for term in world.taxonomy.terms():
            assert wikipedia.resolve(term) is not None

    def test_variants_redirect(self, world, wikipedia):
        entity = world.entity("Hillary Rodham Clinton")
        for variant in entity.variants:
            assert wikipedia.resolve(variant) == entity.name

    def test_facet_pages_link_parent_and_children(self, world, wikipedia):
        taxonomy = world.taxonomy
        links = set(wikipedia.out_links("Leaders"))
        assert "People" in links
        assert set(taxonomy.children("Leaders")) <= links

    def test_facet_pages_do_not_link_siblings(self, world, wikipedia):
        # Sibling links would corrupt subsumption (see builder docs).
        assert "Germany" not in wikipedia.out_links("France")
