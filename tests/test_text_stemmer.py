"""Tests for the Porter stemmer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.text.stemmer import PorterStemmer, stem

# Classic input/output pairs from Porter's paper and reference vectors.
KNOWN_PAIRS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", KNOWN_PAIRS)
def test_known_pairs(word, expected):
    assert stem(word) == expected


class TestBasics:
    def test_short_words_untouched(self):
        assert stem("a") == "a"
        assert stem("at") == "at"

    def test_lowercases_input(self):
        assert stem("Running") == stem("running")

    def test_plural_singular_conflate(self):
        assert stem("elections") == stem("election")
        assert stem("markets") == stem("market")
        assert stem("leaders") == stem("leader")

    def test_class_and_function_agree(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("adjustment") == stem("adjustment")


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=25))
def test_stemmer_properties(word):
    result = stem(word)
    # A stem never grows and stays alphabetic.
    assert len(result) <= len(word)
    assert result.isalpha() or result == word
    # Stemming is idempotent for the vast majority of words; at minimum
    # it must not raise on its own output.
    stem(result)
