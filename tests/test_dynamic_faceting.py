"""Tests for dynamic faceting over query results."""

from __future__ import annotations

import time

import pytest

from repro.core.dynamic import DynamicFaceter
from repro.core.interface import FacetedInterface


@pytest.fixture(scope="module")
def faceter(pipeline_result, builder):
    return DynamicFaceter(
        pipeline_result.contextualized,
        edge_validator=builder.edge_evidence,
    )


class TestDynamicFaceter:
    def test_invalid_top_k(self, pipeline_result):
        with pytest.raises(ValueError):
            DynamicFaceter(pipeline_result.contextualized, top_k=0)

    def test_empty_result_set(self, faceter):
        assert faceter.facet_terms([]) == []
        assert faceter.facets_for([]) == []

    def test_unknown_ids_ignored(self, faceter):
        assert faceter.facet_terms(["no-such-doc"]) == []

    def test_subset_facets_reflect_subset(self, faceter, snyt, world):
        """Facets over a topical subset should feature that topic's
        facet terms more prominently than unrelated ones."""
        sports_ids = [
            doc.doc_id
            for doc in snyt
            if doc.gold and doc.gold.topic in ("baseball", "football", "tennis")
        ]
        if len(sports_ids) < 5:
            pytest.skip("not enough sports stories at this scale")
        terms = [c.term.lower() for c in faceter.facet_terms(sports_ids)]
        assert any(
            t in terms for t in ("sports", "athletes", "baseball", "football")
        )

    def test_subset_selection_differs_from_full(self, faceter, snyt):
        half = [doc.doc_id for doc in list(snyt)[: len(snyt) // 2]]
        full = [doc.doc_id for doc in snyt]
        assert faceter.facet_terms(half) != faceter.facet_terms(full)

    def test_no_resource_queries_at_query_time(self, pipeline_result, builder):
        """Dynamic faceting must reuse offline expansions only."""
        faceter = DynamicFaceter(pipeline_result.contextualized)
        ids = [doc.doc_id for doc in pipeline_result.documents[:30]]
        start = time.perf_counter()
        faceter.facet_terms(ids)
        elapsed = time.perf_counter() - start
        # Pure statistics over cached sets: well under a second for 30
        # documents ("almost independent of the collection size").
        assert elapsed < 1.0

    def test_facets_for_query(self, faceter, pipeline_result):
        interface = FacetedInterface.from_result(pipeline_result)
        facets = faceter.facets_for_query(interface, "summit treaty", limit=40)
        assert isinstance(facets, list)

    def test_hierarchies_populated(self, faceter, snyt):
        ids = [doc.doc_id for doc in list(snyt)[:40]]
        facets = faceter.facets_for(ids)
        if facets:
            all_ids = set(ids)
            for facet in facets:
                assert facet.root.doc_ids <= all_ids
