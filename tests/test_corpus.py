"""Tests for the corpus generator and dataset builders."""

from __future__ import annotations

import pytest

from repro.corpus import (
    ArticleGenerator,
    build_corpus,
    build_mnyt,
    build_snb,
    build_snyt,
)
from repro.corpus.sources import NEWSBLASTER_SOURCES, NYT_SOURCE
from repro.errors import CorpusError
from repro.text.tokenizer import normalize_term


class TestGenerator:
    def test_deterministic(self, world, config):
        generator = ArticleGenerator(world, config)
        doc_a = generator.generate("d1", config.rng("gen-test"))
        doc_b = generator.generate("d1", config.rng("gen-test"))
        assert doc_a.title == doc_b.title
        assert doc_a.body == doc_b.body

    def test_gold_annotation_attached(self, world, config):
        generator = ArticleGenerator(world, config)
        doc = generator.generate("d1", config.rng("gen-gold"))
        assert doc.gold is not None
        assert doc.gold.entity_names
        assert doc.gold.facet_terms

    def test_entities_actually_mentioned(self, world, config):
        generator = ArticleGenerator(world, config)
        rng = config.rng("gen-mention")
        for index in range(20):
            doc = generator.generate(f"d{index}", rng)
            text_norm = normalize_term(doc.text)
            for name in doc.gold.entity_names:
                entity = world.entity(name)
                surfaces = [normalize_term(s) for s in entity.all_names]
                assert any(s in text_norm for s in surfaces), (
                    f"{name} not mentioned in {doc.doc_id}"
                )

    def test_gold_terms_exist_in_taxonomy(self, world, config):
        generator = ArticleGenerator(world, config)
        doc = generator.generate("d1", config.rng("gen-tax"))
        for term in doc.gold.facet_terms:
            assert term in world.taxonomy

    def test_facet_terms_rarely_leak(self, world, config):
        """The pilot-study phenomenon: most gold facet terms are absent
        from the story text (65% in the paper)."""
        generator = ArticleGenerator(world, config)
        rng = config.rng("gen-leak")
        present = absent = 0
        for index in range(150):
            doc = generator.generate(f"d{index}", rng)
            text_norm = normalize_term(doc.text)
            for term in doc.gold.facet_terms:
                if normalize_term(term) in text_norm:
                    present += 1
                else:
                    absent += 1
        absence_rate = absent / (present + absent)
        assert 0.5 < absence_rate < 0.9

    def test_leaked_terms_recorded(self, world, config):
        generator = ArticleGenerator(world, config)
        rng = config.rng("gen-leak2")
        for index in range(50):
            doc = generator.generate(f"d{index}", rng)
            text_norm = normalize_term(doc.text)
            for term in doc.gold.leaked_terms:
                assert normalize_term(term) in text_norm


class TestDatasets:
    def test_snyt_size(self, config, snyt):
        assert len(snyt) == config.snyt_size

    def test_snb_uses_24_sources(self, config):
        corpus = build_snb(config)
        sources = {doc.source for doc in corpus}
        assert sources <= set(NEWSBLASTER_SOURCES)
        assert len(sources) > 10

    def test_snyt_single_source(self, snyt):
        assert {doc.source for doc in snyt} == {NYT_SOURCE}

    def test_mnyt_spans_a_month(self, config):
        corpus = build_mnyt(config)
        days = {doc.published.day for doc in corpus}
        assert len(days) >= 28

    def test_corpora_cached(self, config):
        assert build_snyt(config) is build_snyt(config)

    def test_unique_doc_ids(self, snyt):
        ids = [doc.doc_id for doc in snyt]
        assert len(ids) == len(set(ids))

    def test_string_name_accepted(self, config):
        assert build_corpus("snyt", config).name == "SNYT"

    def test_unknown_name_rejected(self, config):
        with pytest.raises(CorpusError):
            build_corpus("bogus", config)

    def test_sample(self, snyt, config):
        sample = snyt.sample(config.rng("sample"), 10)
        assert len(sample) == 10
        assert all(doc.doc_id in {d.doc_id for d in snyt} for doc in sample)

    def test_document_text_joins_title_and_body(self, snyt):
        doc = snyt[0]
        assert doc.text.startswith(doc.title)
        assert doc.body in doc.text
