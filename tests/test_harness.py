"""Tests for the experiment harness (small scale)."""

from __future__ import annotations

import pytest

from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.figures import figure4_terms, figure5_baseline_terms
from repro.harness.tables import run_pilot_study
from repro.eval.recall import StudyMatrix


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "EXP-T1", "EXP-T2", "EXP-T3", "EXP-T4", "EXP-T5", "EXP-T6",
            "EXP-T7", "EXP-F4", "EXP-F5", "EXP-GOLD", "EXP-SENS",
            "EXP-EFF", "EXP-US",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self, config):
        with pytest.raises(KeyError):
            run_experiment("EXP-T99", config)


class TestPilotStudy:
    def test_table1_facets(self, config):
        result = run_pilot_study(config, sample_size=60)
        facets = set(result.top_facets(8))
        # Table I inventory.
        assert "Location" in facets
        assert "People" in facets

    def test_format_renders(self, config):
        result = run_pilot_study(config, sample_size=40)
        text = result.format_table()
        assert "Facets" in text


class TestFigures:
    def test_figure4_general_terms(self, config):
        terms = figure4_terms(config, top_n=25)
        assert len(terms) == 25
        assert all(t == t.lower() for t in terms)

    def test_figure5_generic_terms(self, config, world):
        terms = figure5_baseline_terms(config, top_n=15)
        assert terms
        # Mostly non-facet filler.
        facet_like = sum(1 for t in terms if t in world.taxonomy)
        assert facet_like <= len(terms) * 0.4


class TestStudyMatrix:
    def test_format_table(self):
        matrix = StudyMatrix(dataset="X", metric="Recall")
        matrix.set("Google", "NE", 0.5)
        text = matrix.format_table()
        assert "Recall (X)" in text
        assert "0.500" in text

    def test_value_roundtrip(self):
        matrix = StudyMatrix(dataset="X", metric="Recall")
        matrix.set("All", "All", 0.9)
        assert matrix.value("All", "All") == 0.9
