"""Tests for domain-specific vocabularies (Section VII extension)."""

from __future__ import annotations

import pytest

from repro.corpus.document import Document
from repro.resources.domain import (
    DomainGlossary,
    DomainTermExtractor,
    DomainVocabularyResource,
    GlossaryEntry,
    financial_glossary,
)


@pytest.fixture()
def glossary():
    return financial_glossary()


class TestGlossary:
    def test_lookup(self, glossary):
        entry = glossary.lookup("mortgage")
        assert entry is not None
        assert "real estate finance" in entry.broader

    def test_lookup_case_insensitive(self, glossary):
        assert glossary.lookup("Mortgage") is not None

    def test_multiword_terms(self, glossary):
        assert "due diligence" in glossary
        assert "initial public offering" in glossary

    def test_unknown_term(self, glossary):
        assert glossary.lookup("platypus") is None
        assert "platypus" not in glossary

    def test_synonyms_resolve(self):
        glossary = DomainGlossary(
            "test",
            [GlossaryEntry("initial public offering", ("equity",), ("IPO",))],
        )
        assert glossary.lookup("IPO").term == "initial public offering"

    def test_requires_name(self):
        with pytest.raises(ValueError):
            DomainGlossary("", [])

    def test_from_entries(self):
        glossary = DomainGlossary.from_entries("g", {"bond": ["debt"]})
        assert glossary.lookup("bond").broader == ("debt",)


class TestDomainExtractor:
    def test_finds_glossary_terms(self, glossary):
        extractor = DomainTermExtractor(glossary)
        doc = Document(
            doc_id="d",
            title="Markets",
            body="The merger required months of due diligence before the "
            "initial public offering.",
        )
        terms = [t.lower() for t in extractor.extract(doc)]
        assert "merger" in terms
        assert "due diligence" in terms
        assert "initial public offering" in terms

    def test_longest_match_preferred(self, glossary):
        extractor = DomainTermExtractor(glossary)
        doc = Document(doc_id="d", title="t", body="the stock market rallied")
        terms = [t.lower() for t in extractor.extract(doc)]
        assert "stock market" in terms

    def test_deduplication(self, glossary):
        extractor = DomainTermExtractor(glossary)
        doc = Document(doc_id="d", title="t", body="bond bond bond")
        assert len(extractor.extract(doc)) == 1

    def test_no_matches(self, glossary):
        extractor = DomainTermExtractor(glossary)
        doc = Document(doc_id="d", title="t", body="gardening and birds")
        assert extractor.extract(doc) == []


class TestDomainResource:
    def test_expansion(self, glossary):
        resource = DomainVocabularyResource(glossary)
        assert "monetary policy" in resource.context_terms("inflation")

    def test_unknown_term_empty(self, glossary):
        resource = DomainVocabularyResource(glossary)
        assert resource.context_terms("zebra") == []

    def test_caching(self, glossary):
        resource = DomainVocabularyResource(glossary)
        resource.context_terms("bond")
        assert resource.cache_size == 1

    def test_in_pipeline(self, glossary):
        """A domain glossary slots into the standard pipeline."""
        from repro.core.annotate import annotate_database
        from repro.core.contextualize import contextualize
        from repro.core.selection import select_facet_terms

        documents = [
            Document(
                doc_id=f"d{i}",
                title="Deal news",
                body=f"The merger and the acquisition cleared review step{i}.",
            )
            for i in range(6)
        ] + [
            Document(doc_id=f"x{i}", title="Other", body=f"quiet day item{i}")
            for i in range(4)
        ]
        annotated = annotate_database(documents, [DomainTermExtractor(glossary)])
        contextualized = contextualize(
            annotated, [DomainVocabularyResource(glossary)]
        )
        terms = [c.term for c in select_facet_terms(contextualized, top_k=None)]
        assert "corporate transactions" in terms
