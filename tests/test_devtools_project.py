"""Project model: symbol table, call graph, and taint engine plumbing."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.devtools.context import ModuleContext
from repro.devtools.project import ProjectModel
from repro.devtools.taint import TaintEngine, TaintSpec


def _ctx(source: str, module: str) -> ModuleContext:
    return ModuleContext(
        textwrap.dedent(source),
        path=f"{module.replace('.', '/')}.py",
        module=module,
    )


@pytest.fixture()
def project() -> ProjectModel:
    """A two-module package exercising every resolution path."""
    base = _ctx(
        """
        class Base:
            def shared(self):
                return self.helper()

            def helper(self):
                return 1
        """,
        "pkg.base",
    )
    main = _ctx(
        """
        from pkg.base import Base

        def free():
            return local()

        def local():
            return 2

        class Child(Base):
            def __init__(self):
                self.x = free()

            def run(self):
                self.shared()
                return unknown_callable()

        def build():
            return Child()
        """,
        "pkg.main",
    )
    return ProjectModel([base, main])


def test_symbol_table_indexes_functions_methods_classes(project):
    assert "pkg.main.free" in project.functions
    assert "pkg.main.Child.run" in project.functions
    assert "pkg.base.Base" in project.classes
    assert project.classes["pkg.main.Child"].bases == ("pkg.base.Base",)


def test_call_graph_resolves_module_local_calls(project):
    assert "pkg.main.local" in project.callees("pkg.main.free")


def test_call_graph_resolves_inherited_method_through_self(project):
    # Child.run calls self.shared(), defined on the base class in
    # another module.
    assert "pkg.base.Base.shared" in project.callees("pkg.main.Child.run")
    # And Base.shared's own self-call stays in-class.
    assert "pkg.base.Base.helper" in project.callees("pkg.base.Base.shared")


def test_constructor_call_edges_to_init(project):
    assert "pkg.main.Child.__init__" in project.callees("pkg.main.build")


def test_unresolved_calls_are_recorded_not_guessed(project):
    assert "unknown_callable" in project.unresolved_calls("pkg.main.Child.run")
    assert not any(
        "unknown" in callee for callee in project.callees("pkg.main.Child.run")
    )


def test_reachability_walks_transitive_edges(project):
    reached = project.reachable(["pkg.main.free"])
    assert reached == {"pkg.main.free", "pkg.main.local"}


def test_lookup_method_walks_base_classes(project):
    info = project.lookup_method("pkg.main.Child", "helper")
    assert info is not None
    assert info.qualname == "pkg.base.Base.helper"
    assert project.lookup_method("pkg.main.Child", "nope") is None


def test_from_paths_skips_unparsable_files(tmp_path):
    good = tmp_path / "good.py"
    good.write_text("def f():\n    return 1\n", encoding="utf-8")
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    model = ProjectModel.from_paths([tmp_path])
    assert any(q.endswith(".f") or q == "good.f" for q in model.functions)


# -- taint engine summaries ---------------------------------------------------------


def test_returns_tainted_summary_and_memoization():
    ctx = _ctx(
        """
        class R:
            def _query(self, term):
                return [term]

            def passthrough(self, term):
                return self._query(term)

            def clean(self, term):
                return [term.upper()]
        """,
        "pkg.res",
    )
    project = ProjectModel([ctx])
    engine = TaintEngine(
        project,
        TaintSpec(sources=("attr:_query",), sanitizers=(), sinks=("attr:put",)),
    )
    assert engine.returns_tainted("pkg.res.R.passthrough") is True
    assert engine.returns_tainted("pkg.res.R.clean") is False
    assert engine.returns_tainted("pkg.res.R.passthrough") is True  # memoized
    assert engine.returns_tainted("pkg.res.does_not_exist") is False


def test_self_recursive_function_does_not_loop():
    ctx = _ctx(
        """
        class R:
            def _query(self, term):
                return [term]

            def rec(self, term, n):
                if n:
                    return self.rec(term, n - 1)
                return self._query(term)
        """,
        "pkg.res",
    )
    project = ProjectModel([ctx])
    engine = TaintEngine(
        project,
        TaintSpec(sources=("attr:_query",), sanitizers=(), sinks=("attr:put",)),
    )
    # Terminates, and the base case still marks the summary tainted.
    assert engine.returns_tainted("pkg.res.R.rec") is True


def test_resolve_symbol_prefers_module_locals_over_imports():
    ctx = _ctx(
        """
        from other import thing

        def thing():
            return 1
        """,
        "pkg.m",
    )
    project = ProjectModel([ctx])
    name_node = ast.Name(id="thing", ctx=ast.Load())
    assert project.resolve_symbol(ctx, name_node) == "pkg.m.thing"
