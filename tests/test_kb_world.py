"""Tests for the entity catalog and World container."""

from __future__ import annotations

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb.schema import Entity, EntityKind, Topic
from repro.kb.world import build_world


class TestSchema:
    def test_entity_requires_name(self):
        with pytest.raises(KnowledgeBaseError):
            Entity(name="", kind=EntityKind.PERSON)

    def test_entity_rejects_negative_prominence(self):
        with pytest.raises(KnowledgeBaseError):
            Entity(name="X", kind=EntityKind.PERSON, prominence=-1)

    def test_all_names(self):
        entity = Entity(name="A", kind=EntityKind.PERSON, variants=("B", "C"))
        assert entity.all_names == ("A", "B", "C")

    def test_facet_terms_deduplicated_in_order(self):
        entity = Entity(
            name="X",
            kind=EntityKind.PERSON,
            facet_paths=(("People", "Leaders"), ("People", "Athletes")),
        )
        assert entity.facet_terms == ("People", "Leaders", "Athletes")

    def test_topic_requires_vocabulary(self):
        with pytest.raises(KnowledgeBaseError):
            Topic(name="t", facet_terms=(), vocabulary=(), entity_kinds=())


class TestCatalog:
    def test_paper_examples_exist(self, world):
        for name in (
            "Jacques Chirac",
            "2005 G8 Summit",
            "Hillary Rodham Clinton",
            "Hasekura Tsunenaga",
            "Steve Jobs",
        ):
            assert world.entity(name).name == name

    def test_chirac_facets_match_paper(self, world):
        # "People -> Political Leaders" and "Regional/Europe/France".
        terms = world.entity("Jacques Chirac").facet_terms
        assert "Political Leaders" in terms
        assert "France" in terms
        assert "Europe" in terms

    def test_substantial_catalog(self, world):
        assert len(world.entities) > 300

    def test_unique_canonical_names(self, world):
        names = [e.name for e in world.entities]
        assert len(names) == len(set(names))

    def test_every_facet_path_in_taxonomy(self, world):
        for entity in world.entities:
            for path in entity.facet_paths:
                assert path[-1] in world.taxonomy
                assert world.taxonomy.path(path[-1]) == path

    def test_minor_entity_tail_exists(self, world):
        minor = [e for e in world.entities if e.prominence < 0.35]
        assert len(minor) > 100


class TestLookups:
    def test_find_by_variant(self, world):
        assert world.find_by_surface("Hillary Clinton").name == (
            "Hillary Rodham Clinton"
        )

    def test_find_case_insensitive(self, world):
        assert world.find_by_surface("chirac").name == "Jacques Chirac"

    def test_find_unknown(self, world):
        assert world.find_by_surface("nobody at all") is None

    def test_unknown_entity_raises(self, world):
        with pytest.raises(KnowledgeBaseError):
            world.entity("Nonexistent Person")

    def test_entities_of_kind(self, world):
        people = world.entities_of_kind(EntityKind.PERSON)
        assert all(e.kind == EntityKind.PERSON for e in people)
        assert people

    def test_entities_under_facet(self, world):
        leaders = world.entities_under_facet("Political Leaders")
        assert any(e.name == "Jacques Chirac" for e in leaders)

    def test_entities_under_unknown_facet(self, world):
        assert world.entities_under_facet("not a facet") == ()


class TestSampling:
    def test_sample_count(self, world, config):
        rng = config.rng("test-sample")
        sample = world.sample_entities(rng, 4)
        assert 1 <= len(sample) <= 4
        assert len({e.name for e in sample}) == len(sample)

    def test_sample_respects_hints(self, world, config):
        rng = config.rng("test-hints")
        sample = world.sample_entities(
            rng, 4, facet_hints=("Political Leaders",)
        )
        assert any("Political Leaders" in e.facet_terms for e in sample)

    def test_prominence_exponent_flattens(self, world, config):
        from collections import Counter

        counts_skewed: Counter[str] = Counter()
        counts_flat: Counter[str] = Counter()
        rng1 = config.rng("skew")
        rng2 = config.rng("flat")
        pool = list(world.entities)
        for _ in range(3000):
            counts_skewed[world.weighted_choice(rng1, pool, 1.0).name] += 1
            counts_flat[world.weighted_choice(rng2, pool, 0.0).name] += 1
        # Exponent 0 samples uniformly: more distinct entities drawn.
        assert len(counts_flat) > len(counts_skewed)

    def test_sample_topic_deterministic(self, world, config):
        t1 = world.sample_topic(config.rng("topic-a"))
        t2 = world.sample_topic(config.rng("topic-a"))
        assert t1.name == t2.name

    def test_world_memoized(self, config):
        assert build_world(config) is build_world(config)
