"""Unit tests for the must-close lattice (repro.devtools.lifecycle).

These drive :class:`LifecycleAnalysis` directly — acquire/close/escape
transfer, spec-aware ``with`` handling, the exception edges the CFG
models inside ``try``, and join behaviour on path-dependent leaks —
without going through the rule/analyzer stack.
"""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.context import ModuleContext
from repro.devtools.lifecycle import (
    RESOURCE_SPECS,
    LifecycleAnalysis,
    acquire_spec,
)


def analyze(source: str, function: str | None = "f") -> LifecycleAnalysis:
    """Run the analysis over ``def f`` (or the module body)."""
    ctx = ModuleContext(textwrap.dedent(source), path="m.py", module="m")
    if function is None:
        body = ctx.tree.body
    else:
        body = next(
            node.body
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == function
        )
    return LifecycleAnalysis(body, ctx.resolve)


# -- specs -------------------------------------------------------------------------


def test_specs_cover_the_required_resource_kinds():
    assert "sqlite3.connect" in RESOURCE_SPECS
    assert "socket.create_connection" in RESOURCE_SPECS
    assert "concurrent.futures.ThreadPoolExecutor" in RESOURCE_SPECS
    assert "tempfile.NamedTemporaryFile" in RESOURCE_SPECS
    # The stdlib trap: sqlite's context manager scopes a transaction,
    # not the connection lifetime.
    assert RESOURCE_SPECS["sqlite3.connect"].with_closes is False


def test_acquire_spec_handles_the_open_builtin():
    ctx = ModuleContext("open(p)\n", path="m.py", module="m")
    call = ctx.tree.body[0].value
    spec = acquire_spec(call, ctx.resolve)
    assert spec is not None and spec.label == "file handle"


# -- straight-line lifecycle -------------------------------------------------------


def test_unclosed_handle_leaks():
    analysis = analyze(
        """
        def f(p):
            handle = open(p)
            handle.read()
        """
    )
    leaks = analysis.leaks()
    assert len(leaks) == 1
    assert leaks[0].closed_somewhere is False
    assert leaks[0].site.name == "handle"


def test_explicit_close_is_clean():
    analysis = analyze(
        """
        def f(p):
            handle = open(p)
            handle.read()
            handle.close()
        """
    )
    assert analysis.leaks() == []


def test_executor_shutdown_and_tempfile_close_are_releases():
    analysis = analyze(
        """
        import tempfile
        from concurrent.futures import ThreadPoolExecutor

        def f():
            pool = ThreadPoolExecutor(max_workers=2)
            tmp = tempfile.NamedTemporaryFile()
            pool.shutdown(wait=True)
            tmp.close()
        """
    )
    assert analysis.leaks() == []


def test_rebinding_loses_the_only_reference():
    analysis = analyze(
        """
        def f(p):
            handle = open(p)
            handle = None
            return handle
        """
    )
    assert len(analysis.leaks()) == 1


# -- with-statement semantics ------------------------------------------------------


def test_with_open_closes_but_with_sqlite_does_not():
    clean = analyze(
        """
        def f(p):
            with open(p) as handle:
                return handle.read()
        """
    )
    assert clean.leaks() == []

    leaky = analyze(
        """
        import sqlite3

        def f(p):
            with sqlite3.connect(p) as conn:
                conn.execute("SELECT 1")
        """
    )
    leaks = leaky.leaks()
    assert len(leaks) == 1
    assert leaks[0].site.spec.label == "sqlite3 connection"


def test_contextlib_closing_manages_a_sqlite_connection():
    analysis = analyze(
        """
        import sqlite3
        from contextlib import closing

        def f(p):
            with closing(sqlite3.connect(p)) as conn:
                conn.execute("SELECT 1")
        """
    )
    assert analysis.leaks() == []


def test_bare_with_on_a_bound_name_releases_with_closing_specs_only():
    clean = analyze(
        """
        def f(p):
            handle = open(p)
            with handle:
                handle.read()
        """
    )
    assert clean.leaks() == []

    leaky = analyze(
        """
        import sqlite3

        def f(p):
            conn = sqlite3.connect(p)
            with conn:
                conn.execute("INSERT INTO t VALUES (1)")
        """
    )
    assert len(leaky.leaks()) == 1


# -- escapes -----------------------------------------------------------------------


def test_returned_handle_is_an_ownership_transfer():
    analysis = analyze(
        """
        def f(p):
            handle = open(p)
            return handle
        """
    )
    assert analysis.leaks() == []


def test_handle_passed_to_a_call_escapes():
    analysis = analyze(
        """
        def f(p, sink):
            handle = open(p)
            sink(handle)
        """
    )
    assert analysis.leaks() == []


def test_attribute_store_escapes_to_the_owning_object():
    analysis = analyze(
        """
        import sqlite3

        def f(self, p):
            self.conn = sqlite3.connect(p)
        """
    )
    assert analysis.leaks() == []


def test_method_receiver_use_is_not_an_escape():
    analysis = analyze(
        """
        import sqlite3

        def f(p):
            conn = sqlite3.connect(p)
            conn.execute("SELECT 1")
            rows = conn.execute("SELECT 2").fetchall()
            return rows
        """
    )
    assert len(analysis.leaks()) == 1


# -- path sensitivity --------------------------------------------------------------


def test_branch_that_skips_the_close_is_path_dependent():
    analysis = analyze(
        """
        def f(p, flag):
            handle = open(p)
            if flag:
                handle.close()
        """
    )
    leaks = analysis.leaks()
    assert len(leaks) == 1
    assert leaks[0].closed_somewhere is True


def test_exception_path_skipping_the_close_leaks():
    analysis = analyze(
        """
        import sqlite3

        def f(p):
            conn = sqlite3.connect(p)
            try:
                conn.execute("SELECT 1")
            except ValueError:
                return []
            conn.close()
        """
    )
    leaks = analysis.leaks()
    assert len(leaks) == 1
    assert leaks[0].closed_somewhere is True


def test_try_finally_close_covers_raise_and_return_paths():
    analysis = analyze(
        """
        import sqlite3

        def f(p):
            conn = sqlite3.connect(p)
            try:
                return conn.execute("SELECT 1").fetchall()
            except ValueError as exc:
                raise RuntimeError("boom") from exc
            finally:
                conn.close()
        """
    )
    assert analysis.leaks() == []


def test_sites_are_assigned_deterministically_in_block_order():
    source = """
        def f(p, q):
            a = open(p)
            b = open(q)
            a.close()
            b.close()
        """
    first = analyze(source)
    second = analyze(source)
    assert [site.site_id for site in first.sites] == [0, 1]
    assert [site.name for site in first.sites] == ["a", "b"]
    assert [site.name for site in second.sites] == ["a", "b"]
