"""Cross-cutting consistency checks: the world, topics, and substrates
must agree with each other (the honesty conditions of the simulation)."""

from __future__ import annotations

from repro.eval.metrics import match_key
from repro.kb.schema import EntityKind
from repro.kb.topics import TOPICS, topic_by_name
from repro.text.stopwords import STOPWORDS


class TestTopics:
    def test_lookup(self):
        assert topic_by_name("elections").name == "elections"

    def test_unknown_topic(self):
        import pytest

        with pytest.raises(KeyError):
            topic_by_name("astrology")

    def test_topics_have_positive_weights(self):
        assert all(topic.weight > 0 for topic in TOPICS)

    def test_vocabulary_not_stopwords(self):
        for topic in TOPICS:
            for word in topic.vocabulary:
                assert word not in STOPWORDS, f"{topic.name}: {word}"

    def test_facet_hints_select_entities(self, world):
        for topic in world.topics:
            if not topic.facet_hints:
                continue
            pool = [
                e
                for hint in topic.facet_hints
                for e in world.entities_under_facet(hint)
            ]
            assert pool, f"topic {topic.name} has no hinted entities"


class TestWorldSubstrateAgreement:
    def test_gold_terms_reachable_through_wikipedia(self, world, wikipedia):
        """Every facet term on an entity's paths is linked from the
        entity's page (the recall mechanism)."""
        for entity in world.entities[:60]:
            links = set(wikipedia.out_links(entity.name))
            for term in entity.facet_terms:
                if term == entity.name:
                    continue  # pages do not link to themselves
                assert term in links, f"{entity.name} !-> {term}"

    def test_related_terms_have_pages(self, world, wikipedia):
        for entity in world.entities[:60]:
            for related in entity.related_terms:
                assert wikipedia.resolve(related) is not None

    def test_annotator_candidates_are_world_grounded(self, world, snyt):
        """Simulated annotators never invent terms outside the world."""
        from repro.eval.annotators import candidate_terms

        known_keys = {match_key(t) for t in world.taxonomy.terms()}
        for entity in world.entities:
            known_keys.add(match_key(entity.name))
            for related in entity.related_terms:
                known_keys.add(match_key(related))
        for doc in list(snyt)[:30]:
            for term, _ in candidate_terms(world, doc):
                assert match_key(term) in known_keys

    def test_entity_kinds_partition(self, world):
        kinds = {e.kind for e in world.entities}
        assert EntityKind.PERSON in kinds
        assert EntityKind.ORGANIZATION in kinds
        assert EntityKind.LOCATION in kinds
        assert EntityKind.EVENT in kinds

    def test_location_entities_match_taxonomy_terms(self, world):
        for entity in world.entities_of_kind(EntityKind.LOCATION):
            assert entity.name in world.taxonomy
