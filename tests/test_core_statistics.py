"""Tests for shifts and the log-likelihood statistic (Section IV-C)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.likelihood import (
    binomial_log_likelihood,
    chi_square_statistic,
    log_likelihood_ratio,
)
from repro.core.shifts import frequency_shift, is_shift_candidate, rank_shift
from repro.text.vocabulary import Vocabulary


def vocab_from(df_table: dict[str, int], n_docs: int) -> Vocabulary:
    """Build a vocabulary with given document frequencies."""
    vocabulary = Vocabulary()
    for index in range(n_docs):
        terms = [t for t, df in df_table.items() if index < df]
        vocabulary.add_document(terms or ["__filler__"])
    return vocabulary


class TestShifts:
    def test_frequency_shift_definition(self):
        original = vocab_from({"x": 3}, 10)
        contextualized = vocab_from({"x": 8}, 10)
        assert frequency_shift("x", original, contextualized) == 5

    def test_frequency_shift_negative(self):
        original = vocab_from({"x": 8}, 10)
        contextualized = vocab_from({"x": 3}, 10)
        assert frequency_shift("x", original, contextualized) == -5

    def test_rank_shift_positive_when_term_rises(self):
        # x is rare among many terms originally, frequent afterwards.
        original = vocab_from({f"t{i}": 5 for i in range(20)} | {"x": 1}, 10)
        contextualized = vocab_from({f"t{i}": 5 for i in range(20)} | {"x": 10}, 10)
        assert rank_shift("x", original, contextualized) > 0

    def test_rank_shift_zero_for_stable_term(self):
        table = {f"t{i}": 5 for i in range(10)} | {"x": 7}
        original = vocab_from(table, 10)
        contextualized = vocab_from(table, 10)
        assert rank_shift("x", original, contextualized) == 0

    def test_absent_term_gets_large_rank_shift(self):
        original = vocab_from({f"t{i}": 3 for i in range(50)}, 10)
        contextualized = vocab_from(
            {f"t{i}": 3 for i in range(50)} | {"new": 9}, 10
        )
        assert rank_shift("new", original, contextualized) > 3

    def test_candidate_requires_both_shifts(self):
        # df rises but rank bin unchanged -> not a candidate.
        original = vocab_from({"x": 6, "y": 50}, 60)
        contextualized = vocab_from({"x": 7, "y": 50}, 60)
        assert frequency_shift("x", original, contextualized) > 0
        assert not is_shift_candidate("x", original, contextualized)


class TestBinomialLogLikelihood:
    def test_matches_formula(self):
        value = binomial_log_likelihood(0.3, 3, 10)
        expected = 3 * math.log(0.3) + 7 * math.log(0.7)
        assert value == pytest.approx(expected)

    def test_zero_counts_use_xlogy_convention(self):
        assert binomial_log_likelihood(0.0, 0, 10) == 0.0
        assert binomial_log_likelihood(1.0, 10, 10) == 0.0


class TestLogLikelihoodRatio:
    def test_zero_when_frequencies_equal(self):
        assert log_likelihood_ratio(5, 5, 100) == pytest.approx(0.0, abs=1e-9)

    def test_positive_when_frequencies_differ(self):
        assert log_likelihood_ratio(5, 50, 100) > 0

    def test_monotone_in_difference(self):
        small = log_likelihood_ratio(10, 20, 100)
        large = log_likelihood_ratio(10, 60, 100)
        assert large > small

    def test_symmetric_in_direction(self):
        up = log_likelihood_ratio(10, 30, 100)
        down = log_likelihood_ratio(30, 10, 100)
        assert up == pytest.approx(down)

    def test_extremes(self):
        assert log_likelihood_ratio(0, 100, 100) > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            log_likelihood_ratio(1, 1, 0)
        with pytest.raises(ValueError):
            log_likelihood_ratio(-1, 5, 10)
        with pytest.raises(ValueError):
            log_likelihood_ratio(5, 11, 10)

    @given(
        st.integers(0, 200),
        st.integers(0, 200),
        st.integers(200, 500),
    )
    def test_always_nonnegative(self, df1, df2, n):
        assert log_likelihood_ratio(df1, df2, n) >= -1e-9

    @given(st.integers(0, 100), st.integers(100, 300))
    def test_identical_counts_score_zero(self, df, n):
        if df <= n:
            assert log_likelihood_ratio(df, df, n) == pytest.approx(0, abs=1e-9)


class TestChiSquare:
    def test_zero_when_equal(self):
        assert chi_square_statistic(10, 10, 100) == pytest.approx(0.0)

    def test_positive_when_different(self):
        assert chi_square_statistic(5, 50, 100) > 0

    def test_degenerate_table(self):
        assert chi_square_statistic(0, 0, 10) == 0.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            chi_square_statistic(1, 1, 0)
