"""Trigger / clean / sanitized matrices for the flow rules.

Every rule gets at least one fixture that must fire, one that must not,
and one where a sanitizer/guard launders the flow.
"""

from __future__ import annotations

import textwrap

from repro.devtools import Analyzer


def _findings(source: str, module: str, select: "set[str] | None" = None):
    analyzer = Analyzer(select=select)
    return analyzer.analyze_source(
        textwrap.dedent(source), path=f"{module.replace('.', '/')}.py", module=module
    )


def _rule_ids(source: str, module: str, select: "set[str] | None" = None):
    return [f.rule_id for f in _findings(source, module, select)]


# -- FLOW001: resource response -> cache write --------------------------------------


def test_flow001_raw_query_to_put_fires():
    ids = _rule_ids(
        """
        class R:
            def _query(self, term):
                return [term]

            def fetch(self, term):
                result = self._query(term)
                self.cache.put("ns", term, result)
        """,
        "repro.resources.fake",
        select={"FLOW001"},
    )
    assert ids == ["FLOW001"]


def test_flow001_sanitized_response_is_clean():
    ids = _rule_ids(
        """
        def validate_context_terms(raw):
            return tuple(x for x in raw if x)

        class R:
            def _query(self, term):
                return [term]

            def fetch(self, term):
                result = validate_context_terms(self._query(term))
                self.cache.put("ns", term, result)
        """,
        "repro.resources.fake",
        select={"FLOW001"},
    )
    assert ids == []


def test_flow001_unrelated_value_is_clean():
    ids = _rule_ids(
        """
        class R:
            def fetch(self, term):
                result = (term,)
                self.cache.put("ns", term, result)
        """,
        "repro.resources.fake",
        select={"FLOW001"},
    )
    assert ids == []


def test_flow001_taint_survives_tuple_and_helper_return():
    # One level inter-procedural: _wrapped returns the raw response, so
    # its call sites are tainted even though they never call _query.
    ids = _rule_ids(
        """
        class R:
            def _query(self, term):
                return [term]

            def _wrapped(self, term):
                return self._query(term)

            def fetch(self, term):
                result = tuple(self._wrapped(term))
                self.cache.put("ns", term, result)
        """,
        "repro.resources.fake",
        select={"FLOW001"},
    )
    assert ids == ["FLOW001"]


def test_flow001_branch_that_skips_validation_still_fires():
    ids = _rule_ids(
        """
        def validate_context_terms(raw):
            return tuple(raw)

        class R:
            def _query(self, term):
                return [term]

            def fetch(self, term, clean):
                result = self._query(term)
                if clean:
                    result = validate_context_terms(result)
                self.cache.put("ns", term, result)
        """,
        "repro.resources.fake",
        select={"FLOW001"},
    )
    assert ids == ["FLOW001"]


def test_flow001_out_of_scope_module_is_ignored():
    ids = _rule_ids(
        """
        class R:
            def _query(self, term):
                return [term]

            def fetch(self, term):
                self.cache.put("ns", term, self._query(term))
        """,
        "repro.core.fake",
        select={"FLOW001"},
    )
    assert ids == []


# -- FLOW002: silent exception swallow ----------------------------------------------


def test_flow002_bare_pass_handler_fires():
    ids = _rule_ids(
        """
        def f():
            try:
                g()
            except ValueError:
                pass
        """,
        "repro.resources.fake",
        select={"FLOW002"},
    )
    assert ids == ["FLOW002"]


def test_flow002_logged_reraised_degraded_and_captured_are_clean():
    ids = _rule_ids(
        """
        def a():
            try:
                g()
            except ValueError:
                log.warning("a.failed")

        def b():
            try:
                g()
            except ValueError:
                raise RuntimeError("wrapped") from None

        def c(self):
            try:
                g()
            except ValueError as exc:
                self._degrade(exc)

        def d():
            last = None
            try:
                g()
            except ValueError as exc:
                last = exc
            return last
        """,
        "repro.resources.fake",
        select={"FLOW002"},
    )
    assert ids == []


def test_flow002_suppressable_with_noqa():
    ids = _rule_ids(
        """
        def f():
            try:
                g()
            except ValueError:  # repro: noqa[FLOW002]
                pass
        """,
        "repro.resources.fake",
        select={"FLOW002"},
    )
    assert ids == []


# -- RACE001: shared mutable state on worker paths ----------------------------------


def test_race001_module_global_mutated_by_payload_fires():
    findings = _findings(
        """
        SHARED = []

        class Chunk:
            def __call__(self):
                helper()

        def helper():
            SHARED.append(1)
        """,
        "fake.parallel",
        select={"RACE001"},
    )
    assert [f.rule_id for f in findings] == ["RACE001"]
    assert "SHARED" in findings[0].message


def test_race001_lock_guard_is_clean():
    ids = _rule_ids(
        """
        import threading

        SHARED = []
        _lock = threading.Lock()

        class Chunk:
            def __call__(self):
                with _lock:
                    SHARED.append(1)
        """,
        "fake.parallel",
        select={"RACE001"},
    )
    assert ids == []


def test_race001_local_shadow_is_clean():
    ids = _rule_ids(
        """
        SHARED = []

        class Chunk:
            def __call__(self):
                SHARED = []
                SHARED.append(1)
        """,
        "fake.parallel",
        select={"RACE001"},
    )
    assert ids == []


def test_race001_function_off_worker_path_is_clean():
    ids = _rule_ids(
        """
        SHARED = []

        class Chunk:
            def __call__(self):
                return 1

        def not_a_worker():
            SHARED.append(1)
        """,
        "fake.parallel",
        select={"RACE001"},
    )
    assert ids == []


def test_race001_global_rebinding_fires():
    ids = _rule_ids(
        """
        STATE = {}

        class Chunk:
            def __call__(self):
                global STATE
                STATE = {}
        """,
        "fake.parallel",
        select={"RACE001"},
    )
    assert ids == ["RACE001"]


# -- DET002: data-flow unordered-iteration tracking ---------------------------------


def _det002(source: str):
    return _findings(source, "repro.core.fake", select={"DET002"})


def test_det002_rebinding_through_sorted_launders_every_path():
    assert (
        _det002(
            """
            def f(xs):
                s = set(xs)
                s = sorted(s)
                return [x for x in s]
            """
        )
        == []
    )


def test_det002_alias_of_a_set_stays_unordered():
    findings = _det002(
        """
        def f(xs):
            s = set(xs)
            t = s
            return [x for x in t]
        """
    )
    assert [f.rule_id for f in findings] == ["DET002"]


def test_det002_partial_rebind_still_fires():
    findings = _det002(
        """
        def f(xs, c):
            s = set(xs)
            if c:
                s = sorted(s)
            return [x for x in s]
        """
    )
    assert [f.rule_id for f in findings] == ["DET002"]


def test_det002_augmented_union_keeps_setness():
    findings = _det002(
        """
        def f(xs, ys):
            s = set(xs)
            s |= set(ys)
            return [x for x in s]
        """
    )
    assert [f.rule_id for f in findings] == ["DET002"]


def test_det002_for_loop_without_ordered_output_is_clean():
    assert (
        _det002(
            """
            def f(xs):
                total = 0
                seen = set()
                for x in set(xs):
                    seen.add(x)
                return total
            """
        )
        == []
    )


def test_det002_finding_carries_a_sorted_fix():
    (finding,) = _det002(
        """
        def f(xs):
            s = set(xs)
            return [x for x in s]
        """
    )
    assert finding.fix is not None
    assert finding.fix.replacement == "sorted(s)"
