"""Tests for the text-database substrate (store, index, search)."""

from __future__ import annotations

from datetime import date

import pytest

from repro.corpus.document import Document, GoldAnnotation
from repro.db.inverted_index import InvertedIndex
from repro.db.search import BM25Searcher
from repro.db.store import DocumentStore
from repro.errors import StorageError


def make_doc(doc_id: str, title: str, body: str) -> Document:
    return Document(doc_id=doc_id, title=title, body=body)


@pytest.fixture()
def docs():
    return [
        make_doc("d1", "Storm hits coast", "The storm caused flooding on the coast."),
        make_doc("d2", "Market rally", "The stock market rallied as investors cheered."),
        make_doc("d3", "Storm aftermath", "Rescue teams searched after the storm."),
    ]


class TestDocumentStore:
    def test_add_and_get(self, docs):
        store = DocumentStore(docs)
        assert store.get("d2").title == "Market rally"
        assert len(store) == 3

    def test_duplicate_rejected(self, docs):
        store = DocumentStore(docs)
        with pytest.raises(StorageError):
            store.add(docs[0])

    def test_unknown_id(self, docs):
        store = DocumentStore(docs)
        with pytest.raises(StorageError):
            store.get("nope")

    def test_contains_and_iter(self, docs):
        store = DocumentStore(docs)
        assert "d1" in store
        assert [d.doc_id for d in store] == ["d1", "d2", "d3"]

    def test_sqlite_roundtrip(self, docs, tmp_path):
        gold = GoldAnnotation(
            topic="weather",
            entity_names=("Storm Center",),
            facet_terms=("Nature", "Weather"),
            leaked_terms=("Weather",),
        )
        original = Document(
            doc_id="g1",
            title="T",
            body="B",
            source="S",
            published=date(2005, 11, 3),
            gold=gold,
        )
        store = DocumentStore(docs + [original])
        path = str(tmp_path / "store.sqlite")
        store.save(path)
        loaded = DocumentStore.load(path)
        assert len(loaded) == 4
        restored = loaded.get("g1")
        assert restored.gold == gold
        assert restored.published == date(2005, 11, 3)
        assert loaded.get("d1").gold is None

    def test_load_bad_file(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_text("this is not sqlite")
        with pytest.raises(StorageError):
            DocumentStore.load(str(path))


class TestInvertedIndex:
    def test_document_frequency(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert index.document_frequency("storm") == 2
        assert index.document_frequency("market") == 1
        assert index.document_frequency("zebra") == 0

    def test_stopwords_not_indexed(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert "the" not in index

    def test_phrases_indexed(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert "stock market" in index

    def test_postings_carry_tf(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        postings = index.postings("storm")
        by_id = {p.doc_id: p.term_frequency for p in postings}
        assert by_id["d1"] == 2  # title + body

    def test_documents_with(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert index.documents_with("storm") == {"d1", "d3"}

    def test_lengths(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert index.document_count == 3
        assert index.average_document_length > 0
        assert index.document_length("d1") > 0
        assert index.document_length("nope") == 0


class TestBM25:
    def test_relevant_doc_ranks_first(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        searcher = BM25Searcher(index)
        results = searcher.search("stock market investors")
        assert results[0].doc_id == "d2"

    def test_multiple_matches_ordered(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        results = BM25Searcher(index).search("storm")
        assert {r.doc_id for r in results} == {"d1", "d3"}
        assert results[0].score >= results[1].score

    def test_no_match(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert BM25Searcher(index).search("xylophone") == []

    def test_stopword_only_query(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert BM25Searcher(index).search("the and of") == []

    def test_limit(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        assert len(BM25Searcher(index).search("storm", limit=1)) == 1

    def test_parameter_validation(self, docs):
        index = InvertedIndex()
        with pytest.raises(ValueError):
            BM25Searcher(index, k1=-1)
        with pytest.raises(ValueError):
            BM25Searcher(index, b=2)

    def test_scores_positive(self, docs):
        index = InvertedIndex()
        index.add_documents(docs)
        for result in BM25Searcher(index).search("storm coast"):
            assert result.score > 0
