"""Quickstart: extract facet hierarchies from a news corpus.

Builds a small simulated New York Times day, runs the full unsupervised
pipeline of Dakka & Ipeirotis (ICDE 2008) — important-term extraction,
context expansion, comparative frequency analysis, subsumption — and
prints the resulting browsing facets.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FacetPipelineBuilder
from repro.config import ReproConfig
from repro.corpus import build_snyt


def main() -> None:
    # Scale 0.25 builds a 250-story corpus: enough to see real facets
    # in a few seconds.  Use scale=1.0 for the paper-sized corpus.
    config = ReproConfig(scale=0.25)
    corpus = build_snyt(config)
    print(f"Corpus: {corpus.name} with {len(corpus)} stories")
    story = corpus[0]
    print(f"\nSample story: {story.title}\n  {story.body[:180]}...\n")

    builder = FacetPipelineBuilder(config)
    pipeline = builder.build()
    result = pipeline.run(corpus.documents)

    print(f"Pipeline stages (s): {result.timings}")
    print(f"\nTop 20 facet terms (by log-likelihood):")
    for candidate in result.facet_terms[:20]:
        print(
            f"  {candidate.term:<30} df {candidate.df_original:>4} -> "
            f"{candidate.df_contextualized:>4}  score {candidate.score:8.1f}"
        )

    print("\nTop facets with children:")
    shown = 0
    for facet in result.hierarchies:
        if facet.size < 2:
            continue
        children = ", ".join(
            f"{child.term} ({child.count})" for child in facet.root.children[:5]
        )
        print(f"  {facet.name} ({facet.root.count} docs) -> {children}")
        shown += 1
        if shown >= 8:
            break


if __name__ == "__main__":
    main()
