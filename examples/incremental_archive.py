"""Incremental archive maintenance (the Section V-D deployment loop).

A news archive ingests a new day of stories at a time; term and context
extraction run only on the new batch (resources memoize per-term
answers), and the facet hierarchies refresh from the accumulated
statistics.

Run:  python examples/incremental_archive.py
"""

from __future__ import annotations

import time

from repro import FacetPipelineBuilder
from repro.config import ReproConfig
from repro.core.archive import FacetArchive
from repro.corpus import build_snyt
from repro.extractors.base import ExtractorName
from repro.extractors.registry import build_extractors
from repro.resources.base import ResourceName
from repro.resources.composite import CompositeResource
from repro.resources.registry import build_resources


def main() -> None:
    config = ReproConfig(scale=0.3)
    builder = FacetPipelineBuilder(config)
    corpus = build_snyt(config)
    days = [corpus.documents[i::3] for i in range(3)]  # three "days"

    extractors = build_extractors(
        list(ExtractorName), wikipedia=builder.substrates.wikipedia
    )
    resources = build_resources(
        list(ResourceName), builder.substrates, config
    )
    archive = FacetArchive(
        extractors,
        [CompositeResource(resources)],
        edge_validator=builder.edge_evidence,
    )

    for day, batch in enumerate(days, start=1):
        start = time.perf_counter()
        archive.add_documents(batch)
        ingest = time.perf_counter() - start
        start = time.perf_counter()
        terms = archive.facet_terms(top_k=10)
        refresh = time.perf_counter() - start
        print(
            f"day {day}: +{len(batch)} stories (ingest {ingest:.2f}s, "
            f"facet refresh {refresh:.2f}s); archive={len(archive)}"
        )
        print("  top facets:", ", ".join(c.term for c in terms[:8]))


if __name__ == "__main__":
    main()
