"""Faceted browsing: OLAP-style slice and dice over a news archive.

Demonstrates the browsing interface of Section V-E: keyword search,
facet drill-down, multi-facet dice, and dynamic facet counts over a
query's result set (the paper's "facet hierarchies over lengthy query
results").

Run:  python examples/news_browsing.py
"""

from __future__ import annotations

from repro import FacetPipelineBuilder
from repro.config import ReproConfig
from repro.core.interface import FacetedInterface
from repro.corpus import build_snyt


def main() -> None:
    config = ReproConfig(scale=0.25)
    corpus = build_snyt(config)
    builder = FacetPipelineBuilder(config)
    result = builder.with_top_k(300).build().run(corpus.documents)
    interface = FacetedInterface.from_result(result)

    print("=== Facet sidebar (top-level counts) ===")
    for entry in interface.top_level_counts()[:10]:
        print(f"  {entry.term:<28} {entry.count:>4} docs")

    browsable = next(f for f in interface.facets if f.size >= 3)
    root = browsable.name
    print(f"\n=== Drill-down into {root!r} ===")
    for child in interface.children(root)[:6]:
        print(f"  {root} > {child.term:<24} {child.count:>4} docs")

    child = interface.children(root)[0].term
    print(f"\n=== Dice: {root!r} AND {child!r} ===")
    for doc in interface.dice([root, child])[:5]:
        print(f"  [{doc.doc_id}] {doc.title}")

    print("\n=== Search + facets ===")
    query = "summit treaty"
    hits = interface.search(query, limit=8)
    print(f"search({query!r}) -> {len(hits)} hits")
    for doc in hits[:3]:
        print(f"  [{doc.doc_id}] {doc.title}")
    hit_ids = {d.doc_id for d in hits}
    print("dynamic facets over these results:")
    for entry in interface.facet_counts_for(hit_ids, max_facets=5):
        print(f"  {entry.term:<28} {entry.count:>3} of {len(hit_ids)}")

    constrained = interface.search_with_facets(query, [root], limit=5)
    print(f"search restricted to {root!r}: {len(constrained)} hits")


if __name__ == "__main__":
    main()
