"""Domain-specific facet extraction (the paper's Section VII scenario).

"When browsing literature for financial topics, we can use one of the
available glossaries to identify financial terms in the documents; then,
we can expand the identified terms using one (or more) of the available
financial ontologies."

This example runs the pipeline with a financial glossary as both the
term identifier and the expansion ontology, alongside the general
resources, over the business/markets slice of a simulated news day.

Run:  python examples/financial_facets.py
"""

from __future__ import annotations

from repro.config import ReproConfig
from repro.core.annotate import annotate_database
from repro.core.contextualize import contextualize
from repro.core.selection import select_facet_terms
from repro.corpus import build_snyt
from repro.resources.domain import (
    DomainTermExtractor,
    DomainVocabularyResource,
    financial_glossary,
)


def main() -> None:
    config = ReproConfig(scale=0.3)
    corpus = build_snyt(config)
    business = [
        doc
        for doc in corpus
        if doc.gold and doc.gold.topic in ("markets", "corporate", "economy")
    ]
    print(f"{len(business)} business stories out of {len(corpus)}")

    glossary = financial_glossary()
    extractor = DomainTermExtractor(glossary)
    resource = DomainVocabularyResource(glossary)

    annotated = annotate_database(business, [extractor])
    sample = business[0]
    print(f"\n[{sample.doc_id}] {sample.title}")
    print("financial terms:", annotated.important(sample.doc_id))

    contextualized = contextualize(annotated, [resource])
    candidates = select_facet_terms(contextualized, top_k=15)
    print("\nDomain facet terms (financial ontology expansion):")
    for candidate in candidates:
        print(
            f"  {candidate.term:<28} df {candidate.df_original:>3} -> "
            f"{candidate.df_contextualized:>3}  score {candidate.score:7.1f}"
        )


if __name__ == "__main__":
    main()
