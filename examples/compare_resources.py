"""Compare term extractors and external resources (Tables II/V in miniature).

Runs the extractor x resource grid on a small corpus and prints recall
against the simulated annotators' gold facet terms — the experiment
design of Section V-B at a laptop-friendly scale.

Run:  python examples/compare_resources.py
"""

from __future__ import annotations

from repro.config import ReproConfig
from repro.corpus import build_snyt
from repro.eval.recall import RecallStudy


def main() -> None:
    config = ReproConfig(scale=0.25)
    corpus = build_snyt(config)
    print(f"Running the 4x5 grid on {len(corpus)} stories ...\n")
    study = RecallStudy(config)
    matrix = study.run(corpus)
    print(matrix.format_table())
    print(
        "\nReading guide (paper shape): the All x All cell should win, "
        "Wikipedia Graph is the strongest single resource, Wikipedia "
        "Synonyms the weakest, and WordNet collapses when paired with "
        "the named-entity extractor."
    )


if __name__ == "__main__":
    main()
