"""Run any paper experiment by id.

Usage:
    python examples/reproduce_paper.py            # list experiments
    python examples/reproduce_paper.py EXP-T1     # run one
    REPRO_SCALE=0.25 python examples/reproduce_paper.py EXP-T2
"""

from __future__ import annotations

import sys

from repro.config import ReproConfig
from repro.harness import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("Available experiments:")
        for experiment in EXPERIMENTS.values():
            print(f"  {experiment.experiment_id:<10} {experiment.title}")
        print("\nUsage: python examples/reproduce_paper.py <EXP-ID>")
        return 0
    experiment_id = argv[1]
    if experiment_id not in EXPERIMENTS:
        print(f"unknown experiment: {experiment_id}")
        return 1
    config = ReproConfig()
    print(f"Running {experiment_id}: {EXPERIMENTS[experiment_id].title}")
    result = run_experiment(experiment_id, config)
    if hasattr(result, "format_table"):
        print(result.format_table())
    elif hasattr(result, "format_summary"):
        print(result.format_summary())
    elif hasattr(result, "searches_per_repetition"):
        print("searches/rep:", result.searches_per_repetition)
        print("clicks/rep:", result.clicks_per_repetition)
        print("search reduction: %.0f%%" % (100 * result.search_reduction))
        print("time reduction: %.0f%%" % (100 * result.time_reduction))
        print("satisfaction: %.2f" % result.mean_satisfaction)
    else:
        print(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
