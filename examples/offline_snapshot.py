"""Offline deployment: persist every artifact to SQLite and reload.

Section V-D recommends performing term and context extraction offline.
This example runs the full offline phase once, saves the document store,
the simulated Wikipedia snapshot, AND the per-document expansions to
SQLite files, then reloads everything in a fresh state and serves
query-time dynamic faceting from the reloaded artifacts — the complete
production loop.

Run:  python examples/offline_snapshot.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import FacetPipelineBuilder
from repro.config import ReproConfig
from repro.core.dynamic import DynamicFaceter
from repro.core.persistence import load_expansions, save_expansions
from repro.corpus import build_snyt
from repro.db.store import DocumentStore
from repro.extractors.wiki_titles import WikipediaTitleExtractor
from repro.wikipedia import WikipediaDatabase


def main() -> None:
    config = ReproConfig(scale=0.1)
    corpus = build_snyt(config)
    builder = FacetPipelineBuilder(config)
    result = builder.build().run(corpus.documents)  # the offline phase

    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = str(Path(tmp) / "corpus.sqlite")
        wiki_path = str(Path(tmp) / "wikipedia.sqlite")
        expansions_path = str(Path(tmp) / "expansions.sqlite")

        DocumentStore.from_corpus(corpus).save(corpus_path)
        builder.substrates.wikipedia.save(wiki_path)
        save_expansions(result.contextualized, expansions_path)
        print(f"saved {len(corpus)} documents -> {corpus_path}")
        print(
            f"saved {builder.substrates.wikipedia.page_count} Wikipedia "
            f"pages -> {wiki_path}"
        )
        print(f"saved per-document expansions -> {expansions_path}")

        # --- a fresh process would start here ---
        store = DocumentStore.load(corpus_path)
        snapshot = WikipediaDatabase.load(wiki_path)
        restored = load_expansions(list(store), expansions_path)
        print(
            f"reloaded {len(store)} documents, {snapshot.page_count} pages, "
            f"and expansions"
        )

        extractor = WikipediaTitleExtractor(snapshot)
        doc = next(iter(store))
        print(f"\n[{doc.doc_id}] {doc.title}")
        print("important terms:", extractor.extract(doc))

        faceter = DynamicFaceter(restored)
        subset = [d.doc_id for d in list(store)[:30]]
        terms = faceter.facet_terms(subset)
        print(
            "dynamic facets over 30 reloaded docs:",
            [c.term for c in terms[:8]],
        )


if __name__ == "__main__":
    main()
