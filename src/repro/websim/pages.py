"""Synthetic web pages derived from the knowledge base."""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import ReproConfig
from ..kb.world import World

#: Promotional boilerplate that pollutes snippets (drives the Google
#: precision drop the paper reports).  The pool is deliberately wide so
#: that no single noise word dominates globally — each page samples a
#: few, as real sites carry their own chrome.
BOILERPLATE: tuple[str, ...] = (
    "official", "site", "news", "reviews", "guide", "online", "free",
    "best", "top", "deals", "shop", "latest", "exclusive", "updates",
    "photos", "video", "click", "subscribe", "newsletter", "archive",
    "homepage", "welcome", "contact", "about", "privacy", "terms",
    "login", "register", "account", "search", "browse", "categories",
    "featured", "popular", "trending", "recommended", "related",
    "sponsored", "advertisement", "promotion", "discount", "coupon",
    "shipping", "delivery", "checkout", "cart", "wishlist", "compare",
    "ratings", "comments", "forum", "community", "blog", "podcast",
    "gallery", "slideshow", "download", "mobile", "app", "widget",
    "rss", "feed", "sitemap", "copyright", "careers", "press",
)

#: Pages generated per entity.
PAGES_PER_ENTITY = 3

#: Pages generated per facet term.
PAGES_PER_FACET_TERM = 1


@dataclass(frozen=True)
class WebPage:
    """One simulated web page."""

    url: str
    title: str
    text: str


def _entity_page(
    world: World, entity_index: int, page_index: int, rng: random.Random
) -> WebPage:
    entity = world.entities[entity_index]
    fragments: list[str] = [entity.name]
    # The web "knows" the entity's context: facet terms and related terms
    # appear in page text about it.
    fragments.extend(entity.facet_terms)
    fragments.extend(entity.related_terms)
    fragments.extend(entity.description_words)
    if entity.variants:
        fragments.append(rng.choice(entity.variants))
    # Promotional noise: a couple of chrome words per page.
    for _ in range(rng.randint(1, 2)):
        fragments.append(rng.choice(BOILERPLATE))
    # Cross-contamination: a mention of an unrelated entity.
    other = rng.choice(world.entities)
    fragments.append(other.name)
    rng.shuffle(fragments)
    text = " . ".join(fragments)
    return WebPage(
        url=f"web://entity/{entity_index}/{page_index}",
        title=f"{entity.name} — {rng.choice(BOILERPLATE)}",
        text=text,
    )


def _facet_page(world: World, term: str, rng: random.Random) -> WebPage:
    taxonomy = world.taxonomy
    fragments: list[str] = [term]
    parent = taxonomy.parent(term)
    if parent is not None:
        fragments.append(parent)
    fragments.extend(taxonomy.children(term)[:4])
    for entity in world.entities_under_facet(term)[:4]:
        fragments.append(entity.name)
    for _ in range(rng.randint(1, 2)):
        fragments.append(rng.choice(BOILERPLATE))
    rng.shuffle(fragments)
    return WebPage(
        url=f"web://facet/{term.replace(' ', '_')}",
        title=f"{term} — {rng.choice(BOILERPLATE)}",
        text=" . ".join(fragments),
    )


def build_web_corpus(
    world: World, config: ReproConfig | None = None
) -> list[WebPage]:
    """Generate the deterministic synthetic web for ``world``."""
    config = config or ReproConfig()
    rng = config.rng("websim")
    pages: list[WebPage] = []
    for entity_index in range(len(world.entities)):
        for page_index in range(PAGES_PER_ENTITY):
            pages.append(_entity_page(world, entity_index, page_index, rng))
    for term in world.taxonomy.terms():
        for _ in range(PAGES_PER_FACET_TERM):
            pages.append(_facet_page(world, term, rng))
    return pages
