"""Simulated web search (the paper's "Google" context resource).

The paper queries Google with each important term and mines the most
frequent words and phrases from the returned snippets — broad coverage,
but noticeably noisy because only titles and snippets (not full pages)
are processed, which the paper identifies as the cause of Google's lower
precision (Section V-C).

We reproduce both properties: a synthetic web corpus generated from the
knowledge base covers every entity and facet term (high recall), and the
pages are salted with promotional boilerplate that leaks into snippet
term counts (lower precision).
"""

from .pages import WebPage, build_web_corpus
from .engine import SearchEngineSim, Snippet

__all__ = ["WebPage", "build_web_corpus", "SearchEngineSim", "Snippet"]
