"""The snippet search engine over the synthetic web."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from ..text.stopwords import is_stopword
from ..text.tokenizer import normalize_term, word_tokens
from .pages import WebPage

#: Snippet length in words around the first query match.
SNIPPET_WINDOW = 30


@dataclass(frozen=True)
class Snippet:
    """A search hit: url, title, and the snippet text."""

    url: str
    title: str
    text: str


class SearchEngineSim:
    """tf-scored search with snippet generation (the Google stand-in)."""

    def __init__(self, pages: list[WebPage]) -> None:
        self._pages = pages
        self._postings: dict[str, dict[int, int]] = defaultdict(dict)
        self._page_words: list[list[str]] = []
        self._title_words: list[set[str]] = []
        for index, page in enumerate(pages):
            words = word_tokens(f"{page.title} {page.text}")
            self._page_words.append(words)
            self._title_words.append(set(word_tokens(page.title)))
            for word in words:
                entry = self._postings[word]
                entry[index] = entry.get(index, 0) + 1

    def search(self, query: str, limit: int = 10) -> list[Snippet]:
        """Top pages for ``query``, with snippets around the match."""
        terms = [w for w in word_tokens(query) if not is_stopword(w)]
        if not terms:
            return []
        scores: Counter[int] = Counter()
        for term in terms:
            for page_index, tf in self._postings.get(term, {}).items():
                scores[page_index] += tf
        # Title boost: pages whose title contains every query term rank
        # first, as on a real engine — Google("People") should return
        # pages *about* people, not pages that merely mention the word.
        for page_index in list(scores):
            if all(term in self._title_words[page_index] for term in terms):
                scores[page_index] += 25
        phrase = normalize_term(query)
        results: list[Snippet] = []
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        for page_index, _ in ranked[:limit]:
            page = self._pages[page_index]
            results.append(
                Snippet(
                    url=page.url,
                    title=page.title,
                    text=self._snippet(page_index, terms, phrase),
                )
            )
        return results

    def _snippet(self, page_index: int, terms: list[str], phrase: str) -> str:
        words = self._page_words[page_index]
        anchor = 0
        for position, word in enumerate(words):
            if word in terms:
                anchor = position
                break
        start = max(0, anchor - SNIPPET_WINDOW // 2)
        return " ".join(words[start : start + SNIPPET_WINDOW])

    def frequent_snippet_terms(
        self, query: str, limit: int = 10, result_count: int = 10
    ) -> list[str]:
        """Most frequent non-query words/bigrams in the result snippets.

        This is the context-term extraction the paper performs on Google
        results: only titles and snippets are mined, never full pages.
        """
        snippets = self.search(query, limit=result_count)
        query_words = set(word_tokens(query))
        counts: Counter[str] = Counter()
        for snippet in snippets:
            words = [
                w
                for w in word_tokens(f"{snippet.title} {snippet.text}")
                if not is_stopword(w) and w not in query_words
            ]
            counts.update(words)
            for i in range(len(words) - 1):
                counts[f"{words[i]} {words[i + 1]}"] += 1
            for i in range(len(words) - 2):
                counts[f"{words[i]} {words[i + 1]} {words[i + 2]}"] += 1
        # Subsumed-fragment suppression (as in C-value phrase mining):
        # a term that almost always occurs inside a longer counted
        # phrase ("united" inside "united states") is a fragment, not a
        # context term of its own.
        longer_by_word: Counter[str] = Counter()
        for term, count in counts.items():
            words_in_term = term.split()
            if len(words_in_term) > 1:
                for word in words_in_term:
                    longer_by_word[word] = max(longer_by_word[word], count)
                if len(words_in_term) == 2:
                    longer_by_word[term] = 0  # bigrams checked vs trigrams below
        for term, count in counts.items():
            if len(term.split()) == 3:
                for i in range(2):
                    bigram = " ".join(term.split()[i : i + 2])
                    longer_by_word[bigram] = max(longer_by_word[bigram], count)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        results = []
        for term, count in ranked:
            if longer_by_word.get(term, 0) >= count * 0.8:
                continue
            results.append(term)
            if len(results) >= limit:
                break
        return results
