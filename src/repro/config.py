"""Configuration objects shared across the library.

All stochastic components receive seeds derived from a single
:class:`ReproConfig`, so a fixed configuration reproduces every experiment
bit-for-bit.  Dataset sizes follow the paper (SNYT = 1,000, SNB = 17,000,
MNYT = 30,000 stories) scaled by ``scale`` (or the ``REPRO_SCALE``
environment variable) for quick runs.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

from .errors import ConfigError
from .observability.logging import get_logger

log = get_logger(__name__)

#: Dataset sizes used in the paper (Section V-A).
PAPER_SNYT_SIZE = 1_000
PAPER_SNB_SIZE = 17_000
PAPER_MNYT_SIZE = 30_000

#: Number of news sources aggregated by Newsblaster (Section V-A).
PAPER_SNB_SOURCES = 24

#: Number of stories annotated per dataset in the recall study (Section V-B).
PAPER_ANNOTATED_SAMPLE = 1_000

#: Annotators per story in the Mechanical Turk studies (Section V-B/V-C).
PAPER_ANNOTATORS_PER_STORY = 5

#: Agreement thresholds from the paper: a gold term needs >= 2 annotators;
#: a facet term is "precise" when >= 4 of 5 annotators agree.
PAPER_RECALL_AGREEMENT = 2
PAPER_PRECISION_AGREEMENT = 4

#: Top-k Wikipedia Graph neighbours returned per query (footnote 8).
PAPER_WIKI_GRAPH_TOP_K = 50


def _env_scale(default: float = 1.0) -> float:
    """Read the ``REPRO_SCALE`` environment variable, if set."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if value <= 0:
        raise ConfigError(f"REPRO_SCALE must be positive, got {value}")
    log.debug("config.env_override", variable="REPRO_SCALE", value=value)
    return value


def _env_workers(default: int = 1) -> int:
    """Read the ``REPRO_WORKERS`` environment variable, if set."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ConfigError(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ConfigError(f"REPRO_WORKERS must be >= 1, got {value}")
    log.debug("config.env_override", variable="REPRO_WORKERS", value=value)
    return value


#: Chunks handed out per worker when ``chunk_size`` is automatic; more
#: than one keeps the pool busy when chunks are unevenly expensive.
_AUTO_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True, kw_only=True)
class ParallelConfig:
    """Batch-execution settings for the parallel pipeline.

    All parameters are keyword-only: positional construction silently
    reordering ``workers``/``chunk_size`` is exactly the kind of bug a
    frozen config should rule out.

    Parameters
    ----------
    workers:
        Worker pool size for Step 1 annotation and Step 2
        contextualization.  ``1`` (default, or ``REPRO_WORKERS``) runs
        the stages serially; results are bit-for-bit identical at every
        worker count.
    chunk_size:
        Documents per work chunk; None derives a size from the corpus
        and worker count.  Chunking never changes results, only
        scheduling granularity.
    backend:
        ``"thread"`` (default; right for the latency-bound remote
        resources) or ``"process"`` (sidesteps the GIL for CPU-bound
        extraction; requires picklable extractors/resources).
    cache_path:
        SQLite file for the shared persistent resource cache; None
        keeps resource caching purely in-process.
    memory_cache_size:
        Bound of each resource's in-process LRU tier.
    batch_queries:
        Route contextualization through the batched query engine: each
        work chunk's distinct important terms are answered with one
        deduplicated batch per resource (bulk backend lookups, batched
        persistent-cache I/O, single-flight coalescing) instead of one
        round trip per term.  Results are bit-for-bit identical either
        way; False keeps the per-term path (used by benchmarks as the
        comparison baseline).
    prefetch:
        Start resolving each annotation chunk's important terms against
        the resources while later chunks are still being tagged,
        overlapping latency-bound expansion with CPU-bound extraction.
        Prefetch only warms caches (results are identical with it off)
        and activates only for thread-backed pools with ``workers > 1``.
    columnar:
        Run Steps 1-3 on the columnar data plane
        (:mod:`repro.core.columnar`): normalized terms are interned to
        stable ``int32`` ids, df/tf/rank statistics live in flat arrays,
        chunk workers memoize the pure text functions, and process-pool
        workers read the background vocabulary from a shared read-only
        memory segment.  Results are bit-for-bit identical either way;
        False keeps the dict-of-strings path (used by benchmarks as the
        comparison baseline).
    """

    workers: int = field(default_factory=_env_workers)
    chunk_size: int | None = None
    backend: str = "thread"
    cache_path: str | None = None
    memory_cache_size: int = 65_536
    batch_queries: bool = True
    prefetch: bool = True
    columnar: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.backend not in ("thread", "process"):
            raise ConfigError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        if self.memory_cache_size < 1:
            raise ConfigError(
                f"memory_cache_size must be >= 1, got {self.memory_cache_size}"
            )

    @property
    def enabled(self) -> bool:
        """True when the worker pool is actually used."""
        return self.workers > 1

    def resolve_chunk_size(self, item_count: int) -> int:
        """Chunk size for ``item_count`` items (explicit or derived)."""
        if self.chunk_size is not None:
            return self.chunk_size
        divisor = max(1, self.workers * _AUTO_CHUNKS_PER_WORKER)
        return max(1, -(-item_count // divisor))


@dataclass(frozen=True, kw_only=True)
class IncrementalConfig:
    """Settings for the incremental (streaming) extraction path.

    Parameters
    ----------
    checkpoint_dir:
        Run directory for versioned on-disk snapshots; None disables
        checkpointing (the in-memory incremental state still works).
    checkpoint_every:
        Checkpoint after every N ingested batches.
    keep_snapshots:
        Snapshots retained in the run directory; older ones are pruned
        after each successful write.
    resume:
        Load the latest good snapshot from ``checkpoint_dir`` on
        start-up instead of beginning from an empty corpus.
    """

    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    keep_snapshots: int = 3
    resume: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.keep_snapshots < 1:
            raise ConfigError(
                f"keep_snapshots must be >= 1, got {self.keep_snapshots}"
            )


@dataclass(frozen=True, kw_only=True)
class ServingConfig:
    """Settings for the faceted-browsing HTTP service.

    Parameters
    ----------
    host / port:
        Bind address.  Port ``0`` asks the OS for a free port (the bound
        port is printed and available on the running server object).
    default_limit:
        Documents returned when a request does not pass ``limit``.
    max_limit:
        Hard row cap; requests asking for more are rejected with 400.
    time_budget_seconds:
        Per-request wall-clock budget; queries still running when it
        expires are answered with 503.
    cache_max_age:
        ``Cache-Control: max-age`` seconds on data responses (every data
        response also carries an ETag derived from the artifact
        checksum, so conditional requests revalidate cheaply).
    """

    host: str = "127.0.0.1"
    port: int = 8125
    default_limit: int = 10
    max_limit: int = 200
    time_budget_seconds: float = 5.0
    cache_max_age: int = 60

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.default_limit < 1:
            raise ConfigError(
                f"default_limit must be >= 1, got {self.default_limit}"
            )
        if self.max_limit < self.default_limit:
            raise ConfigError(
                f"max_limit must be >= default_limit, got {self.max_limit}"
            )
        if self.time_budget_seconds <= 0:
            raise ConfigError(
                "time_budget_seconds must be positive, got "
                f"{self.time_budget_seconds}"
            )
        if self.cache_max_age < 0:
            raise ConfigError(
                f"cache_max_age must be >= 0, got {self.cache_max_age}"
            )


@dataclass(frozen=True, kw_only=True)
class ReproConfig:
    """Top-level configuration for experiments.

    All parameters are keyword-only (``ReproConfig(seed=7, scale=0.1)``).

    Parameters
    ----------
    seed:
        Master seed.  Component seeds are derived deterministically from it.
    scale:
        Multiplier applied to the paper's corpus sizes.  ``1.0`` builds the
        full SNYT/SNB/MNYT corpora; smaller values shrink them
        proportionally (the annotated sample shrinks too, but never below
        50 stories).
    wiki_graph_top_k:
        ``k`` for the Wikipedia Graph resource (the paper uses 50).
    annotators_per_story:
        Mechanical Turk annotators assigned to each story.
    parallel:
        Batch-execution settings (worker count, chunk size, shared
        cache path); the default is serial with no persistent cache.
    incremental:
        Streaming-extraction settings (checkpoint directory, cadence,
        retention); the default keeps everything in memory.
    """

    seed: int = 20080407
    scale: float = field(default_factory=_env_scale)
    wiki_graph_top_k: int = PAPER_WIKI_GRAPH_TOP_K
    annotators_per_story: int = PAPER_ANNOTATORS_PER_STORY
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    incremental: IncrementalConfig = field(default_factory=IncrementalConfig)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.wiki_graph_top_k <= 0:
            raise ConfigError(
                f"wiki_graph_top_k must be positive, got {self.wiki_graph_top_k}"
            )
        if self.annotators_per_story < 1:
            raise ConfigError(
                "annotators_per_story must be at least 1, got "
                f"{self.annotators_per_story}"
            )

    def rng(self, namespace: str) -> random.Random:
        """Return a deterministic RNG for a named component."""
        return random.Random(f"{self.seed}:{namespace}")

    def cache_fingerprint(self) -> str:
        """Namespace suffix isolating persistent-cache entries per world.

        Two runs with different seeds/scales simulate different worlds
        whose resources answer differently; sharing one cache file is
        only safe when entries carry this fingerprint.
        """
        return f"seed={self.seed}|scale={self.scale}|k={self.wiki_graph_top_k}"

    def scaled(self, size: int, minimum: int = 10) -> int:
        """Scale a paper corpus size, bounded below by ``minimum``."""
        return max(minimum, int(round(size * self.scale)))

    @property
    def snyt_size(self) -> int:
        return self.scaled(PAPER_SNYT_SIZE)

    @property
    def snb_size(self) -> int:
        return self.scaled(PAPER_SNB_SIZE)

    @property
    def mnyt_size(self) -> int:
        return self.scaled(PAPER_MNYT_SIZE)

    @property
    def annotated_sample_size(self) -> int:
        return self.scaled(PAPER_ANNOTATED_SAMPLE, minimum=50)


DEFAULT_CONFIG = ReproConfig()
