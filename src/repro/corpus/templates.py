"""Sentence and headline templates for the article generator.

Slots: ``{e}``/``{e2}`` entity mentions, ``{w}``/``{w2}``/``{w3}`` topic
vocabulary, ``{g}``/``{g2}`` generic newswire filler, ``{d}`` an entity
description word, ``{f}`` a leaked facet term (lower-cased).

The generic filler pool reproduces the high-document-frequency words the
paper's Figure 5 shows a plain subsumption baseline latching onto
("year", "new", "time", "people", ...).
"""

from __future__ import annotations

#: High-frequency newswire filler (Figure 5 of the paper).
GENERIC_FILLER: tuple[str, ...] = (
    "year", "time", "people", "state", "work", "school", "home", "report",
    "game", "million", "week", "percent", "help", "plan", "house", "world",
    "month", "call", "thing", "right", "high", "live",
)

#: Verbs used in headline and body patterns.
HEADLINE_VERBS: tuple[str, ...] = (
    "Faces", "Weighs", "Unveils", "Defends", "Questions", "Backs",
    "Rejects", "Signals", "Presses", "Revisits",
)

BODY_VERBS: tuple[str, ...] = (
    "announced", "confirmed", "suggested", "warned", "acknowledged",
    "argued", "reported", "insisted", "predicted", "disclosed",
)

HEADLINE_TEMPLATES: tuple[str, ...] = (
    "{e} {hv} New {wt} Plan",
    "{wt} Concerns Grow Around {e}",
    "{e} {hv} {wt} Questions",
    "For {e}, a {wt} Test",
    "{wt} Shift Puts {e} in Spotlight",
    "{e} and the {w} Debate",
)

BODY_TEMPLATES: tuple[str, ...] = (
    "{e} {bv} that the {w} would reshape the {w2} this {g}.",
    "Officials close to {e} {bv} a new {w} {g} after months of {w2}.",
    "The {w} drew sharp reactions, and {e} {bv} that more {w2} was likely.",
    "In a statement, {e} pointed to the {w} as a sign of {w2} to come.",
    "Last {g}, {e} had already {bv} plans to review the {w2}.",
    "People familiar with the {w} said {e} would address the {w2} next {g}.",
    "Critics said the {w} could cost a {g} of dollars and slow the {w2}.",
    "Supporters countered that the {w2} would {g2} the {d} of {e}.",
    "A report released this {g} put the {w} at the center of the {w2}.",
    "{e} and {e2} have clashed over the {w} since early this {g}.",
    "At a briefing, {e2} {bv} that the {w} remained on track.",
    "The {d} of {e} has long shaped how the {w2} is seen at {g} and abroad.",
    "Few expected the {w} to move so quickly, one {d} said this {g}.",
    "The {w2} comes as {e} prepares for a difficult {g} ahead.",
    "Residents said the {w} changed daily {g2} in ways that are hard to {g}.",
    "Analysts who follow the {w2} said {e} still faces {w3} pressure.",
    "By the end of the {g}, the {w} had become a test of the {w2}.",
    "The {w3} surrounding {e2} added urgency to the {w} discussions.",
    "Both sides agree the {w2} will define the coming {g}.",
    "A spokesman for {e} declined to discuss the {w3} in detail.",
    "Inside {e}, the mood over the {w} has shifted since last {g}.",
    "Documents reviewed this {g} show the {w2} was larger than {e} had said.",
    "For {e2}, the {w} marks a sharp break with the past {g}.",
    "Whether the {w2} holds depends, aides to {e} conceded, on the next {g}.",
    "The {w} left {e} with fewer options than at any point this {g}.",
    "Rivals of {e} moved quickly to exploit the {w2}.",
)

#: Sentences that leak a facet term into the text (low probability).
FACET_LEAK_TEMPLATES: tuple[str, ...] = (
    "Observers framed the story as a matter of {f}.",
    "The episode renewed a broader debate over {f}.",
    "It is the kind of development that puts {f} back on the front page.",
    "Questions about {f} hovered over the announcement.",
    "For many, this was really about {f}.",
    "Editors filed the piece under {f}.",
    "The dispute touches on {f} in ways both sides acknowledge.",
    "Commentators kept returning to {f}.",
    "At its core, the disagreement concerns {f}.",
    "Readers saw in it a familiar theme: {f}.",
)

#: Dateline patterns: "PARIS —" style openings.
DATELINE_TEMPLATE = "{place} — "
