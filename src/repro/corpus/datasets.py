"""Builders for the paper's three evaluation corpora.

* ``SNYT`` — 1,000 NYT stories from a single day (November 2005),
* ``SNB``  — 17,000 stories from one day of 24 Newsblaster sources,
* ``MNYT`` — 30,000 NYT stories covering one month.

Sizes scale with :attr:`repro.config.ReproConfig.scale`.  Corpora are
memoized per ``(dataset, seed, scale)`` because the larger ones are
expensive to regenerate inside benchmark loops.
"""

from __future__ import annotations

import enum
from datetime import date, timedelta

from ..config import ReproConfig
from ..errors import CorpusError
from ..kb.world import World, build_world
from .document import Corpus
from .generator import ArticleGenerator
from .sources import NEWSBLASTER_SOURCES, NYT_SOURCE


class DatasetName(enum.Enum):
    """The three corpora of Section V-A."""

    SNYT = "SNYT"
    SNB = "SNB"
    MNYT = "MNYT"


_CACHE: dict[tuple[str, int, float], Corpus] = {}


#: Entity-sampling skew per dataset: the 24-source Newsblaster corpus
#: reaches deepest into the entity tail, a month of one paper a bit
#: deeper than a single day (matches the paper's gold-set ordering
#: SNB > MNYT > SNYT).
PROMINENCE_EXPONENTS: dict[str, float] = {
    "SNYT": 1.0,
    "SNB": 0.6,
    "MNYT": 0.8,
}


def _generate(
    name: DatasetName,
    size: int,
    config: ReproConfig,
    world: World,
) -> Corpus:
    generator = ArticleGenerator(
        world,
        config,
        prominence_exponent=PROMINENCE_EXPONENTS[name.value],
    )
    rng = config.rng(f"corpus:{name.value}")
    documents = []
    base_day = date(2005, 11, 14)
    for index in range(size):
        if name is DatasetName.SNB:
            source = NEWSBLASTER_SOURCES[index % len(NEWSBLASTER_SOURCES)]
            published = base_day
        elif name is DatasetName.MNYT:
            source = NYT_SOURCE
            published = date(2005, 11, 1) + timedelta(days=index % 30)
        else:
            source = NYT_SOURCE
            published = base_day
        documents.append(
            generator.generate(
                doc_id=f"{name.value.lower()}-{index:06d}",
                rng=rng,
                source=source,
                published=published,
            )
        )
    return Corpus(name=name.value, documents=documents)


def build_corpus(
    name: DatasetName | str,
    config: ReproConfig | None = None,
    world: World | None = None,
) -> Corpus:
    """Build (or fetch from cache) one of the paper's corpora."""
    if isinstance(name, str):
        try:
            name = DatasetName(name.upper())
        except ValueError as exc:
            raise CorpusError(f"unknown dataset: {name!r}") from exc
    config = config or ReproConfig()
    key = (name.value, config.seed, config.scale)
    corpus = _CACHE.get(key)
    if corpus is None:
        world = world or build_world(config)
        sizes = {
            DatasetName.SNYT: config.snyt_size,
            DatasetName.SNB: config.snb_size,
            DatasetName.MNYT: config.mnyt_size,
        }
        corpus = _generate(name, sizes[name], config, world)
        _CACHE[key] = corpus
    return corpus


def build_snyt(config: ReproConfig | None = None) -> Corpus:
    """The single-day New York Times corpus (1,000 stories at scale 1)."""
    return build_corpus(DatasetName.SNYT, config)


def build_snb(config: ReproConfig | None = None) -> Corpus:
    """The single-day Newsblaster corpus (17,000 stories, 24 sources)."""
    return build_corpus(DatasetName.SNB, config)


def build_mnyt(config: ReproConfig | None = None) -> Corpus:
    """The one-month New York Times corpus (30,000 stories)."""
    return build_corpus(DatasetName.MNYT, config)
