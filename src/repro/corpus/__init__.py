"""Synthetic news corpora standing in for the paper's datasets.

The paper evaluates on three collections (Section V-A): SNYT (1,000 NYT
stories from one day in November 2005), SNB (17,000 Newsblaster stories
from 24 sources), and MNYT (30,000 NYT stories covering one month).
This subpackage generates statistically comparable synthetic corpora from
the knowledge base: articles mention entities and topical vocabulary, but
the ground-truth *facet* terms appear in the text only rarely — the
paper's central observation (65% of user-identified facet terms were
absent from the stories).
"""

from .document import Corpus, Document, GoldAnnotation
from .generator import ArticleGenerator
from .datasets import DatasetName, build_corpus, build_mnyt, build_snb, build_snyt

__all__ = [
    "Corpus",
    "Document",
    "GoldAnnotation",
    "ArticleGenerator",
    "DatasetName",
    "build_corpus",
    "build_snyt",
    "build_snb",
    "build_mnyt",
]
