"""Document and corpus containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date


@dataclass(frozen=True)
class GoldAnnotation:
    """Ground truth attached to a generated document.

    This mirrors what the paper's human annotators knew about a story:
    which subject it covers, which entities it mentions, and which facet
    terms apply.  It exists **only for evaluation** — the extraction
    pipeline never reads it.
    """

    topic: str
    entity_names: tuple[str, ...]
    facet_terms: tuple[str, ...]
    leaked_terms: tuple[str, ...] = ()
    """Facet terms that also appear verbatim in the article text."""


@dataclass(frozen=True)
class Document:
    """A news story in the text database."""

    doc_id: str
    title: str
    body: str
    source: str = "The New York Times"
    published: date = date(2005, 11, 14)
    gold: GoldAnnotation | None = None

    @property
    def text(self) -> str:
        """Title and body concatenated (what the extractors see)."""
        return f"{self.title}. {self.body}"

    def __len__(self) -> int:
        return len(self.text)


@dataclass
class Corpus:
    """A named collection of documents."""

    name: str
    documents: list[Document] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def __getitem__(self, index: int) -> Document:
        return self.documents[index]

    def sample(self, rng, count: int) -> "Corpus":
        """A deterministic random sample of ``count`` documents."""
        count = min(count, len(self.documents))
        picked = rng.sample(self.documents, count)
        return Corpus(name=f"{self.name}-sample{count}", documents=picked)
