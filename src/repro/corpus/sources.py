"""News-source inventory for the simulated Newsblaster feed.

Newsblaster (McKeown et al., 2003) aggregates 24 English news sources;
the SNB dataset in the paper is one day of its output.  The names below
are fictional but fill the same role: SNB documents carry a mix of
sources, SNYT/MNYT documents carry a single one.
"""

from __future__ import annotations

NYT_SOURCE = "The New York Times"

#: 24 simulated feeds for the Newsblaster-style SNB corpus.
NEWSBLASTER_SOURCES: tuple[str, ...] = (
    NYT_SOURCE,
    "The Harborview Courier",
    "The Daily Meridian",
    "Crestwood Tribune",
    "The Morning Ledger",
    "Bayfield Gazette",
    "The Continental Post",
    "Riverdale Observer",
    "The Evening Standard-Herald",
    "Stonebridge Chronicle",
    "The National Register",
    "Mapleton Times",
    "The Metropolitan Review",
    "Elmhurst Examiner",
    "The Atlantic Dispatch",
    "Brookside Journal",
    "The Pacific Sentinel",
    "Northgate News",
    "The Capitol Record",
    "Lakeshore Press",
    "The Global Monitor",
    "Summit City Star",
    "The Federal Gazette",
    "Keystone Daily",
)
