"""The synthetic news-article generator.

Each article is grounded in the knowledge base: a topic supplies the
vocabulary, sampled entities supply the protagonists, and the gold facet
terms are the topic's facet terms plus the terms on the entities' facet
paths.  Facet terms are deliberately *leaked* into the text only with low
probability (:data:`FACET_LEAK_PROBABILITY`), reproducing the paper's
pilot-study observation that 65% of user-identified facet terms do not
appear in the story.
"""

from __future__ import annotations

import random
from datetime import date

from ..config import ReproConfig
from ..kb.schema import Entity, EntityKind, Topic
from ..kb.world import World
from . import templates
from .document import Document, GoldAnnotation

#: Probability that a gold facet term is written into the article text.
#: Calibrated so that, combined with facet terms that appear naturally
#: (location names, topical nouns), roughly 35% of gold terms occur in
#: the text — the complement of the paper's 65% figure.
FACET_LEAK_PROBABILITY = 0.19

#: Cap on deliberately leaked facet terms per article.
MAX_LEAKS_PER_ARTICLE = 5

#: Probability that a repeat mention of an entity uses a variant form.
VARIANT_MENTION_PROBABILITY = 0.75

#: Probability that even the *first* mention is canonical; newspapers
#: often introduce well-known figures by a short form ("Mrs. Clinton"),
#: so the canonical name may never appear in the story — the situation
#: the Wikipedia-synonyms resource exists to repair.
CANONICAL_FIRST_MENTION_PROBABILITY = 0.4

#: Dateline used when a caller does not supply a publication date
#: (mid-November 2005, the SNYT collection window).
DEFAULT_PUBLISHED = date(2005, 11, 14)


class ArticleGenerator:
    """Deterministic generator of simulated news stories.

    ``prominence_exponent`` flattens entity-sampling skew: 1.0 mimics a
    single paper's focus on prominent subjects; lower values (used for
    the multi-source Newsblaster corpus) reach deeper into the entity
    tail, which is why the paper's SNB gold set is the largest.
    """

    def __init__(
        self,
        world: World,
        config: ReproConfig | None = None,
        prominence_exponent: float = 1.0,
    ) -> None:
        self._world = world
        self._config = config or ReproConfig()
        self._prominence_exponent = prominence_exponent

    # -- mention handling ------------------------------------------------------

    def _mention(self, entity: Entity, rng: random.Random, first: bool) -> str:
        """Surface form for a mention: usually canonical first, then variants."""
        if not entity.variants:
            return entity.name
        if first:
            if rng.random() < CANONICAL_FIRST_MENTION_PROBABILITY:
                return entity.name
            return rng.choice(entity.variants)
        if rng.random() < VARIANT_MENTION_PROBABILITY:
            return rng.choice(entity.variants)
        return entity.name

    # -- article assembly -------------------------------------------------------

    def _pick_entities(self, topic: Topic, rng: random.Random) -> list[Entity]:
        count = rng.randint(2, 4)
        exponent = self._prominence_exponent
        entities = self._world.sample_entities(
            rng,
            count,
            kinds=topic.entity_kinds,
            facet_hints=topic.facet_hints,
            prominence_exponent=exponent,
        )
        if not entities:
            entities = self._world.sample_entities(
                rng, count, prominence_exponent=exponent
            )
        has_location = any(e.kind == EntityKind.LOCATION for e in entities)
        if not has_location and rng.random() < 0.75:
            locations = self._world.entities_of_kind(EntityKind.LOCATION)
            if locations:
                extra = self._world.weighted_choice(rng, list(locations), exponent)
                if all(extra.name != e.name for e in entities):
                    entities.append(extra)
        return entities

    def _gold_terms(self, topic: Topic, entities: list[Entity]) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for term in topic.facet_terms:
            seen.setdefault(term, None)
        for entity in entities:
            for term in entity.facet_terms:
                seen.setdefault(term, None)
        return tuple(seen)

    def _fill(
        self,
        template: str,
        topic: Topic,
        entities: list[Entity],
        mentions: dict[str, int],
        rng: random.Random,
        leak_term: str | None = None,
    ) -> str:
        """Fill one template's slots."""
        primary = rng.choice(entities)
        secondary = rng.choice(entities)
        first_primary = mentions.get(primary.name, 0) == 0
        first_secondary = mentions.get(secondary.name, 0) == 0
        word = rng.choice(topic.vocabulary)
        description_pool = primary.description_words or ("effort",)
        values = {
            "e": self._mention(primary, rng, first_primary),
            "e2": self._mention(secondary, rng, first_secondary),
            "w": word,
            "w2": rng.choice(topic.vocabulary),
            "w3": rng.choice(topic.vocabulary),
            "wt": word.title(),
            "g": rng.choice(templates.GENERIC_FILLER),
            "g2": rng.choice(templates.GENERIC_FILLER),
            "d": rng.choice(description_pool),
            "bv": rng.choice(templates.BODY_VERBS),
            "hv": rng.choice(templates.HEADLINE_VERBS),
            "f": (leak_term or "").lower(),
        }
        sentence = template.format(**values)
        if "{e}" in template:
            mentions[primary.name] = mentions.get(primary.name, 0) + 1
        if "{e2}" in template:
            mentions[secondary.name] = mentions.get(secondary.name, 0) + 1
        return sentence

    def generate(
        self,
        doc_id: str,
        rng: random.Random,
        source: str = "The New York Times",
        published: date = DEFAULT_PUBLISHED,
    ) -> Document:
        """Generate one article."""
        topic = self._world.sample_topic(rng)
        entities = self._pick_entities(topic, rng)
        gold_terms = self._gold_terms(topic, entities)
        mentions: dict[str, int] = {}

        title = self._fill(
            rng.choice(templates.HEADLINE_TEMPLATES), topic, entities, mentions, rng
        )

        sentence_count = rng.randint(6, 12)
        sentences = []
        # Guarantee every chosen entity is mentioned at least once: the
        # guaranteed sentence draws its mentions from that entity alone.
        for entity in entities:
            template = rng.choice(templates.BODY_TEMPLATES)
            while "{e}" not in template:
                template = rng.choice(templates.BODY_TEMPLATES)
            sentences.append(self._fill(template, topic, [entity], mentions, rng))
        while len(sentences) < sentence_count:
            template = rng.choice(templates.BODY_TEMPLATES)
            sentences.append(self._fill(template, topic, entities, mentions, rng))

        # Facet leakage: a few gold terms may be written into the story.
        leaked: list[str] = []
        for term in gold_terms:
            if len(leaked) >= MAX_LEAKS_PER_ARTICLE:
                break
            if rng.random() < FACET_LEAK_PROBABILITY:
                leaked.append(term)
                template = rng.choice(templates.FACET_LEAK_TEMPLATES)
                position = rng.randint(1, len(sentences))
                sentences.insert(
                    position,
                    self._fill(template, topic, entities, mentions, rng, leak_term=term),
                )

        # Optional dateline from a mentioned location.
        body = " ".join(sentences)
        location = next(
            (e for e in entities if e.kind == EntityKind.LOCATION), None
        )
        if location is not None and rng.random() < 0.5:
            body = templates.DATELINE_TEMPLATE.format(place=location.name.upper()) + body

        gold = GoldAnnotation(
            topic=topic.name,
            entity_names=tuple(e.name for e in entities),
            facet_terms=gold_terms,
            leaked_terms=tuple(leaked),
        )
        return Document(
            doc_id=doc_id,
            title=title,
            body=body,
            source=source,
            published=published,
            gold=gold,
        )
