"""One-shot convenience API: ``repro.run(documents_or_corpus, ...)``.

The fluent :class:`~repro.builder.FacetPipelineBuilder` stays the
power-user surface; :func:`run` covers the common case — "here is a
collection, give me facets" — in a single call:

    import repro

    result = repro.run(corpus, scale=0.1, workers=4)
    for facet in result.hierarchies[:5]:
        print(facet.name, facet.root.count)

It accepts a :class:`~repro.corpus.document.Corpus`, a list of
:class:`~repro.corpus.document.Document`, or a list of raw strings
(wrapped into documents), plus keyword configuration that is routed to
:class:`~repro.config.ReproConfig`, :class:`~repro.config.ParallelConfig`,
or the builder as appropriate.
"""

from __future__ import annotations

from collections.abc import Sequence

import dataclasses
from typing import TYPE_CHECKING

from .builder import FacetPipelineBuilder
from .config import ParallelConfig, ReproConfig, ServingConfig
from .corpus.document import Corpus, Document
from .core.interface import FacetedInterface
from .core.pipeline import FacetExtractionResult
from .db.store import DocumentStore
from .observability import Observability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .serving import FacetIndex

#: Keywords routed to :class:`ReproConfig`.
_CONFIG_KEYS = frozenset(
    {"seed", "scale", "wiki_graph_top_k", "annotators_per_story", "parallel"}
)

#: Keywords routed to :class:`ParallelConfig` (shortcut form).
_PARALLEL_KEYS = frozenset(
    {"workers", "chunk_size", "backend", "cache_path", "memory_cache_size"}
)


def _coerce_documents(
    documents_or_corpus: Corpus | Sequence[Document] | Sequence[str],
) -> tuple[list[Document], DocumentStore | None]:
    """Normalize the input collection; corpora also yield a store."""
    if isinstance(documents_or_corpus, Corpus):
        documents = list(documents_or_corpus.documents)
        return documents, DocumentStore(documents)
    documents_list = list(documents_or_corpus)
    if not documents_list:
        raise ValueError("run() needs at least one document")
    if all(isinstance(item, Document) for item in documents_list):
        return documents_list, None
    if all(isinstance(item, str) for item in documents_list):
        wrapped = [
            Document(doc_id=f"doc-{index:06d}", title="", body=text)
            for index, text in enumerate(documents_list)
        ]
        return wrapped, None
    raise TypeError(
        "run() accepts a Corpus, a list of Document, or a list of str; "
        f"got mixed/unsupported items: {type(documents_list[0]).__name__}, ..."
    )


def run(
    documents_or_corpus: Corpus | Sequence[Document] | Sequence[str],
    *,
    config: ReproConfig | None = None,
    observability: Observability | None = None,
    extractors: Sequence[object] | None = None,
    resources: Sequence[object] | None = None,
    top_k: int | None = None,
    statistic: str | None = None,
    require_both_shifts: bool | None = None,
    build_hierarchies: bool = True,
    **config_kwargs: object,
) -> FacetExtractionResult:
    """Run the full facet-extraction pipeline in one call.

    Parameters
    ----------
    documents_or_corpus:
        A :class:`Corpus`, a list of :class:`Document`, or a list of raw
        text strings.
    config:
        A ready :class:`ReproConfig`; mutually exclusive with passing
        its fields as keywords.
    observability:
        Tracing/metrics bundle (e.g. ``Observability.enabled()``); None
        runs uninstrumented.
    extractors / resources:
        Extractor / resource name subsets for the builder (names or
        enum members); defaults to all of them.
    top_k / statistic / require_both_shifts / build_hierarchies:
        Selection and hierarchy knobs, as on the builder.
    **config_kwargs:
        Any :class:`ReproConfig` field (``seed``, ``scale``, …) or
        :class:`ParallelConfig` field (``workers``, ``cache_path``, …)
        as a flat keyword — ``repro.run(docs, scale=0.1, workers=4)``.

    Returns
    -------
    FacetExtractionResult
        With :attr:`~FacetExtractionResult.store` populated when the
        input was a :class:`Corpus`, so :meth:`FacetedInterface.from_result` reuses
        the run's document store.
    """
    unknown = set(config_kwargs) - _CONFIG_KEYS - _PARALLEL_KEYS
    if unknown:
        raise TypeError(
            f"run() got unexpected keyword argument(s): {sorted(unknown)}"
        )
    if config is not None and config_kwargs:
        raise TypeError(
            "pass either a ready ReproConfig via config= or its fields as "
            f"keywords, not both: {sorted(config_kwargs)}"
        )
    if config is None:
        parallel_kwargs = {
            key: config_kwargs.pop(key)
            for key in list(config_kwargs)
            if key in _PARALLEL_KEYS
        }
        if parallel_kwargs and "parallel" in config_kwargs:
            raise TypeError(
                "pass either parallel= or flat ParallelConfig keywords, "
                f"not both: {sorted(parallel_kwargs)}"
            )
        if parallel_kwargs:
            config_kwargs["parallel"] = ParallelConfig(**parallel_kwargs)
        config = ReproConfig(**config_kwargs)  # type: ignore[arg-type]

    documents, store = _coerce_documents(documents_or_corpus)

    builder = FacetPipelineBuilder(config)
    if extractors is not None:
        builder.with_extractors(list(extractors))
    if resources is not None:
        builder.with_resources(list(resources))
    if top_k is not None:
        builder.with_top_k(top_k)
    if statistic is not None:
        builder.with_statistic(statistic)
    if require_both_shifts is not None:
        builder.with_shift_requirement(require_both_shifts)
    if not build_hierarchies:
        builder.without_hierarchies()
    if observability is not None:
        builder.with_observability(observability)
    return builder.build().run(documents, store=store)


def open_index(path: str) -> "FacetIndex":
    """Open a serving artifact built with ``repro index build``.

    Returns a read-only :class:`~repro.serving.FacetIndex` answering the
    same query surface as :class:`~repro.core.interface.FacetedInterface`
    — the one-shot mirror of ``FacetIndex.open(path)``.
    """
    from .serving import FacetIndex

    return FacetIndex.open(path)


def serve(
    target: "FacetIndex | FacetedInterface | FacetExtractionResult | str",
    *,
    config: ServingConfig | None = None,
    host: str | None = None,
    port: int | None = None,
    observability: Observability | None = None,
) -> None:
    """Serve the faceted-browsing HTTP API over ``target`` (blocking).

    ``target`` may be an opened :class:`~repro.serving.FacetIndex`, a
    path to an artifact file, an in-memory
    :class:`~repro.core.interface.FacetedInterface`, or a raw
    :class:`FacetExtractionResult` (wrapped on the fly) — the one-shot
    mirror of mounting :class:`~repro.serving.FacetApp` on a server.
    Prints ``serving on http://host:port`` once the socket is bound;
    ``port=0`` binds a free port.
    """
    from .serving import FacetApp, serve_blocking

    browser: object = target
    if isinstance(target, str):
        browser = open_index(target)
    elif isinstance(target, FacetExtractionResult):
        browser = FacetedInterface.from_result(target)
    serving_config = config if config is not None else ServingConfig()
    overrides: dict[str, object] = {}
    if host is not None:
        overrides["host"] = host
    if port is not None:
        overrides["port"] = port
    if overrides:
        serving_config = dataclasses.replace(serving_config, **overrides)
    app = FacetApp(browser, config=serving_config, observability=observability)
    serve_blocking(app, serving_config.host, serving_config.port)
