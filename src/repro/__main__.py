"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible paper experiments.
``run EXP-ID [...]``
    Run one or more experiments (tables/figures) and print the results.
``extract``
    Run the pipeline on a generated corpus and print the facets.
    ``--workers N`` shards Steps 1-2 across a worker pool and
    ``--cache PATH`` shares a persistent SQLite expansion cache across
    workers and runs; the output is bit-for-bit identical either way.
    ``--trace-out PATH`` writes a JSONL trace of nested spans and
    ``--metrics`` prints the metrics registry after the run.
``stream``
    Incrementally ingest ``*.jsonl`` batch files from a directory with
    checkpoint/resume (``--run-dir`` holds the snapshots); results are
    byte-for-byte identical to ``extract`` on the union corpus.
    ``--make-batches N`` first splits a generated corpus into N files.
``trace FILE``
    Pretty-print a JSONL trace produced by ``extract --trace-out``.
``browse``
    Demonstrate the faceted interface (search, drill-down, dice).
``index build --output PATH`` / ``index inspect PATH [--verify]``
    Compile a pipeline run into the read-only serving artifact
    (schema ``repro.index/1``) or print/verify an artifact's manifest.
``serve INDEX [--host H] [--port P]``
    Serve the faceted-browsing HTTP API over an artifact; prints
    ``serving on http://host:port`` once bound (``--port 0`` = any
    free port).
``lint [PATH...]``
    Run the project-invariant static analyzer (determinism,
    thread-safety, cache hygiene; see :mod:`repro.devtools`) and exit
    non-zero on findings — the same gate CI enforces.

Scale with ``--scale`` (or the REPRO_SCALE environment variable);
parallelize with ``--workers`` (or REPRO_WORKERS).  Diagnostics go to
stderr through the structured logger — tune them with ``--log-format
json|text`` and ``--log-level`` (or REPRO_LOG_LEVEL); results stay on
stdout.
"""

from __future__ import annotations

import argparse
import sys

from .config import ParallelConfig, ReproConfig
from .observability import (
    Observability,
    ResourceStats,
    configure_logging,
    get_logger,
)

log = get_logger(__name__)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Automatic Extraction of Useful Facet "
            "Hierarchies from Text Databases' (Dakka & Ipeirotis, ICDE 2008)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="corpus scale relative to the paper (default: REPRO_SCALE or 1.0)",
    )
    parser.add_argument("--seed", type=int, default=None, help="master seed")
    parser.add_argument(
        "--log-format",
        default="text",
        choices=["text", "json"],
        help="structured-log rendering on stderr (default: text)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="log level (default: REPRO_LOG_LEVEL or WARNING)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list paper experiments")

    run = sub.add_parser("run", help="run experiments by id")
    run.add_argument("experiments", nargs="+", metavar="EXP-ID")

    extract = sub.add_parser("extract", help="extract facets from a corpus")
    extract.add_argument("--dataset", default="SNYT", choices=["SNYT", "SNB", "MNYT"])
    extract.add_argument("--top", type=int, default=20, help="facet terms to print")
    extract.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size for annotation/contextualization "
        "(default: REPRO_WORKERS or 1 = serial)",
    )
    extract.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="documents per work chunk (default: derived)",
    )
    extract.add_argument(
        "--backend",
        default="thread",
        choices=["thread", "process"],
        help="worker pool backend",
    )
    extract.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent SQLite resource-cache file shared across "
        "workers and runs",
    )
    extract.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a JSONL trace (nested spans) of the run to PATH",
    )
    extract.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry (counters/timers) after the run",
    )

    trace = sub.add_parser(
        "trace", help="pretty-print a JSONL trace written by extract --trace-out"
    )
    trace.add_argument("path", metavar="FILE", help="JSONL trace file")
    trace.add_argument(
        "--max-children",
        type=int,
        default=None,
        metavar="N",
        help="show at most N children per span (default: all)",
    )

    stream = sub.add_parser(
        "stream",
        help="incrementally ingest batch files with checkpoint/resume",
    )
    stream.add_argument(
        "--input",
        required=True,
        metavar="DIR",
        help="directory of *.jsonl batch files (lexicographic order)",
    )
    stream.add_argument(
        "--run-dir",
        required=True,
        metavar="DIR",
        help="checkpoint directory for this stream (snapshots + manifest)",
    )
    stream.add_argument(
        "--make-batches",
        type=int,
        default=None,
        metavar="N",
        help="first split the --dataset corpus into N batch files in --input",
    )
    stream.add_argument(
        "--dataset",
        default="SNYT",
        choices=["SNYT", "SNB", "MNYT"],
        help="corpus used with --make-batches",
    )
    stream.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint after every N ingested batches (default: 1)",
    )
    stream.add_argument(
        "--keep",
        type=int,
        default=3,
        metavar="N",
        help="snapshots retained in the run directory (default: 3)",
    )
    stream.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing checkpoints and re-ingest everything",
    )
    stream.add_argument(
        "--top", type=int, default=20, help="facet terms to print"
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size (default: REPRO_WORKERS or 1 = serial)",
    )
    stream.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="documents per work chunk (default: derived)",
    )
    stream.add_argument(
        "--backend",
        default="thread",
        choices=["thread", "process"],
        help="worker pool backend",
    )
    stream.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent SQLite resource-cache file",
    )

    sub.add_parser("browse", help="demonstrate the faceted interface")

    index = sub.add_parser(
        "index", help="build or inspect read-only serving index artifacts"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_build = index_sub.add_parser(
        "build",
        help="run the pipeline and compile the result into an artifact",
    )
    index_build.add_argument(
        "--dataset", default="SNYT", choices=["SNYT", "SNB", "MNYT"]
    )
    index_build.add_argument(
        "--output", required=True, metavar="PATH", help="artifact file to write"
    )
    index_build.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool size for the pipeline run",
    )
    index_inspect = index_sub.add_parser(
        "inspect", help="print an artifact's manifest"
    )
    index_inspect.add_argument("path", metavar="INDEX", help="artifact file")
    index_inspect.add_argument(
        "--verify",
        action="store_true",
        help="recompute content checksums and fail on mismatch",
    )

    serve = sub.add_parser(
        "serve", help="serve the faceted-browsing HTTP API over an artifact"
    )
    serve.add_argument("path", metavar="INDEX", help="artifact file to serve")
    serve.add_argument("--host", default=None, help="bind address")
    serve.add_argument(
        "--port", type=int, default=None, help="bind port (0 = any free port)"
    )
    serve.add_argument(
        "--limit", type=int, default=None, help="default rows per response"
    )
    serve.add_argument(
        "--max-limit", type=int, default=None, help="hard row cap per response"
    )
    serve.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock budget (exceeded -> 503)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the project-invariant static analyzer (repro.devtools)",
    )
    from .devtools.cli import add_lint_arguments

    add_lint_arguments(lint)

    report = sub.add_parser(
        "report", help="assemble benchmarks/results/ into a markdown report"
    )
    report.add_argument(
        "--results", default="benchmarks/results", help="results directory"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="output markdown path"
    )
    return parser


def _config(args: argparse.Namespace) -> ReproConfig:
    kwargs = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.seed is not None:
        kwargs["seed"] = args.seed
    parallel = _parallel_config(args)
    if parallel is not None:
        kwargs["parallel"] = parallel
    return ReproConfig(**kwargs)


def _parallel_config(args: argparse.Namespace) -> ParallelConfig | None:
    """A ParallelConfig from CLI flags, or None when none were given."""
    workers = getattr(args, "workers", None)
    chunk_size = getattr(args, "chunk_size", None)
    backend = getattr(args, "backend", None)
    cache = getattr(args, "cache", None)
    if workers is None and chunk_size is None and cache is None and (
        backend in (None, "thread")
    ):
        return None
    kwargs = {}
    if workers is not None:
        kwargs["workers"] = workers
    if chunk_size is not None:
        kwargs["chunk_size"] = chunk_size
    if backend is not None:
        kwargs["backend"] = backend
    if cache is not None:
        kwargs["cache_path"] = cache
    return ParallelConfig(**kwargs)


def _observability(args: argparse.Namespace) -> Observability | None:
    """An enabled bundle when any observability flag was given."""
    if getattr(args, "trace_out", None) or getattr(args, "metrics", False):
        return Observability.enabled()
    return None


def _cmd_list() -> int:
    from .harness import EXPERIMENTS

    for experiment in EXPERIMENTS.values():
        print(f"{experiment.experiment_id:<10} {experiment.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .harness import EXPERIMENTS, run_experiment

    config = _config(args)
    status = 0
    for experiment_id in args.experiments:
        if experiment_id not in EXPERIMENTS:
            log.error("run.unknown_experiment", experiment=experiment_id)
            print(f"unknown experiment: {experiment_id}", file=sys.stderr)
            status = 1
            continue
        print(f"== {experiment_id}: {EXPERIMENTS[experiment_id].title} ==")
        result = run_experiment(experiment_id, config)
        if hasattr(result, "format_table"):
            print(result.format_table())
        elif hasattr(result, "format_summary"):
            print(result.format_summary())
        else:
            print(result)
        print()
    return status


def _cmd_extract(args: argparse.Namespace) -> int:
    from .builder import FacetPipelineBuilder
    from .corpus import build_corpus

    config = _config(args)
    corpus = build_corpus(args.dataset, config)
    obs = _observability(args)
    log.info(
        "extract.start",
        dataset=corpus.name,
        documents=len(corpus),
        workers=config.parallel.workers,
        traced=bool(args.trace_out),
    )
    builder = FacetPipelineBuilder(config)
    if obs is not None:
        builder.with_observability(obs)
    result = builder.build().run(corpus.documents)
    for candidate in result.facet_terms[: args.top]:
        print(
            f"{candidate.term:<32} df {candidate.df_original:>5} -> "
            f"{candidate.df_contextualized:>5}  score {candidate.score:10.1f}"
        )
    if obs is not None and args.trace_out:
        obs.tracer.write_jsonl(args.trace_out)
        log.info("extract.trace_written", path=args.trace_out)
    if obs is not None and args.metrics:
        print()
        print(obs.metrics.format_table())
        print()
        print(_format_resource_stats(result.resource_stats))
    return 0


def _format_resource_stats(stats: dict[str, ResourceStats]) -> str:
    """Per-resource query-engine table: tier hits, coalescing, batches."""
    lines = [
        "resource cache engines",
        f"  {'namespace':<44} {'lru%':>6} {'hit%':>6} "
        f"{'coalesced':>9} {'wait s':>8} {'batches':>8} {'misses':>7}"
    ]
    for namespace in sorted(stats):
        s = stats[namespace]
        label = namespace if len(namespace) <= 44 else namespace[:41] + "..."
        lines.append(
            f"  {label:<44} {s.memory_hit_rate:>6.1%} {s.hit_rate:>6.1%} "
            f"{s.coalesced_hits:>9} {s.coalesce_wait_seconds:>8.3f} "
            f"{s.batch_queries:>8} {s.misses:>7}"
        )
    return "\n".join(lines)


def _cmd_stream(args: argparse.Namespace) -> int:
    from .builder import FacetPipelineBuilder
    from .corpus import build_corpus
    from .incremental import StreamSupervisor, make_batch_files

    config = _config(args)
    if args.make_batches is not None:
        corpus = build_corpus(args.dataset, config)
        paths = make_batch_files(args.input, corpus.documents, args.make_batches)
        print(f"wrote {len(paths)} batch files to {args.input}")
    supervisor = StreamSupervisor(
        FacetPipelineBuilder(config).build(),
        args.run_dir,
        checkpoint_every=args.checkpoint_every,
        keep_snapshots=args.keep,
        resume=not args.no_resume,
    )
    report = supervisor.run(args.input)
    extractor = supervisor.extractor
    print(report.format_summary())
    print(
        f"corpus: {extractor.document_count} documents, "
        f"{len(extractor.facet_terms)} facet terms, "
        f"{len(extractor.hierarchies)} facets"
    )
    for candidate in extractor.facet_terms[: args.top]:
        print(
            f"{candidate.term:<32} df {candidate.df_original:>5} -> "
            f"{candidate.df_contextualized:>5}  score {candidate.score:10.1f}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .observability import load_trace, render_spans

    try:
        roots = load_trace(args.path)
    except (OSError, ValueError) as exc:
        log.error("trace.unreadable", path=args.path, error=str(exc))
        print(f"cannot read trace: {args.path}: {exc}", file=sys.stderr)
        return 1
    if not roots:
        print(f"empty trace: {args.path}", file=sys.stderr)
        return 1
    print(render_spans(roots, max_children=args.max_children))
    return 0


def _cmd_browse(args: argparse.Namespace) -> int:
    from .builder import FacetPipelineBuilder
    from .corpus import build_snyt

    config = _config(args)
    corpus = build_snyt(config)
    from .core.interface import FacetedInterface

    result = FacetPipelineBuilder(config).build().run(corpus.documents)
    interface = FacetedInterface.from_result(result)
    print("top-level facets:")
    for entry in interface.top_level_counts()[:10]:
        print(f"  {entry.term:<30} {entry.count:>5} docs")
    branching = [f for f in interface.facets if f.size >= 3]
    if branching:
        facet = branching[0]
        print(f"\ndrill-down into {facet.name!r}:")
        for child in interface.children(facet.name)[:6]:
            print(f"  {facet.name} > {child.term:<24} {child.count:>5} docs")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .serving import FacetIndex

    if args.index_command == "build":
        from .builder import FacetPipelineBuilder
        from .corpus import build_corpus

        config = _config(args)
        corpus = build_corpus(args.dataset, config)
        log.info(
            "index.build_start", dataset=corpus.name, documents=len(corpus)
        )
        result = FacetPipelineBuilder(config).build().run(corpus.documents)
        with FacetIndex.build(result, path=args.output) as built:
            print(
                f"wrote {args.output}: {built.document_count} documents, "
                f"{built.facet_count} facets, {built.node_count} nodes"
            )
            print(f"checksum {built.checksum}")
        return 0

    with FacetIndex.open(args.path) as index:
        for key, value in sorted(index.manifest.items()):
            print(f"{key:<20} {value}")
        if args.verify:
            if not index.verify():
                print("checksum mismatch: artifact is corrupt", file=sys.stderr)
                return 1
            print("checksums verified")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from .api import serve
    from .config import ServingConfig

    overrides = {
        name: value
        for name, value in (
            ("host", args.host),
            ("port", args.port),
            ("default_limit", args.limit),
            ("max_limit", args.max_limit),
            ("time_budget_seconds", args.time_budget),
        )
        if value is not None
    }
    config = dataclasses.replace(ServingConfig(), **overrides)
    serve(args.path, config=config)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(log_format=args.log_format, level=args.log_level)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "extract":
        return _cmd_extract(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "browse":
        return _cmd_browse(args)
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        from .devtools.cli import run_lint

        return run_lint(args)
    if args.command == "report":
        from .harness.report import write_report

        path = write_report(args.results, args.output)
        print(f"wrote {path}")
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    raise SystemExit(main())
