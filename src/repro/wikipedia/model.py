"""Data model of the simulated Wikipedia snapshot."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WikiPage:
    """One Wikipedia entry.

    ``links`` are outgoing links to other page titles; ``body_terms``
    approximate the page text (used when resources mine page content).
    """

    title: str
    links: tuple[str, ...] = ()
    body_terms: tuple[str, ...] = ()


@dataclass
class AnchorStats:
    """Usage counts for one anchor phrase.

    ``targets`` maps a page title to ``tf(p, t)`` — how many times the
    phrase links to that page.  ``spread`` (the paper's ``f(p)``) is the
    number of distinct pages the phrase points to.
    """

    phrase: str
    targets: dict[str, int] = field(default_factory=dict)

    def add(self, target: str, count: int = 1) -> None:
        self.targets[target] = self.targets.get(target, 0) + count

    @property
    def spread(self) -> int:
        return len(self.targets)

    def score(self, target: str) -> float:
        """The paper's anchor score ``s(p, t) = tf(p, t) / f(p)``."""
        tf = self.targets.get(target, 0)
        if tf == 0 or not self.targets:
            return 0.0
        return tf / self.spread
