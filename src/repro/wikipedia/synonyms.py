"""Wikipedia Synonyms: redirect groups plus scored anchor-text variants.

Section IV-B of the paper: redirect pages give high-accuracy synonym
groups ("Hillary Clinton", "Hillary R. Clinton", ... -> "Hillary Rodham
Clinton"); anchor text widens coverage ("Samurai Tsunenaga") but is
noisier, so anchor phrases are ranked by ``s(p, t) = tf(p, t) / f(p)``
and only those above a threshold are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..text.interning import normalize_term
from .database import WikipediaDatabase

#: Minimum anchor score for a phrase to count as a synonym.
DEFAULT_ANCHOR_THRESHOLD = 0.5


@dataclass(frozen=True)
class Synonym:
    """One synonym with its provenance and score."""

    phrase: str
    source: str  # "title", "redirect", or "anchor"
    score: float


class SynonymFinder:
    """Synonym queries against the simulated snapshot."""

    def __init__(
        self,
        database: WikipediaDatabase,
        anchor_threshold: float = DEFAULT_ANCHOR_THRESHOLD,
    ) -> None:
        if not 0 <= anchor_threshold <= 1:
            raise ValueError(
                f"anchor_threshold must be in [0, 1], got {anchor_threshold}"
            )
        self._db = database
        self._threshold = anchor_threshold

    def synonyms(self, term: str) -> list[Synonym]:
        """All variants of the entry that ``term`` resolves to.

        The canonical title is always included (source ``"title"``),
        redirects score 1.0, anchors carry their ``tf/f`` score and are
        filtered by the threshold.
        """
        title = self._db.resolve(term)
        if title is None:
            return []
        # The group depends only on the resolved title and threshold, so
        # every surface variant of an entry shares one expansion; the
        # memo lives in the database's version-guarded store.
        cache = self._db.derived_cache(f"synonyms.groups/{self._threshold}")
        cached = cache.get(title)
        if cached is not None:
            return cached
        results = [Synonym(title, "title", 1.0)]
        seen = {normalize_term(title)}
        for variant in self._db.redirect_group(title):
            key = normalize_term(variant)
            if key in seen:
                continue
            seen.add(key)
            results.append(Synonym(variant, "redirect", 1.0))
        for phrase, score in self._db.anchors_to(title):
            key = normalize_term(phrase)
            if key in seen or score < self._threshold:
                continue
            seen.add(key)
            results.append(Synonym(phrase, "anchor", score))
        cache[title] = results
        return results

    def synonyms_many(self, terms: list[str]) -> list[list[Synonym]]:
        """Bulk :meth:`synonyms`, one answer list per input term.

        Terms resolving to the same entry (variants of one page) share a
        single redirect/anchor expansion.
        """
        by_title: dict[str, list[Synonym]] = {}
        answers: list[list[Synonym]] = []
        for term in terms:
            title = self._db.resolve(term)
            if title is None:
                answers.append([])
                continue
            if title not in by_title:
                by_title[title] = self.synonyms(term)
            answers.append(by_title[title])
        return answers
