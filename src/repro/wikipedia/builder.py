"""Construction of the simulated Wikipedia snapshot from the world.

Layout of the generated snapshot:

* one page per **facet term**, linking to its taxonomy parent, children,
  and a few siblings (category-style navigation);
* one page per **entity**, linking to every facet term on its paths, to
  its related-term pages, and to a few unrelated entity pages (noise);
* one page per **related term** ("President of France"), linking back to
  the owning entity and its facet terms;
* **redirects** from every entity variant to its canonical page;
* **anchor texts**: variants (high tf), description-word + last-name
  combinations ("Samurai Tsunenaga" style, low tf), and deliberately
  ambiguous generic anchors ("the president") pointing at many pages;
* a layer of "List of ..." noise pages linking broadly.

Some titles play both roles — the entity "France" and the facet term
"France" share a page — so links and body terms are accumulated per
title and merged before the pages are materialized.
"""

from __future__ import annotations

import random
from collections import defaultdict

from ..config import ReproConfig
from ..kb.schema import EntityKind
from ..kb.world import World
from .database import WikipediaDatabase
from .model import WikiPage

#: Number of unrelated entity pages each entity page links to (noise).
NOISE_LINKS_PER_ENTITY = 1

#: Number of "List of ..." navigation pages generated.
NOISE_PAGE_COUNT = 60


class _SnapshotAccumulator:
    """Collects links/body terms per title, merging duplicate roles."""

    def __init__(self) -> None:
        self.links: dict[str, list[str]] = defaultdict(list)
        self.body: dict[str, list[str]] = defaultdict(list)

    def add(self, title: str, links: list[str], body: list[str]) -> None:
        self.links[title].extend(links)
        self.body[title].extend(body)

    def materialize(self, database: WikipediaDatabase) -> None:
        for title in self.links:
            out = tuple(
                target
                for target in dict.fromkeys(self.links[title])
                if target != title
            )
            database.add_page(
                WikiPage(
                    title=title,
                    links=out,
                    body_terms=tuple(dict.fromkeys(self.body[title])),
                )
            )


def _facet_pages(world: World, acc: _SnapshotAccumulator) -> None:
    # Category-style navigation: parent and children only.  Sibling
    # links would make every "France" document co-occur with "Germany"
    # in the expanded database, and subsumption would then nest sibling
    # countries under each other.
    taxonomy = world.taxonomy
    for term in taxonomy.terms():
        links: list[str] = []
        parent = taxonomy.parent(term)
        if parent is not None:
            links.append(parent)
        links.extend(taxonomy.children(term))
        acc.add(term, links, [term.lower()])


def _related_term_pages(world: World, acc: _SnapshotAccumulator) -> None:
    for entity in world.entities:
        for related in entity.related_terms:
            links = [entity.name]
            links.extend(entity.facet_terms[:3])
            acc.add(related, links, [related.lower()])


def _entity_pages(
    world: World, acc: _SnapshotAccumulator, rng: random.Random
) -> None:
    all_entities = list(world.entities)
    for entity in world.entities:
        links: list[str] = list(entity.facet_terms)
        links.extend(entity.related_terms)
        for _ in range(NOISE_LINKS_PER_ENTITY):
            other = rng.choice(all_entities)
            if other.name != entity.name:
                links.append(other.name)
        body = list(entity.description_words)
        body.extend(term.lower() for term in entity.facet_terms)
        body.extend(related.lower() for related in entity.related_terms)
        acc.add(entity.name, links, body)


def _redirects_and_anchors(
    world: World, database: WikipediaDatabase, rng: random.Random
) -> None:
    for entity in world.entities:
        # Redirect pages: high-accuracy synonym groups.
        for variant in entity.variants:
            database.add_redirect(variant, entity.name)
        # Anchor text: canonical and variant forms, used often.
        database.add_anchor(entity.name, entity.name, count=rng.randint(5, 30))
        for variant in entity.variants:
            database.add_anchor(variant, entity.name, count=rng.randint(2, 12))
        # "Samurai Tsunenaga"-style anchors: description word + last name.
        if entity.kind == EntityKind.PERSON and entity.description_words:
            last = entity.name.split()[-1]
            word = rng.choice(entity.description_words)
            database.add_anchor(f"{word.title()} {last}", entity.name, count=1)

    # Deliberately ambiguous anchors: generic role phrases pointing at
    # many pages (spread > 1 drives their score down).
    generic = {
        "the president": EntityKind.PERSON,
        "the company": EntityKind.ORGANIZATION,
        "the agency": EntityKind.ORGANIZATION,
        "the city": EntityKind.LOCATION,
    }
    for phrase, kind in generic.items():
        pool = world.entities_of_kind(kind)
        for entity in rng.sample(list(pool), min(5, len(pool))):
            database.add_anchor(phrase, entity.name, count=rng.randint(1, 4))


def _noise_pages(acc: _SnapshotAccumulator, rng: random.Random) -> None:
    titles = list(acc.links)
    for index in range(NOISE_PAGE_COUNT):
        targets = rng.sample(titles, min(8, len(titles)))
        acc.add(f"List of notable subjects ({index + 1})", list(targets), ["list"])


def build_wikipedia(
    world: World, config: ReproConfig | None = None
) -> WikipediaDatabase:
    """Generate the deterministic Wikipedia snapshot for ``world``."""
    config = config or ReproConfig()
    rng = config.rng("wikipedia")
    acc = _SnapshotAccumulator()
    _facet_pages(world, acc)
    _related_term_pages(world, acc)
    _entity_pages(world, acc, rng)
    _noise_pages(acc, rng)
    database = WikipediaDatabase()
    acc.materialize(database)
    _redirects_and_anchors(world, database, rng)
    return database
