"""Snapshot statistics for the simulated Wikipedia.

The paper reports the scale of its snapshot ("more than 6 million
entries and 35 million links ... creating an informative graph for
deriving context").  This module computes the equivalent statistics for
the simulation, so tests and benchmarks can verify the graph's shape
(degree distributions, redirect density) rather than trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .database import WikipediaDatabase


@dataclass(frozen=True)
class SnapshotStats:
    """Aggregate statistics of one snapshot."""

    pages: int
    links: int
    redirects: int
    anchors: int
    mean_out_degree: float
    max_in_degree: int
    ambiguous_anchors: int
    """Anchor phrases pointing at more than one page."""

    @property
    def links_per_page(self) -> float:
        return self.links / self.pages if self.pages else 0.0

    def format_summary(self) -> str:
        return "\n".join(
            [
                f"pages: {self.pages:,}",
                f"links: {self.links:,} ({self.links_per_page:.1f} per page)",
                f"redirects: {self.redirects:,}",
                f"anchor phrases: {self.anchors:,} "
                f"({self.ambiguous_anchors} ambiguous)",
                f"mean out-degree: {self.mean_out_degree:.1f}",
                f"max in-degree: {self.max_in_degree}",
            ]
        )


def snapshot_stats(database: WikipediaDatabase) -> SnapshotStats:
    """Compute :class:`SnapshotStats` for a snapshot."""
    titles = database.titles()
    total_links = sum(database.out_degree(title) for title in titles)
    redirects = sum(len(database.redirect_group(t)) for t in titles)
    anchors = 0
    ambiguous = 0
    seen_anchor_phrases: set[str] = set()
    for title in titles:
        for phrase, _score in database.anchors_to(title):
            if phrase in seen_anchor_phrases:
                continue
            seen_anchor_phrases.add(phrase)
            anchors += 1
            stats = database.anchor_stats(phrase)
            if stats is not None and stats.spread > 1:
                ambiguous += 1
    max_in = max((database.in_degree(t) for t in titles), default=0)
    return SnapshotStats(
        pages=len(titles),
        links=total_links,
        redirects=redirects,
        anchors=anchors,
        mean_out_degree=total_links / len(titles) if titles else 0.0,
        max_in_degree=max_in,
        ambiguous_anchors=ambiguous,
    )
