"""Longest-match title lookup: the Wikipedia term extractor's core.

Section IV-A of the paper: "Whenever a term in the document matches a
title of a Wikipedia entry, we mark the term as important.  If there are
multiple candidate titles, we pick the longest title" — with redirect
pages widening the match ("Hillary Clinton" matches even though the page
is "Hillary Rodham Clinton").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..text.stopwords import is_common_opener
from ..text.tokenizer import normalize_term, tokenize
from .database import WikipediaDatabase

#: Longest title length considered, in words.
MAX_TITLE_WORDS = 6


@dataclass(frozen=True)
class TitleMatch:
    """A matched span: the surface text and the resolved page title."""

    surface: str
    title: str
    start_token: int
    end_token: int  # exclusive


class TitleMatcher:
    """Greedy longest-match scanning of document text against titles."""

    def __init__(
        self, database: WikipediaDatabase, use_redirects: bool = True
    ) -> None:
        self._db = database
        self._use_redirects = use_redirects
        self._surfaces: set[str] = set()
        for surface in database.all_known_surfaces():
            self._surfaces.add(surface)
        if not use_redirects:
            # Titles only: rebuild from page titles, ignoring redirects.
            self._surfaces = {normalize_term(t) for t in database.titles()}

    def matches(self, text: str) -> list[TitleMatch]:
        """All non-overlapping longest title matches in ``text``."""
        tokens = tokenize(text)
        words = [token.text for token in tokens]
        matches: list[TitleMatch] = []
        i = 0
        while i < len(words):
            found = None
            # Longest candidate first: "pick the longest title".
            for n in range(min(MAX_TITLE_WORDS, len(words) - i), 0, -1):
                surface = " ".join(words[i : i + n])
                key = normalize_term(surface)
                if key in self._surfaces:
                    # A single generic lower-case word ("people", "war")
                    # matching an entry title is almost never a mention of
                    # that entry; require a proper-noun surface for
                    # single-word matches.
                    if n == 1 and (
                        not words[i][0].isupper() or is_common_opener(words[i])
                    ):
                        continue
                    title = self._db.resolve(surface)
                    if title is not None:
                        found = TitleMatch(surface, title, i, i + n)
                        break
            if found is not None:
                matches.append(found)
                i = found.end_token
            else:
                i += 1
        return matches

    def match_titles(self, text: str) -> list[str]:
        """Distinct resolved titles found in ``text`` (document order)."""
        return list(dict.fromkeys(match.title for match in self.matches(text)))
