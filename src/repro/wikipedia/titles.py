"""Longest-match title lookup: the Wikipedia term extractor's core.

Section IV-A of the paper: "Whenever a term in the document matches a
title of a Wikipedia entry, we mark the term as important.  If there are
multiple candidate titles, we pick the longest title" — with redirect
pages widening the match ("Hillary Clinton" matches even though the page
is "Hillary Rodham Clinton").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..text.interning import TextMemo, active_memo, sentences, tokenize
from ..text.stopwords import is_common_opener
from ..text.tokenizer import normalize_term
from .database import WikipediaDatabase

#: Longest title length considered, in words.
MAX_TITLE_WORDS = 6


@dataclass(frozen=True)
class TitleMatch:
    """A matched span: the surface text and the resolved page title."""

    surface: str
    title: str
    start_token: int
    end_token: int  # exclusive


class TitleMatcher:
    """Greedy longest-match scanning of document text against titles."""

    def __init__(
        self, database: WikipediaDatabase, use_redirects: bool = True
    ) -> None:
        self._db = database
        self._use_redirects = use_redirects
        self._surfaces: set[str] = set()
        for surface in database.all_known_surfaces():
            self._surfaces.add(surface)
        if not use_redirects:
            # Titles only: rebuild from page titles, ignoring redirects.
            self._surfaces = {normalize_term(t) for t in database.titles()}
        # Columnar-plane index: first word of each surface key → the
        # word counts (longest first) of surfaces opening with it.  A
        # position can only start an n-word match when some n-word
        # surface opens with its lower-cased token, so the fast scan
        # probes exactly the (position, length) pairs that can match.
        by_first: dict[str, set[int]] = {}
        for surface in self._surfaces:
            words = surface.split(" ")
            by_first.setdefault(words[0], set()).add(len(words))
        self._lengths_by_first: dict[str, tuple[int, ...]] = {
            word: tuple(sorted(lengths, reverse=True))
            for word, lengths in by_first.items()
        }

    def matches(self, text: str) -> list[TitleMatch]:
        """All non-overlapping longest title matches in ``text``.

        With an active text memo (the columnar data plane) the scan runs
        :meth:`_matches_fast`; without one it runs the plain scan below,
        which is kept as the benchmark baseline.  Both return identical
        matches (pinned by ``tests/test_columnar.py`` and the columnar
        differential matrix).
        """
        memo = active_memo()
        if memo is not None:
            return self._matches_fast(text, memo)
        tokens = tokenize(text)
        words = [token.text for token in tokens]
        matches: list[TitleMatch] = []
        i = 0
        while i < len(words):
            found = None
            # Longest candidate first: "pick the longest title".
            for n in range(min(MAX_TITLE_WORDS, len(words) - i), 0, -1):
                surface = " ".join(words[i : i + n])
                key = normalize_term(surface)
                if key in self._surfaces:
                    # A single generic lower-case word ("people", "war")
                    # matching an entry title is almost never a mention of
                    # that entry; require a proper-noun surface for
                    # single-word matches.
                    if n == 1 and (
                        not words[i][0].isupper() or is_common_opener(words[i])
                    ):
                        continue
                    title = self._db.resolve(surface)
                    if title is not None:
                        found = TitleMatch(surface, title, i, i + n)
                        break
            if found is not None:
                matches.append(found)
                i = found.end_token
            else:
                i += 1
        return matches

    def _matches_fast(self, text: str, memo: TextMemo) -> list[TitleMatch]:
        """The plain scan's output without its per-candidate regex work.

        Every token is a full match of the tokenizer's word regex, so
        ``normalize_term`` of a token is exactly its lower-case form and
        normalization commutes with space-joining — the candidate key of
        a span is the join of its tokens' lower-case forms.  The
        first-word/length index then prunes every (position, length)
        pair whose key cannot be in the surface table; the survivors run
        the plain scan's exact checks in the plain scan's exact order.

        The token stream is assembled from the memoized per-sentence
        tokenizations (already computed by the statistics pass) instead
        of re-tokenizing the full text: sentence splitting only cuts at
        whitespace, which no token spans, so the concatenated streams
        carry the same token texts in the same order.
        """
        words: list[str] = []
        lows: list[str] = []
        for sentence in sentences(text):
            columns = memo.sentence_columns(sentence)
            words.extend(columns.texts)
            lows.extend(columns.lowers)
        lengths_by_first = self._lengths_by_first
        surfaces = self._surfaces
        matches: list[TitleMatch] = []
        i = 0
        count = len(words)
        while i < count:
            lengths = lengths_by_first.get(lows[i])
            if lengths is None:
                i += 1
                continue
            found = None
            remaining = min(MAX_TITLE_WORDS, count - i)
            for n in lengths:
                if n > remaining:
                    continue
                key = lows[i] if n == 1 else " ".join(lows[i : i + n])
                if key in surfaces:
                    if n == 1 and (
                        not words[i][0].isupper() or is_common_opener(words[i])
                    ):
                        continue
                    # Surface keys are normalize_term fixed points, so
                    # resolving the key equals resolving the raw span.
                    title = self._db.resolve(key)
                    if title is not None:
                        found = TitleMatch(
                            " ".join(words[i : i + n]), title, i, i + n
                        )
                        break
            if found is not None:
                matches.append(found)
                i = found.end_token
            else:
                i += 1
        return matches

    def match_titles(self, text: str) -> list[str]:
        """Distinct resolved titles found in ``text`` (document order)."""
        return list(dict.fromkeys(match.title for match in self.matches(text)))
