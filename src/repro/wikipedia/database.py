"""The simulated Wikipedia store.

Mirrors the paper's setup ("we downloaded the contents of Wikipedia and
built a relational database that contains, among other things, the titles
of all the Wikipedia pages"): pages, redirects, anchors, and links live
in memory for speed and can be persisted to SQLite.
"""

from __future__ import annotations

import sqlite3
from collections import defaultdict
from collections.abc import Iterable

from ..errors import StorageError
from ..text.interning import normalize_term
from .model import AnchorStats, WikiPage

_SCHEMA = """
CREATE TABLE IF NOT EXISTS pages (
    title TEXT PRIMARY KEY,
    body  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS links (
    source TEXT NOT NULL,
    target TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS redirects (
    variant TEXT PRIMARY KEY,
    target  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS anchors (
    phrase TEXT NOT NULL,
    target TEXT NOT NULL,
    tf     INTEGER NOT NULL
);
"""


class WikipediaDatabase:
    """Pages, redirects, anchor statistics, and the link graph."""

    def __init__(self) -> None:
        self._pages: dict[str, WikiPage] = {}
        self._redirects: dict[str, str] = {}  # normalized variant -> title
        self._anchors: dict[str, AnchorStats] = {}  # normalized phrase
        self._incoming: dict[str, set[str]] = defaultdict(set)
        self._redirect_groups: dict[str, list[str]] = defaultdict(list)
        self._title_by_norm: dict[str, str] = {}
        # Lazy target -> [(phrase, score)] index for anchors_to;
        # invalidated whenever an anchor is added.
        self._anchors_by_target: dict[str, list[tuple[str, float]]] | None = None
        # Mutation counter: derived caches (graph neighbours, synonym
        # groups) key their validity on this instead of subscribing to
        # individual mutators.
        self._version = 0
        self._derived: dict[str, dict] = {}
        self._derived_version = 0

    # -- construction -------------------------------------------------------

    def add_page(self, page: WikiPage) -> None:
        """Register a page; titles must be unique."""
        if page.title in self._pages:
            raise StorageError(f"duplicate Wikipedia title: {page.title!r}")
        self._pages[page.title] = page
        self._title_by_norm.setdefault(normalize_term(page.title), page.title)
        for target in page.links:
            self._incoming[target].add(page.title)
        self._version += 1

    def add_redirect(self, variant: str, target: str) -> None:
        """Register a redirect page ``variant -> target``."""
        key = normalize_term(variant)
        if not key:
            return
        self._redirects.setdefault(key, target)
        self._redirect_groups[target].append(variant)
        self._version += 1

    def add_anchor(self, phrase: str, target: str, count: int = 1) -> None:
        """Record ``count`` uses of ``phrase`` as anchor text to ``target``."""
        key = normalize_term(phrase)
        if not key:
            return
        stats = self._anchors.get(key)
        if stats is None:
            stats = AnchorStats(phrase=key)
            self._anchors[key] = stats
        stats.add(target, count)
        self._anchors_by_target = None
        self._version += 1

    # -- lookups ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever any table changes."""
        return self._version

    def derived_cache(self, namespace: str) -> dict:
        """Memo dict for structures derived from the current snapshot.

        Living on the database rather than on the deriving object
        (graph, synonym finder), the memo survives those objects being
        rebuilt over the same snapshot; every cache is dropped wholesale
        on the first access after any mutation.
        """
        if self._derived_version != self._version:
            self._derived.clear()
            self._derived_version = self._version
        cache = self._derived.get(namespace)
        if cache is None:
            cache = self._derived[namespace] = {}
        return cache

    def titles(self) -> tuple[str, ...]:
        return tuple(self._pages)

    def page(self, title: str) -> WikiPage | None:
        """Page by exact title, or via redirect, or None."""
        direct = self._pages.get(title)
        if direct is not None:
            return direct
        resolved = self.resolve(title)
        if resolved is not None:
            return self._pages.get(resolved)
        return None

    def resolve(self, surface: str) -> str | None:
        """Resolve a surface form to a page title via title or redirect."""
        key = normalize_term(surface)
        if key in self._title_by_norm:
            return self._title_by_norm[key]
        return self._redirects.get(key)

    def redirect_group(self, title: str) -> tuple[str, ...]:
        """All variants redirecting to ``title``."""
        return tuple(self._redirect_groups.get(title, ()))

    def anchor_stats(self, phrase: str) -> AnchorStats | None:
        """Anchor statistics for a phrase (normalized), or None."""
        return self._anchors.get(normalize_term(phrase))

    def anchors_to(self, title: str) -> list[tuple[str, float]]:
        """All anchor phrases pointing at ``title`` with their scores.

        Served from a lazily built target index: one pass over the
        anchor table amortizes what used to be a full scan per call.
        Each per-target list is sorted with the scan's exact key
        (phrases are unique, so the order is total either way).
        """
        index = self._anchors_by_target
        if index is None:
            grouped: dict[str, list[tuple[str, float]]] = defaultdict(list)
            for stats in self._anchors.values():
                for target in stats.targets:
                    grouped[target].append((stats.phrase, stats.score(target)))
            for results in grouped.values():
                results.sort(key=lambda item: (-item[1], item[0]))
            index = self._anchors_by_target = dict(grouped)
        return list(index.get(title, ()))

    def out_links(self, title: str) -> tuple[str, ...]:
        page = self._pages.get(title)
        return page.links if page else ()

    def in_links(self, title: str) -> tuple[str, ...]:
        return tuple(self._incoming.get(title, ()))

    def out_degree(self, title: str) -> int:
        return len(self.out_links(title))

    def in_degree(self, title: str) -> int:
        return len(self._incoming.get(title, ()))

    def all_known_surfaces(self) -> Iterable[str]:
        """All title and redirect surfaces (normalized forms)."""
        yield from self._title_by_norm
        yield from self._redirects

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the snapshot to SQLite."""
        connection = sqlite3.connect(path)
        try:
            with connection:
                connection.executescript(_SCHEMA)
                connection.execute("DELETE FROM pages")
                connection.execute("DELETE FROM links")
                connection.execute("DELETE FROM redirects")
                connection.execute("DELETE FROM anchors")
                connection.executemany(
                    "INSERT INTO pages VALUES (?,?)",
                    [(p.title, "\x1f".join(p.body_terms)) for p in self._pages.values()],
                )
                connection.executemany(
                    "INSERT INTO links VALUES (?,?)",
                    [
                        (page.title, target)
                        for page in self._pages.values()
                        for target in page.links
                    ],
                )
                connection.executemany(
                    "INSERT INTO redirects VALUES (?,?)",
                    [
                        (variant, target)
                        for target, variants in self._redirect_groups.items()
                        for variant in variants
                    ],
                )
                connection.executemany(
                    "INSERT INTO anchors VALUES (?,?,?)",
                    [
                        (stats.phrase, target, tf)
                        for stats in self._anchors.values()
                        for target, tf in stats.targets.items()
                    ],
                )
        finally:
            connection.close()

    @classmethod
    def load(cls, path: str) -> "WikipediaDatabase":
        """Load a snapshot written with :meth:`save`."""
        connection = sqlite3.connect(path)
        try:
            page_rows = connection.execute("SELECT title, body FROM pages").fetchall()
            link_rows = connection.execute("SELECT source, target FROM links").fetchall()
            redirect_rows = connection.execute(
                "SELECT variant, target FROM redirects"
            ).fetchall()
            anchor_rows = connection.execute(
                "SELECT phrase, target, tf FROM anchors"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"cannot read Wikipedia snapshot at {path!r}") from exc
        finally:
            connection.close()
        links_by_source: dict[str, list[str]] = defaultdict(list)
        for source, target in link_rows:
            links_by_source[source].append(target)
        database = cls()
        for title, body in page_rows:
            body_terms = tuple(body.split("\x1f")) if body else ()
            database.add_page(
                WikiPage(
                    title=title,
                    links=tuple(links_by_source.get(title, ())),
                    body_terms=body_terms,
                )
            )
        for variant, target in redirect_rows:
            database.add_redirect(variant, target)
        for phrase, target, tf in anchor_rows:
            database.add_anchor(phrase, target, tf)
        return database
