"""The simulated Wikipedia store.

Mirrors the paper's setup ("we downloaded the contents of Wikipedia and
built a relational database that contains, among other things, the titles
of all the Wikipedia pages"): pages, redirects, anchors, and links live
in memory for speed and can be persisted to SQLite.
"""

from __future__ import annotations

import sqlite3
from collections import defaultdict
from collections.abc import Iterable

from ..errors import StorageError
from ..text.tokenizer import normalize_term
from .model import AnchorStats, WikiPage

_SCHEMA = """
CREATE TABLE IF NOT EXISTS pages (
    title TEXT PRIMARY KEY,
    body  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS links (
    source TEXT NOT NULL,
    target TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS redirects (
    variant TEXT PRIMARY KEY,
    target  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS anchors (
    phrase TEXT NOT NULL,
    target TEXT NOT NULL,
    tf     INTEGER NOT NULL
);
"""


class WikipediaDatabase:
    """Pages, redirects, anchor statistics, and the link graph."""

    def __init__(self) -> None:
        self._pages: dict[str, WikiPage] = {}
        self._redirects: dict[str, str] = {}  # normalized variant -> title
        self._anchors: dict[str, AnchorStats] = {}  # normalized phrase
        self._incoming: dict[str, set[str]] = defaultdict(set)
        self._redirect_groups: dict[str, list[str]] = defaultdict(list)
        self._title_by_norm: dict[str, str] = {}

    # -- construction -------------------------------------------------------

    def add_page(self, page: WikiPage) -> None:
        """Register a page; titles must be unique."""
        if page.title in self._pages:
            raise StorageError(f"duplicate Wikipedia title: {page.title!r}")
        self._pages[page.title] = page
        self._title_by_norm.setdefault(normalize_term(page.title), page.title)
        for target in page.links:
            self._incoming[target].add(page.title)

    def add_redirect(self, variant: str, target: str) -> None:
        """Register a redirect page ``variant -> target``."""
        key = normalize_term(variant)
        if not key:
            return
        self._redirects.setdefault(key, target)
        self._redirect_groups[target].append(variant)

    def add_anchor(self, phrase: str, target: str, count: int = 1) -> None:
        """Record ``count`` uses of ``phrase`` as anchor text to ``target``."""
        key = normalize_term(phrase)
        if not key:
            return
        stats = self._anchors.get(key)
        if stats is None:
            stats = AnchorStats(phrase=key)
            self._anchors[key] = stats
        stats.add(target, count)

    # -- lookups ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def titles(self) -> tuple[str, ...]:
        return tuple(self._pages)

    def page(self, title: str) -> WikiPage | None:
        """Page by exact title, or via redirect, or None."""
        direct = self._pages.get(title)
        if direct is not None:
            return direct
        resolved = self.resolve(title)
        if resolved is not None:
            return self._pages.get(resolved)
        return None

    def resolve(self, surface: str) -> str | None:
        """Resolve a surface form to a page title via title or redirect."""
        key = normalize_term(surface)
        if key in self._title_by_norm:
            return self._title_by_norm[key]
        return self._redirects.get(key)

    def redirect_group(self, title: str) -> tuple[str, ...]:
        """All variants redirecting to ``title``."""
        return tuple(self._redirect_groups.get(title, ()))

    def anchor_stats(self, phrase: str) -> AnchorStats | None:
        """Anchor statistics for a phrase (normalized), or None."""
        return self._anchors.get(normalize_term(phrase))

    def anchors_to(self, title: str) -> list[tuple[str, float]]:
        """All anchor phrases pointing at ``title`` with their scores."""
        results = []
        for stats in self._anchors.values():
            if title in stats.targets:
                results.append((stats.phrase, stats.score(title)))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    def out_links(self, title: str) -> tuple[str, ...]:
        page = self._pages.get(title)
        return page.links if page else ()

    def in_links(self, title: str) -> tuple[str, ...]:
        return tuple(self._incoming.get(title, ()))

    def out_degree(self, title: str) -> int:
        return len(self.out_links(title))

    def in_degree(self, title: str) -> int:
        return len(self._incoming.get(title, ()))

    def all_known_surfaces(self) -> Iterable[str]:
        """All title and redirect surfaces (normalized forms)."""
        yield from self._title_by_norm
        yield from self._redirects

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str) -> None:
        """Write the snapshot to SQLite."""
        connection = sqlite3.connect(path)
        try:
            with connection:
                connection.executescript(_SCHEMA)
                connection.execute("DELETE FROM pages")
                connection.execute("DELETE FROM links")
                connection.execute("DELETE FROM redirects")
                connection.execute("DELETE FROM anchors")
                connection.executemany(
                    "INSERT INTO pages VALUES (?,?)",
                    [(p.title, "\x1f".join(p.body_terms)) for p in self._pages.values()],
                )
                connection.executemany(
                    "INSERT INTO links VALUES (?,?)",
                    [
                        (page.title, target)
                        for page in self._pages.values()
                        for target in page.links
                    ],
                )
                connection.executemany(
                    "INSERT INTO redirects VALUES (?,?)",
                    [
                        (variant, target)
                        for target, variants in self._redirect_groups.items()
                        for variant in variants
                    ],
                )
                connection.executemany(
                    "INSERT INTO anchors VALUES (?,?,?)",
                    [
                        (stats.phrase, target, tf)
                        for stats in self._anchors.values()
                        for target, tf in stats.targets.items()
                    ],
                )
        finally:
            connection.close()

    @classmethod
    def load(cls, path: str) -> "WikipediaDatabase":
        """Load a snapshot written with :meth:`save`."""
        connection = sqlite3.connect(path)
        try:
            page_rows = connection.execute("SELECT title, body FROM pages").fetchall()
            link_rows = connection.execute("SELECT source, target FROM links").fetchall()
            redirect_rows = connection.execute(
                "SELECT variant, target FROM redirects"
            ).fetchall()
            anchor_rows = connection.execute(
                "SELECT phrase, target, tf FROM anchors"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"cannot read Wikipedia snapshot at {path!r}") from exc
        finally:
            connection.close()
        links_by_source: dict[str, list[str]] = defaultdict(list)
        for source, target in link_rows:
            links_by_source[source].append(target)
        database = cls()
        for title, body in page_rows:
            body_terms = tuple(body.split("\x1f")) if body else ()
            database.add_page(
                WikiPage(
                    title=title,
                    links=tuple(links_by_source.get(title, ())),
                    body_terms=body_terms,
                )
            )
        for variant, target in redirect_rows:
            database.add_redirect(variant, target)
        for phrase, target, tf in anchor_rows:
            database.add_anchor(phrase, target, tf)
        return database
