"""The Wikipedia link graph with tf.idf-style association scoring.

Section IV-B of the paper: for a link ``t1 -> t2`` the level of
association is ``log(N / in(t2)) / out(t1)`` where ``N`` is the number of
entries, ``in(t2)`` the in-degree of the target, and ``out(t1)`` the
out-degree of the source.  The metric is deliberately asymmetric.
Querying the graph with a term returns the top-k highest-scoring
neighbours (the paper fixes k = 50).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .database import WikipediaDatabase


@dataclass(frozen=True)
class Neighbour:
    """A linked entry with its association score."""

    title: str
    score: float


class WikipediaGraph:
    """Association queries over the simulated link graph."""

    def __init__(self, database: WikipediaDatabase) -> None:
        self._db = database

    def association(self, source: str, target: str) -> float:
        """Score of the directed link ``source -> target``.

        Returns 0.0 when the link does not exist.
        """
        if target not in self._db.out_links(source):
            return 0.0
        return self._score(source, target)

    def _score(self, source: str, target: str) -> float:
        n = max(self._db.page_count, 1)
        in_degree = max(self._db.in_degree(target), 1)
        out_degree = max(self._db.out_degree(source), 1)
        return math.log(n / in_degree) / out_degree

    def neighbours(self, term: str, k: int = 50) -> list[Neighbour]:
        """Top-``k`` outgoing neighbours of the page matching ``term``.

        The term is resolved through titles and redirects; an unknown
        term yields an empty list.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        title = self._db.resolve(term)
        if title is None:
            return []
        return self._scored_neighbours(title, k)

    def _scored_neighbours(self, title: str, k: int) -> list[Neighbour]:
        # Degree-dependent scores change whenever pages do, so the memo
        # lives in the database's version-guarded derived-cache store.
        cache = self._db.derived_cache("graph.scored_neighbours")
        cached = cache.get((title, k))
        if cached is not None:
            return cached
        scored = [
            Neighbour(target, self._score(title, target))
            for target in self._db.out_links(title)
        ]
        scored.sort(key=lambda item: (-item.score, item.title))
        result = scored[:k]
        cache[(title, k)] = result
        return result

    def neighbours_many(
        self, terms: list[str], k: int = 50
    ) -> list[list[Neighbour]]:
        """Bulk :meth:`neighbours`, one answer list per input term.

        Terms resolving to the same page share one scored-neighbour
        computation, so a batch of surface variants costs one graph walk
        per distinct page instead of one per term.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        by_title: dict[str, list[Neighbour]] = {}
        answers: list[list[Neighbour]] = []
        for term in terms:
            title = self._db.resolve(term)
            if title is None:
                answers.append([])
                continue
            if title not in by_title:
                by_title[title] = self._scored_neighbours(title, k)
            answers.append(by_title[title])
        return answers
