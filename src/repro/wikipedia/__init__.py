"""Simulated Wikipedia: pages, redirects, anchor text, and the link graph.

The paper uses a downloaded Wikipedia snapshot in four ways:

1. **page titles** as an important-term extractor (longest match wins,
   redirect pages widen coverage) — :mod:`repro.wikipedia.titles`;
2. the **link graph** as a context resource, scoring an edge
   ``t1 -> t2`` with ``log(N / in(t2)) / out(t1)`` and returning the
   top-k neighbours — :mod:`repro.wikipedia.graph`;
3. **redirect groups** as high-precision synonyms — and
4. **anchor texts** as noisier synonyms scored ``tf(p, t) / f(p)`` —
   both in :mod:`repro.wikipedia.synonyms`.

Our snapshot is generated from the knowledge base: one page per entity
and per facet term, with links from entity pages to the facet terms on
their paths (category-style links), related-term pages, and noise.
"""

from .model import WikiPage
from .database import WikipediaDatabase
from .builder import build_wikipedia
from .graph import WikipediaGraph
from .synonyms import SynonymFinder
from .titles import TitleMatcher
from .stats import SnapshotStats, snapshot_stats

__all__ = [
    "WikiPage",
    "WikipediaDatabase",
    "build_wikipedia",
    "WikipediaGraph",
    "SynonymFinder",
    "TitleMatcher",
    "SnapshotStats",
    "snapshot_stats",
]
