"""The qualification test for precision annotators (Section V-C).

The paper built its test from random Open Directory subtrees: some kept
intact ("correct" hierarchies), others perturbed by re-parenting and
cross-subtree swaps ("noisy").  A prospective annotator must classify
at least 18 of 20 hierarchies correctly to participate.

We generate the same kind of test from the ground-truth taxonomy, and
model each prospective worker as a judge with a latent accuracy; the
test then selects the careful ones, exactly the filtering effect the
paper's protocol aims for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import ReproConfig
from ..kb.world import World

#: Items per qualification test (paper: 20).
TEST_SIZE = 20

#: Correct answers required to pass (paper: 18).
PASS_MARK = 18


@dataclass(frozen=True)
class TestItem:
    """One test hierarchy: (parent, children) pairs plus the gold label."""

    edges: tuple[tuple[str, str], ...]
    is_correct: bool


@dataclass(frozen=True)
class Judge:
    """A prospective annotator with a latent care level."""

    judge_id: int
    accuracy: float


class QualificationTest:
    """Generate test items and administer the test to judges."""

    def __init__(self, world: World, config: ReproConfig | None = None) -> None:
        self._world = world
        self._config = config or ReproConfig()
        self._items = self._generate_items()

    # -- item generation -----------------------------------------------------

    def _subtree_edges(
        self, root: str, rng: random.Random
    ) -> list[tuple[str, str]]:
        taxonomy = self._world.taxonomy
        edges: list[tuple[str, str]] = []
        for child in taxonomy.children(root):
            edges.append((root, child))
            for grandchild in taxonomy.children(child)[:3]:
                edges.append((child, grandchild))
        return edges

    def _perturb(
        self, edges: list[tuple[str, str]], rng: random.Random
    ) -> list[tuple[str, str]]:
        """Swap children across parents / flip an edge: a noisy hierarchy."""
        noisy = list(edges)
        if len(noisy) >= 2:
            # Swap children across *different* parents, so the perturbed
            # hierarchy really is wrong.
            for _ in range(20):
                i, j = rng.sample(range(len(noisy)), 2)
                if noisy[i][0] != noisy[j][0]:
                    break
            pi, ci = noisy[i]
            pj, cj = noisy[j]
            noisy[i] = (pi, cj)
            noisy[j] = (pj, ci)
            if noisy[i][0] == noisy[j][0]:  # same parent: flip an edge instead
                parent, child = noisy[0]
                noisy[0] = (child, parent)
        else:
            parent, child = noisy[0]
            noisy[0] = (child, parent)
        return noisy

    def _generate_items(self) -> list[TestItem]:
        rng = self._config.rng("qualification")
        taxonomy = self._world.taxonomy
        candidates = [
            term for term in taxonomy.terms() if len(taxonomy.children(term)) >= 2
        ]
        items: list[TestItem] = []
        for index in range(TEST_SIZE):
            root = rng.choice(candidates)
            edges = self._subtree_edges(root, rng)
            if index % 2 == 0:
                items.append(TestItem(edges=tuple(edges), is_correct=True))
            else:
                items.append(
                    TestItem(edges=tuple(self._perturb(edges, rng)), is_correct=False)
                )
        return items

    @property
    def items(self) -> list[TestItem]:
        return list(self._items)

    # -- administering ----------------------------------------------------------

    def item_truth(self, item: TestItem) -> bool:
        """Whether the item's edges all agree with the taxonomy."""
        taxonomy = self._world.taxonomy
        return all(
            parent in taxonomy
            and child in taxonomy
            and taxonomy.is_ancestor(
                taxonomy.canonical(parent), taxonomy.canonical(child)
            )
            for parent, child in item.edges
        )

    def administer(self, judge: Judge) -> bool:
        """True when ``judge`` passes (>= 18 of 20 correct)."""
        rng = self._config.rng(f"qualtest:{judge.judge_id}")
        correct = 0
        for _item in self._items:
            answers_right = rng.random() < judge.accuracy
            if answers_right:
                correct += 1
        return correct >= PASS_MARK


def recruit_judges(
    test: QualificationTest,
    config: ReproConfig,
    needed: int,
    max_applicants: int = 200,
) -> list[Judge]:
    """Keep recruiting applicants until ``needed`` judges qualify.

    Applicant care levels vary widely (as on Mechanical Turk); the test
    retains the careful ones.
    """
    rng = config.rng("judgepool")
    qualified: list[Judge] = []
    for judge_id in range(max_applicants):
        judge = Judge(judge_id=judge_id, accuracy=rng.uniform(0.7, 0.99))
        if test.administer(judge):
            qualified.append(judge)
            if len(qualified) >= needed:
                break
    if len(qualified) < needed:
        raise RuntimeError(
            f"only {len(qualified)} of {needed} judges qualified after "
            f"{max_applicants} applicants"
        )
    return qualified
