"""The five-user browsing study (Section V-E).

Five users each repeat a locate-items-of-interest task five times on an
interface that pairs keyword search with the extracted facet
hierarchies.  The paper observed:

* first sessions start with a keyword query (a named entity for the
  topic of interest), then move to facet clicks;
* across repetitions, keyword-search use drops by up to 50% as users
  shift to the facet hierarchies;
* task completion time drops by about 25%;
* satisfaction holds steady around 2.5 on the 0-3 scale.

The simulation executes real actions against a real
:class:`~repro.core.interface.FacetedInterface`: searches run BM25,
facet clicks narrow the candidate set through the extracted hierarchy.
User behaviour follows a simple familiarity model — the probability of
reaching for facets instead of the search box grows with experience.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ReproConfig
from ..core.interface import FacetedInterface
from ..kb.world import World

#: Seconds to formulate and scan one keyword search.
SEARCH_COST_S = 18.0

#: Seconds for one facet click (scan sidebar, click, glance at results).
FACET_CLICK_COST_S = 6.0

#: Seconds to skim one result document.
SCAN_COST_S = 1.5

#: Facet-use probability: base + growth * repetition (capped).
FACET_AFFINITY_BASE = 0.35
FACET_AFFINITY_GROWTH = 0.13
FACET_AFFINITY_CAP = 0.9

#: A task is done when the working set is a focused subset: no bigger
#: than this, and containing at least ``TARGET_ON_TOPIC`` stories about
#: the user's interest ("a small subset of news stories associated with
#: the same topic", Section V-E).
TARGET_SET_SIZE = 10
TARGET_ON_TOPIC = 4

#: Hard cap on actions per session.
MAX_ACTIONS = 20


@dataclass
class SessionLog:
    """One user session's actions and outcome."""

    user: int
    repetition: int
    searches: int = 0
    facet_clicks: int = 0
    scanned: int = 0
    completed: bool = False

    @property
    def duration_s(self) -> float:
        return (
            self.searches * SEARCH_COST_S
            + self.facet_clicks * FACET_CLICK_COST_S
            + self.scanned * SCAN_COST_S
        )


@dataclass
class UserStudyResult:
    """Aggregates per repetition (averaged over users)."""

    sessions: list[SessionLog] = field(default_factory=list)
    satisfaction: list[float] = field(default_factory=list)

    def _per_repetition(self, value) -> list[float]:
        reps = sorted({s.repetition for s in self.sessions})
        means = []
        for rep in reps:
            logs = [s for s in self.sessions if s.repetition == rep]
            means.append(sum(value(s) for s in logs) / len(logs))
        return means

    @property
    def searches_per_repetition(self) -> list[float]:
        return self._per_repetition(lambda s: s.searches)

    @property
    def clicks_per_repetition(self) -> list[float]:
        return self._per_repetition(lambda s: s.facet_clicks)

    @property
    def time_per_repetition(self) -> list[float]:
        return self._per_repetition(lambda s: s.duration_s)

    @property
    def search_reduction(self) -> float:
        """Relative drop in keyword searches, first -> last repetition."""
        series = self.searches_per_repetition
        if not series or series[0] == 0:
            return 0.0
        return (series[0] - series[-1]) / series[0]

    @property
    def time_reduction(self) -> float:
        """Relative drop in task time, first -> last repetition."""
        series = self.time_per_repetition
        if not series or series[0] == 0:
            return 0.0
        return (series[0] - series[-1]) / series[0]

    def per_user_search_reduction(self) -> dict[int, float]:
        """Relative first->last drop in searches, per user."""
        users = sorted({s.user for s in self.sessions})
        reductions = {}
        for user in users:
            logs = sorted(
                (s for s in self.sessions if s.user == user),
                key=lambda s: s.repetition,
            )
            first, last = logs[0].searches, logs[-1].searches
            reductions[user] = (first - last) / first if first else 0.0
        return reductions

    @property
    def max_search_reduction(self) -> float:
        """The paper's "reduced by up to 50%" — the best per-user drop."""
        reductions = self.per_user_search_reduction()
        return max(reductions.values()) if reductions else 0.0

    @property
    def mean_satisfaction(self) -> float:
        if not self.satisfaction:
            return 0.0
        return sum(self.satisfaction) / len(self.satisfaction)


class UserStudy:
    """Simulate the Section V-E protocol against a real interface."""

    def __init__(
        self,
        interface: FacetedInterface,
        world: World,
        config: ReproConfig | None = None,
        users: int = 5,
        repetitions: int = 5,
    ) -> None:
        self._interface = interface
        self._world = world
        self._config = config or ReproConfig()
        self._users = users
        self._repetitions = repetitions
        # Facet nodes each user remembers working in earlier sessions —
        # the paper's users "started using the facet hierarchies
        # directly" once they knew where their stories lived.
        self._memory: dict[int, list[str]] = {}

    # -- task setup --------------------------------------------------------------

    def _pick_task(self, user: int) -> tuple[str, set[str], list[str]]:
        """The user's task: query string, on-topic docs, facet terms.

        Each user has one area of interest and repeats the task five
        times (the Section V-E protocol), so learning effects — not task
        variation — drive the trend across repetitions.
        """
        rng = self._config.rng(f"usertask:{user}")
        topic = self._world.sample_topic(rng)
        # Users gravitate to interests the interface can browse (the
        # paper's subjects chose their own topics of interest).
        for _ in range(10):
            if any(self._interface.has_node(t) for t in topic.facet_terms):
                break
            topic = self._world.sample_topic(rng)
        on_topic = {
            doc.doc_id
            for doc in self._interface.dice([])
            if doc.gold is not None and doc.gold.topic == topic.name
        }
        # The paper's users "typed as a keyword query a named entity
        # associated with the general topic" ("war in Iraq"): anchor the
        # query on a prominent entity from the user's area of interest.
        from collections import Counter

        entity_counts: Counter[str] = Counter()
        for doc in self._interface.dice([]):
            if doc.doc_id in on_topic and doc.gold is not None:
                for name in doc.gold.entity_names:
                    entity = self._world.entity(name)
                    if entity.prominence >= 0.8:
                        entity_counts[name] += 1
        if entity_counts:
            anchor = entity_counts.most_common(3)[
                rng.randrange(min(3, len(entity_counts)))
            ][0]
            query = f"{anchor} {rng.choice(list(topic.vocabulary))}"
        else:
            query = rng.choice(list(topic.vocabulary))
        facet_terms = [
            term for term in topic.facet_terms if self._interface.has_node(term)
        ]
        # Users click the most specific matching label first ("Baseball
        # Players" narrows; "Sports" barely does).
        facet_terms.sort(key=lambda t: self._interface.node(t).count)
        return query, on_topic, facet_terms, list(topic.vocabulary)

    # -- one session -------------------------------------------------------------------

    def _facet_affinity(self, repetition: int) -> float:
        return min(
            FACET_AFFINITY_CAP,
            FACET_AFFINITY_BASE + FACET_AFFINITY_GROWTH * repetition,
        )

    def _session(self, user: int, repetition: int) -> SessionLog:
        rng = self._config.rng(f"usersession:{user}:{repetition}")
        query, on_topic, facet_terms, vocabulary = self._pick_task(user)
        log = SessionLog(user=user, repetition=repetition)
        working: set[str] | None = None
        applied_facets: list[str] = []

        needed = min(TARGET_ON_TOPIC, max(1, len(on_topic)))

        def done() -> bool:
            if working is None or not working:
                return False
            if len(working) > TARGET_SET_SIZE:
                return False
            return len(working & on_topic) >= needed

        # New users lean on the search box; familiar users go straight
        # to the facet sidebar and drill down.
        affinity = self._facet_affinity(repetition)
        drilled: set[str] = set()
        remembered = list(self._memory.get(user, ()))

        def clickable_nodes() -> list[str]:
            """Sidebar nodes the user recognizes: the topic's facet
            terms plus children of anything already applied."""
            nodes = [t for t in facet_terms if t not in drilled]
            for term in applied_facets:
                for child in self._interface.children(term):
                    if child.term not in drilled:
                        nodes.append(child.term)
            return nodes

        def next_facet_action() -> set[str] | None:
            """The node the user clicks next: reading labels and counts,
            they pick the click that narrows the most while keeping the
            stories they are after."""
            current = working if working is not None else on_topic
            best: tuple[int, str, set[str]] | None = None
            for term in clickable_nodes():
                docs = self.node_docs(term)
                kept = len(docs & current & on_topic)
                if kept < min(needed, len(current & on_topic)):
                    continue
                narrowed = len(docs & current)
                if best is None or narrowed < best[0]:
                    best = (narrowed, term, docs)
            if best is None:
                return None
            drilled.add(best[1])
            applied_facets.append(best[1])
            return best[2]

        while not done() and (log.searches + log.facet_clicks) < MAX_ACTIONS:
            candidate: set[str] | None = None
            # After the opening query, remembered nodes from earlier
            # sessions are clicked straight away — the "using the facet
            # hierarchies directly" behaviour.
            if remembered and working is not None:
                term = remembered.pop(0)
                if self._interface.has_node(term) and term not in drilled:
                    drilled.add(term)
                    applied_facets.append(term)
                    candidate = self.node_docs(term)
                    log.facet_clicks += 1
                    narrowed = candidate if working is None else working & candidate
                    if len(narrowed & on_topic) >= min(
                        needed, len((working or on_topic) & on_topic)
                    ):
                        working = narrowed
                    log.scanned += min(len(working or ()), 4)
                    continue
                candidate = None
            # First-time sessions open with a keyword query (the paper's
            # users typed a named entity for their topic first); facets
            # then take over according to familiarity.
            if working is not None and facet_terms and rng.random() < affinity:
                candidate = next_facet_action()
                if candidate is not None:
                    log.facet_clicks += 1
                    narrowed = working & candidate
                    # Users back out of a drill-down that lost the
                    # stories they were after (the sidebar counts make
                    # this obvious at a glance).
                    if len(narrowed & on_topic) >= min(
                        needed, len(working & on_topic)
                    ):
                        working = narrowed
                    log.scanned += min(len(working), 4)
            if candidate is None:
                log.searches += 1
                results = self._interface.search(query, limit=25)
                candidate = {d.doc_id for d in results}
                # Refining a query narrows within the previous results
                # (search-within-results, as in Flamenco-style UIs).
                working = candidate if working is None else working & candidate
                # Familiar users skim result lists less: the facet
                # sidebar's counts orient them (the paper's "locate
                # items of interest faster").
                log.scanned += min(len(working), max(6, 20 - 3 * repetition))
                # Refine with another keyword, keeping the query short
                # (users retype, they don't grow queries forever).
                words = (query.split() + [rng.choice(vocabulary)])[-3:]
                query = " ".join(words)
            if working is not None and not working:
                # Dead end: start over with a fresh query.
                working = None
                applied_facets.clear()
                drilled.clear()
                query = rng.choice(vocabulary)
        log.completed = done()
        if log.completed and applied_facets:
            self._memory[user] = list(dict.fromkeys(applied_facets))
        elif not log.completed:
            # A failed replay teaches the user their shortcut is wrong.
            self._memory.pop(user, None)
        return log

    def node_docs(self, term: str) -> set[str]:
        """Document ids under one facet node."""
        return set(self._interface.node(term).doc_ids)

    # -- the full study -------------------------------------------------------------------

    def run(self) -> UserStudyResult:
        """All users, all repetitions."""
        result = UserStudyResult()
        for user in range(self._users):
            for repetition in range(self._repetitions):
                log = self._session(user, repetition)
                result.sessions.append(log)
                rng = self._config.rng(f"satisfaction:{user}:{repetition}")
                base = 2.5 if log.completed else 2.1
                result.satisfaction.append(
                    max(0.0, min(3.0, rng.gauss(base, 0.3)))
                )
        return result
