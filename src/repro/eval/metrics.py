"""Term matching and set metrics shared by the evaluation studies.

Human annotators do not distinguish "election" from "Elections"; terms
are compared on a stemmed, normalized key so that inflectional variants
count as the same facet term.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..text.stemmer import stem
from ..text.tokenizer import normalize_term


def match_key(term: str) -> str:
    """Canonical comparison key: normalized, per-word Porter-stemmed."""
    normalized = normalize_term(term)
    if not normalized:
        return ""
    return " ".join(stem(word) for word in normalized.split())


def to_key_set(terms: Iterable[str]) -> set[str]:
    """Distinct match keys of a term collection."""
    return {key for key in (match_key(t) for t in terms) if key}


def term_set_recall(gold: Iterable[str], extracted: Iterable[str]) -> float:
    """Fraction of gold terms present among extracted terms (key match)."""
    gold_keys = to_key_set(gold)
    if not gold_keys:
        return 0.0
    extracted_keys = to_key_set(extracted)
    return len(gold_keys & extracted_keys) / len(gold_keys)


def term_set_precision(extracted: Iterable[str], good: Iterable[str]) -> float:
    """Fraction of extracted terms judged good (key match)."""
    extracted_keys = to_key_set(extracted)
    if not extracted_keys:
        return 0.0
    good_keys = to_key_set(good)
    return len(extracted_keys & good_keys) / len(extracted_keys)
