"""The precision study (Tables V, VI, VII).

Annotators who pass the qualification test examine the extracted facet
hierarchies and judge, per facet term, (a) whether the term is useful
and (b) whether it is accurately placed in the hierarchy.  A term is
"precise" only when both hold, by at least 4 of 5 annotators
(Section V-C protocol).

The simulated judgment reads the ground truth: taxonomy terms are
useful and correctly placed under their taxonomy ancestors; prominent
location/event/organization names are useful facet terms; snippet
fragments, boilerplate, and person-name shards are not.  Each judge
applies the true judgment with their personal accuracy, so the vote
models real inter-annotator noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..builder import FacetPipelineBuilder
from ..config import ReproConfig
from ..corpus.document import Corpus
from ..core.annotate import annotate_database
from ..core.contextualize import contextualize
from ..core.hierarchy import FacetHierarchy, build_facet_hierarchies
from ..core.selection import select_facet_terms
from ..extractors.registry import build_extractors
from ..kb.schema import EntityKind
from ..kb.world import World
from ..wordnet.hypernyms import HypernymLookup
from ..wordnet.lexicon import build_lexicon
from .goldset import build_gold_set
from .metrics import match_key
from .qualification import QualificationTest, recruit_judges
from .recall import StudyMatrix, _extractor_sets, _resource_sets

#: Facet terms per cell used to build the judged hierarchies.
PRECISION_TOP_K = 150

#: Judges whose verdicts are counted per term (paper: 5).
JUDGES_PER_TERM = 5

#: Votes required to call a term precise (paper: 4 of 5).
PRECISION_AGREEMENT = 4

_USEFUL_ENTITY_KINDS = (
    EntityKind.LOCATION,
    EntityKind.EVENT,
    EntityKind.ORGANIZATION,
)


class GroundTruthOracle:
    """True usefulness/placement judgments derived from the world."""

    #: Entities this prominent are concepts an annotator recognizes; the
    #: minor long-tail entities fall below it.
    MIN_USEFUL_PROMINENCE = 0.35

    def __init__(self, world: World, wikipedia=None) -> None:
        self._world = world
        self._taxonomy = world.taxonomy
        self._wikipedia = wikipedia
        self._lexicon = HypernymLookup(build_lexicon(world))
        # Related term -> owning entity ("President of France" belongs
        # to Jacques Chirac).
        self._related_owner: dict[str, object] = {}
        for entity in world.entities:
            for related in entity.related_terms:
                self._related_owner.setdefault(match_key(related), entity)
        # Recognizable concept nouns beyond the mini WordNet: topical
        # vocabulary and the description nouns used across the world
        # ("officials", "capital", "career").  The real WordNet covers
        # all of these; our lexicon keeps only hypernym-bearing entries.
        self._common_keys: set[str] = set()
        for topic in world.topics:
            for word in topic.vocabulary:
                self._common_keys.add(match_key(word))
        for entity in world.entities:
            for word in entity.description_words:
                self._common_keys.add(match_key(word))

    def _entity_for(self, term: str):
        """Resolve a surface to an entity, like a human reader would.

        Falls back to Wikipedia titles/redirects and to anchor phrases
        with a single dominant target ("Samurai Tsunenaga" clearly
        denotes Hasekura Tsunenaga; "the agency" denotes nobody).
        """
        entity = self._world.find_by_surface(term)
        if entity is not None or self._wikipedia is None:
            return entity
        title = self._wikipedia.resolve(term)
        if title is not None:
            return self._world.find_by_surface(title)
        stats = self._wikipedia.anchor_stats(term)
        if stats is not None and stats.targets:
            best = max(stats.targets, key=lambda t: stats.score(t))
            if stats.score(best) >= 0.5:
                return self._world.find_by_surface(best)
        return None

    def useful(self, term: str) -> bool:
        """Would a careful annotator accept ``term`` as a facet term?

        Taxonomy terms, recognizable entities, and concept phrases like
        "President of France" qualify; boilerplate, name fragments, and
        obscure long-tail entities do not.
        """
        if self._taxonomy.canonical(term) is not None:
            return True
        entity = self._entity_for(term)
        if entity is not None:
            return entity.prominence >= self.MIN_USEFUL_PROMINENCE
        if match_key(term) in self._related_owner:
            return True
        # A single common noun that names a known categorical concept
        # ("campaign", "president", "police") reads as a reasonable
        # facet; the paper's Figure 4 is full of such terms.  Site
        # chrome and name fragments have no such entry.
        if " " not in term and self._lexicon.covers(term.lower()):
            return True
        if " " not in term and match_key(term) in self._common_keys:
            return True
        return False

    def placed(self, term: str, parent: str | None) -> bool:
        """Is ``term`` accurately placed under ``parent``?"""
        if parent is None:
            return True
        taxonomy = self._taxonomy
        term_c = taxonomy.canonical(term)
        parent_c = taxonomy.canonical(parent)
        if term_c is not None and parent_c is not None:
            return taxonomy.is_ancestor(parent_c, term_c)
        parent_key = match_key(parent)
        entity = self._entity_for(term)
        if entity is not None:
            if parent_c is not None:
                # e.g. "Jacques Chirac" under "Political Leaders".
                return any(
                    match_key(t) == parent_key for t in entity.facet_terms
                )
            parent_entity = self._entity_for(parent)
            if parent_entity is not None:
                # e.g. "Paris" under "France": the parent's name must be
                # a facet term on the child's paths.
                pk = match_key(parent_entity.name)
                return any(match_key(t) == pk for t in entity.facet_terms)
            return False
        if " " not in term and self._lexicon.covers(term.lower()):
            # A categorical common noun is well-placed under any of its
            # hypernyms ("president" under "leaders").
            chain_keys = {
                match_key(h) for h in self._lexicon.hypernyms(term.lower())
            }
            if parent_key in chain_keys:
                return True
        owner = self._related_owner.get(match_key(term))
        if owner is not None:
            # "President of France" sits fine under Jacques Chirac,
            # under France, under "Political Leaders", or next to the
            # owner's other concept terms.
            if parent_key == match_key(owner.name):
                return True
            if any(match_key(t) == parent_key for t in owner.facet_terms):
                return True
            if any(
                match_key(r) == parent_key for r in owner.related_terms
            ):
                return True
        return False

    def precise(self, term: str, parent: str | None) -> bool:
        """Both conditions of Section V-C."""
        return self.useful(term) and self.placed(term, parent)


@dataclass
class JudgedTerm:
    """One hierarchy node with its vote outcome."""

    term: str
    parent: str | None
    votes: int
    precise: bool


class PrecisionStudy:
    """Run the extractor x resource precision grid on one dataset."""

    def __init__(
        self,
        config: ReproConfig | None = None,
        builder: FacetPipelineBuilder | None = None,
        top_k: int = PRECISION_TOP_K,
    ) -> None:
        self.config = config or ReproConfig()
        self.builder = builder or FacetPipelineBuilder(self.config)
        self.oracle = GroundTruthOracle(
            self.builder.world, wikipedia=self.builder.substrates.wikipedia
        )
        self._top_k = top_k
        test = QualificationTest(self.builder.world, self.config)
        self.judges = recruit_judges(
            test, self.config, needed=JUDGES_PER_TERM
        )
        from ..resources.base import ResourceName
        from ..resources.registry import build_resources

        self._resources = {
            name: build_resources([name], self.builder.substrates, self.config)[0]
            for name in ResourceName
        }

    def _resource_list(self, label: str):
        from ..resources.composite import CompositeResource

        names = _resource_sets()[label]
        members = [self._resources[name] for name in names]
        if len(members) == 1:
            return members
        return [CompositeResource(members)]

    # -- judging ---------------------------------------------------------------

    def judge_hierarchies(
        self, hierarchies: list[FacetHierarchy], cell: str = ""
    ) -> list[JudgedTerm]:
        """Have the qualified judges vote on every hierarchy node."""
        judged: list[JudgedTerm] = []
        for hierarchy in hierarchies:
            parent_of: dict[str, str | None] = {hierarchy.root.term: None}
            for node in hierarchy.root.walk():
                for child in node.children:
                    parent_of[child.term] = node.term
            for node in hierarchy.root.walk():
                parent = parent_of.get(node.term)
                truth = self.oracle.precise(node.term, parent)
                votes = 0
                for judge in self.judges:
                    rng = self.config.rng(
                        f"judge:{cell}:{judge.judge_id}:{node.term}:{parent}"
                    )
                    verdict = truth if rng.random() < judge.accuracy else not truth
                    votes += int(verdict)
                judged.append(
                    JudgedTerm(
                        term=node.term,
                        parent=parent,
                        votes=votes,
                        precise=votes >= PRECISION_AGREEMENT,
                    )
                )
        return judged

    @staticmethod
    def precision_of(judged: list[JudgedTerm]) -> float:
        """Precise terms over all judged terms."""
        if not judged:
            return 0.0
        return sum(1 for j in judged if j.precise) / len(judged)

    # -- the grid -------------------------------------------------------------------

    def run(self, corpus: Corpus) -> StudyMatrix:
        """Measure precision for every cell of the grid."""
        gold = build_gold_set(corpus, self.config, self.builder.world)
        matrix = StudyMatrix(dataset=corpus.name, metric="Precision")
        for extractor_label, extractor_names in _extractor_sets().items():
            extractors = build_extractors(
                extractor_names, wikipedia=self.builder.substrates.wikipedia
            )
            annotated = annotate_database(gold.documents, extractors)
            for resource_label in _resource_sets():
                contextualized = contextualize(
                    annotated, self._resource_list(resource_label)
                )
                candidates = select_facet_terms(contextualized, top_k=self._top_k)
                hierarchies = build_facet_hierarchies(
                    candidates,
                    contextualized,
                    edge_validator=self.builder.edge_evidence,
                )
                judged = self.judge_hierarchies(
                    hierarchies, cell=f"{extractor_label}/{resource_label}"
                )
                matrix.set(
                    resource_label, extractor_label, self.precision_of(judged)
                )
        return matrix
