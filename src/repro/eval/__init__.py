"""Evaluation harness: simulated annotators and the paper's studies.

The paper's evaluation is human-powered (Amazon Mechanical Turk); this
subpackage replaces the human annotators with stochastic agents that
read the ground truth the corpus generator recorded:

* :mod:`repro.eval.annotators` — per-story facet-term annotation with
  per-annotator recall and idiosyncratic noise, five annotators per
  story, >= 2 agreement (Section V-B protocol);
* :mod:`repro.eval.goldset` — dataset-level gold facet-term sets;
* :mod:`repro.eval.recall` / :mod:`repro.eval.precision` — the
  Table II-IV and Table V-VII measurements;
* :mod:`repro.eval.qualification` — the Open-Directory-style
  qualification test precision annotators must pass;
* :mod:`repro.eval.user_study` — the five-user browsing study of
  Section V-E;
* :mod:`repro.eval.efficiency` — the Section V-D throughput study.
"""

from .metrics import match_key, term_set_recall
from .annotators import AnnotatorPool, SimulatedAnnotator
from .goldset import GoldSet, build_gold_set
from .recall import RecallStudy
from .precision import PrecisionStudy
from .qualification import QualificationTest
from .user_study import UserStudy, UserStudyResult
from .efficiency import (
    BatchedEfficiencyReport,
    EfficiencyStudy,
    ParallelEfficiencyReport,
)
from .agreement import AgreementReport, measure_agreement
from .hierarchy_metrics import HierarchyMetrics, hierarchy_metrics

__all__ = [
    "match_key",
    "term_set_recall",
    "AnnotatorPool",
    "SimulatedAnnotator",
    "GoldSet",
    "build_gold_set",
    "RecallStudy",
    "PrecisionStudy",
    "QualificationTest",
    "UserStudy",
    "UserStudyResult",
    "BatchedEfficiencyReport",
    "EfficiencyStudy",
    "ParallelEfficiencyReport",
    "AgreementReport",
    "measure_agreement",
    "HierarchyMetrics",
    "hierarchy_metrics",
]
