"""Inter-annotator agreement for the simulated annotation studies.

The paper relies on agreement thresholds (>= 2 of 5 for gold terms,
>= 4 of 5 for precision) without reporting agreement coefficients; for a
simulation it is worth *measuring* agreement, both to sanity-check the
annotator model (humans agree well above chance, far below perfectly)
and to expose the knob the thresholds implicitly depend on.

Implements pairwise observed agreement and Fleiss' kappa over the
per-story term-selection decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ReproConfig
from ..corpus.document import Document
from ..kb.world import World
from .annotators import SimulatedAnnotator, candidate_terms
from .metrics import match_key


@dataclass(frozen=True)
class AgreementReport:
    """Agreement statistics over one annotated sample."""

    stories: int
    decisions: int
    observed_agreement: float
    fleiss_kappa: float

    def format_summary(self) -> str:
        return (
            f"{self.stories} stories, {self.decisions} term decisions: "
            f"observed agreement {self.observed_agreement:.3f}, "
            f"Fleiss' kappa {self.fleiss_kappa:.3f}"
        )


def measure_agreement(
    world: World,
    documents: list[Document],
    config: ReproConfig | None = None,
) -> AgreementReport:
    """Fleiss' kappa over annotators' include/exclude decisions.

    Each (story, candidate term) pair is one item; each annotator's
    decision is whether they reported the term for that story.
    """
    config = config or ReproConfig()
    annotators = [
        SimulatedAnnotator(annotator_id=i, world=world)
        for i in range(config.annotators_per_story)
    ]
    n_raters = len(annotators)
    items: list[int] = []  # "include" votes per item
    for document in documents:
        pool = candidate_terms(world, document)
        if not pool:
            continue
        selections = []
        for annotator in annotators:
            rng = config.rng(
                f"agreement:{annotator.annotator_id}:{document.doc_id}"
            )
            chosen = {match_key(t) for t in annotator.annotate(document, rng)}
            selections.append(chosen)
        for term, _probability in pool:
            key = match_key(term)
            items.append(sum(1 for chosen in selections if key in chosen))

    if not items or n_raters < 2:
        return AgreementReport(len(documents), 0, 0.0, 0.0)

    # Per-item observed agreement: fraction of agreeing rater pairs.
    pair_count = n_raters * (n_raters - 1)
    p_i = [
        (votes * (votes - 1) + (n_raters - votes) * (n_raters - votes - 1))
        / pair_count
        for votes in items
    ]
    p_bar = sum(p_i) / len(p_i)

    # Expected agreement from the marginal include-rate.
    include_rate = sum(items) / (len(items) * n_raters)
    p_e = include_rate**2 + (1 - include_rate) ** 2
    kappa = (p_bar - p_e) / (1 - p_e) if p_e < 1 else 0.0

    return AgreementReport(
        stories=len(documents),
        decisions=len(items),
        observed_agreement=p_bar,
        fleiss_kappa=kappa,
    )
