"""The efficiency study (Section V-D).

The paper reports, per document:

* term extraction at 2-3 seconds when the Yahoo web service is in the
  loop, ~100 documents/second without it;
* expansion at ~1 second with Google, >100 documents/second with the
  local resources (Wikipedia, WordNet);
* facet-term selection in milliseconds; hierarchy construction in 1-2
  seconds.

We measure the local implementations directly and *model* the remote
round trips (the stand-ins carry the paper's measured latencies), then
report both, so the benchmark regenerates the same qualitative account:
web-service extraction dominates, local resources are orders of
magnitude faster, selection is nearly free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..builder import FacetPipelineBuilder
from ..config import ParallelConfig, ReproConfig
from ..corpus.document import Document
from ..core.annotate import annotate_database
from ..core.contextualize import contextualize
from ..core.hierarchy import build_facet_hierarchies
from ..core.pipeline import STAGES
from ..core.selection import select_facet_terms
from ..db.resource_cache import PersistentResourceCache
from ..extractors.base import ExtractorName
from ..extractors.registry import build_extractors
from ..extractors.significant_terms import SIMULATED_LATENCY_SECONDS
from ..observability import Observability
from ..resources.base import ResourceName
from ..resources.registry import build_resource, build_resources
from ..resources.resilience import SimulatedLatencyResource

#: Modeled per-document latency of Google expansion (Section V-D: ~1 s).
GOOGLE_LATENCY_SECONDS = 1.0

#: Per-query round trip used by the serial-vs-parallel comparison; kept
#: small so the benchmark finishes quickly — the *ratio* between serial
#: and parallel wall-clock is what matters, not the absolute latency.
COMPARISON_LATENCY_SECONDS = 0.01


@dataclass
class EfficiencyReport:
    """Per-stage throughput, measured and modeled."""

    documents: int
    extraction_local_s_per_doc: float
    extraction_with_yahoo_s_per_doc: float
    expansion_local_s_per_doc: float
    expansion_with_google_s_per_doc: float
    selection_s: float
    hierarchy_s: float

    @property
    def extraction_local_docs_per_s(self) -> float:
        return 1.0 / max(self.extraction_local_s_per_doc, 1e-9)

    @property
    def expansion_local_docs_per_s(self) -> float:
        return 1.0 / max(self.expansion_local_s_per_doc, 1e-9)

    def format_summary(self) -> str:
        return "\n".join(
            [
                f"Efficiency over {self.documents} documents:",
                "  term extraction (local NE+Wikipedia): "
                f"{self.extraction_local_docs_per_s:,.0f} docs/s "
                f"({self.extraction_local_s_per_doc * 1000:.2f} ms/doc)",
                "  term extraction (with Yahoo web service, modeled): "
                f"{self.extraction_with_yahoo_s_per_doc:.2f} s/doc",
                "  expansion (local Wikipedia+WordNet): "
                f"{self.expansion_local_docs_per_s:,.0f} docs/s "
                f"({self.expansion_local_s_per_doc * 1000:.2f} ms/doc)",
                "  expansion (with Google, modeled): "
                f"{self.expansion_with_google_s_per_doc:.2f} s/doc",
                f"  facet-term selection: {self.selection_s * 1000:.1f} ms",
                f"  hierarchy construction: {self.hierarchy_s:.2f} s",
            ]
        )


@dataclass
class ParallelEfficiencyReport:
    """Serial-vs-parallel contextualization over remote resources.

    ``serial_s`` and ``parallel_s`` both start from a cold cache;
    ``warm_s`` re-runs with a fresh resource instance over the persistent
    store the parallel run populated, so its hits come entirely from the
    SQLite tier.
    """

    documents: int
    workers: int
    latency_seconds: float
    serial_s: float
    parallel_s: float
    warm_s: float
    serial_queries: int
    parallel_queries: int
    warm_persistent_hits: int
    warm_queries: int

    @property
    def speedup(self) -> float:
        return self.serial_s / max(self.parallel_s, 1e-9)

    @property
    def warm_speedup(self) -> float:
        return self.serial_s / max(self.warm_s, 1e-9)

    def format_summary(self) -> str:
        return "\n".join(
            [
                f"Serial vs parallel expansion over {self.documents} documents "
                f"(remote resource, {self.latency_seconds * 1000:.0f} ms/query):",
                f"  serial (1 worker, cold cache):   {self.serial_s:.2f} s "
                f"({self.serial_queries} remote queries)",
                f"  parallel ({self.workers} workers, cold cache): "
                f"{self.parallel_s:.2f} s "
                f"({self.parallel_queries} remote queries) — "
                f"{self.speedup:.1f}x speedup",
                f"  parallel ({self.workers} workers, warm persistent cache): "
                f"{self.warm_s:.2f} s "
                f"({self.warm_persistent_hits} distinct terms answered from "
                f"SQLite across {self.warm_queries} lookups) — "
                f"{self.warm_speedup:.1f}x speedup",
            ]
        )


@dataclass
class BatchedEfficiencyReport:
    """Per-term engine vs batched query engine, both cold-cache.

    Both runs use the same worker count and the same simulated remote
    latency; the per-term path pays one round trip per distinct term,
    the batched path one round trip per chunk batch
    (:meth:`~repro.resources.resilience.SimulatedLatencyResource.query_many`).
    ``identical_output`` certifies the two contextualized databases are
    equal — the batched engine is a pure efficiency change.
    """

    documents: int
    workers: int
    latency_seconds: float
    per_term_s: float
    batched_s: float
    per_term_round_trips: int
    batched_round_trips: int
    identical_output: bool

    @property
    def speedup(self) -> float:
        return self.per_term_s / max(self.batched_s, 1e-9)

    def as_dict(self) -> dict[str, object]:
        return {
            "documents": self.documents,
            "workers": self.workers,
            "latency_seconds": self.latency_seconds,
            "per_term_s": self.per_term_s,
            "batched_s": self.batched_s,
            "per_term_round_trips": self.per_term_round_trips,
            "batched_round_trips": self.batched_round_trips,
            "speedup": self.speedup,
            "identical_output": self.identical_output,
        }

    def format_summary(self) -> str:
        return "\n".join(
            [
                f"Per-term vs batched expansion over {self.documents} documents "
                f"({self.workers} workers, "
                f"{self.latency_seconds * 1000:.0f} ms/round trip):",
                f"  per-term engine (cold cache): {self.per_term_s:.2f} s "
                f"({self.per_term_round_trips} remote round trips)",
                f"  batched engine (cold cache):  {self.batched_s:.2f} s "
                f"({self.batched_round_trips} remote round trips) — "
                f"{self.speedup:.1f}x speedup",
                "  identical facet output: "
                + ("yes" if self.identical_output else "NO"),
            ]
        )


@dataclass
class ColumnarEfficiencyReport:
    """Legacy dict/Counter data plane vs the columnar one (Steps 1-2).

    Both sides run serially (``workers=1``) over shared substrates with
    fresh extractor and resource instances per trial, using the local
    extractors (named entities + Wikipedia titles), the local
    resources, and the selection stage, so the comparison isolates the
    data-plane change itself: interned term ids, array-backed
    statistics folds, and batched resource resolution against
    per-occurrence string churn.  Selection is reported but not part
    of the headline speedup — it was vectorized before this plane and
    consumes the same ``df_map``/``rank_map`` views on both sides.

    Stage times are **CPU seconds** (``time.process_time``), the
    per-side minimum over ``trials`` interleaved runs — wall-clock on a
    shared box charges scheduler noise to whichever side is running,
    while CPU time only moves with the work actually done.
    ``identical_output`` certifies byte-identical extraction and
    contextualization output across the two planes.
    """

    documents: int
    trials: int
    legacy_annotation_s: float
    legacy_contextualization_s: float
    legacy_selection_s: float
    columnar_annotation_s: float
    columnar_contextualization_s: float
    columnar_selection_s: float
    identical_output: bool

    @property
    def annotation_speedup(self) -> float:
        return self.legacy_annotation_s / max(self.columnar_annotation_s, 1e-9)

    @property
    def contextualization_speedup(self) -> float:
        return self.legacy_contextualization_s / max(
            self.columnar_contextualization_s, 1e-9
        )

    @property
    def speedup(self) -> float:
        """Combined annotation + contextualization speedup."""
        legacy = self.legacy_annotation_s + self.legacy_contextualization_s
        columnar = self.columnar_annotation_s + self.columnar_contextualization_s
        return legacy / max(columnar, 1e-9)

    @property
    def legacy_annotation_docs_per_s(self) -> float:
        return self.documents / max(self.legacy_annotation_s, 1e-9)

    @property
    def legacy_contextualization_docs_per_s(self) -> float:
        return self.documents / max(self.legacy_contextualization_s, 1e-9)

    @property
    def columnar_annotation_docs_per_s(self) -> float:
        return self.documents / max(self.columnar_annotation_s, 1e-9)

    @property
    def columnar_contextualization_docs_per_s(self) -> float:
        return self.documents / max(self.columnar_contextualization_s, 1e-9)

    @property
    def legacy_selection_docs_per_s(self) -> float:
        return self.documents / max(self.legacy_selection_s, 1e-9)

    @property
    def columnar_selection_docs_per_s(self) -> float:
        return self.documents / max(self.columnar_selection_s, 1e-9)

    def as_dict(self) -> dict[str, object]:
        return {
            "documents": self.documents,
            "trials": self.trials,
            "legacy_annotation_s": self.legacy_annotation_s,
            "legacy_contextualization_s": self.legacy_contextualization_s,
            "legacy_selection_s": self.legacy_selection_s,
            "columnar_annotation_s": self.columnar_annotation_s,
            "columnar_contextualization_s": self.columnar_contextualization_s,
            "columnar_selection_s": self.columnar_selection_s,
            "legacy_annotation_docs_per_s": self.legacy_annotation_docs_per_s,
            "legacy_contextualization_docs_per_s": (
                self.legacy_contextualization_docs_per_s
            ),
            "legacy_selection_docs_per_s": self.legacy_selection_docs_per_s,
            "columnar_annotation_docs_per_s": self.columnar_annotation_docs_per_s,
            "columnar_contextualization_docs_per_s": (
                self.columnar_contextualization_docs_per_s
            ),
            "columnar_selection_docs_per_s": self.columnar_selection_docs_per_s,
            "annotation_speedup": self.annotation_speedup,
            "contextualization_speedup": self.contextualization_speedup,
            "speedup": self.speedup,
            "identical_output": self.identical_output,
        }

    def format_summary(self) -> str:
        return "\n".join(
            [
                f"Legacy vs columnar data plane over {self.documents} "
                f"documents (workers=1, min CPU time of {self.trials} "
                "interleaved trials):",
                f"  annotation:        legacy {self.legacy_annotation_s:.3f} s "
                f"({self.legacy_annotation_docs_per_s:.0f} docs/s) vs "
                f"columnar {self.columnar_annotation_s:.3f} s "
                f"({self.columnar_annotation_docs_per_s:.0f} docs/s) — "
                f"{self.annotation_speedup:.1f}x",
                "  contextualization: legacy "
                f"{self.legacy_contextualization_s:.3f} s "
                f"({self.legacy_contextualization_docs_per_s:.0f} docs/s) vs "
                f"columnar {self.columnar_contextualization_s:.3f} s "
                f"({self.columnar_contextualization_docs_per_s:.0f} docs/s) — "
                f"{self.contextualization_speedup:.1f}x",
                f"  selection:         legacy {self.legacy_selection_s:.3f} s "
                f"({self.legacy_selection_docs_per_s:.0f} docs/s) vs "
                f"columnar {self.columnar_selection_s:.3f} s "
                f"({self.columnar_selection_docs_per_s:.0f} docs/s)",
                f"  combined speedup: {self.speedup:.1f}x",
                "  identical output: "
                + ("yes" if self.identical_output else "NO"),
            ]
        )


@dataclass
class InstrumentedEfficiencyReport:
    """Per-stage / per-resource breakdown sourced from the metrics registry.

    Unlike :class:`EfficiencyReport`, which hand-times each stage with
    ``perf_counter`` around explicit calls, this report runs the real
    pipeline once under :class:`~repro.observability.Observability` and
    reads everything back out of the registry the instrumentation
    populated — the same numbers ``extract --metrics`` prints.
    """

    documents: int
    workers: int
    stage_seconds: dict[str, float]
    resource_counters: dict[str, int]
    cache_counters: dict[str, int]

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "documents": self.documents,
            "workers": self.workers,
            "stage_seconds": dict(self.stage_seconds),
            "resource_counters": dict(self.resource_counters),
            "cache_counters": dict(self.cache_counters),
        }

    def format_summary(self) -> str:
        lines = [
            f"Instrumented pipeline over {self.documents} documents "
            f"({self.workers} workers), from the metrics registry:"
        ]
        for stage in STAGES:
            seconds = self.stage_seconds.get(stage, 0.0)
            share = seconds / max(self.total_seconds, 1e-9)
            lines.append(f"  stage {stage:<18} {seconds:8.3f} s  ({share:5.1%})")
        if self.resource_counters:
            lines.append("  per-resource cache traffic:")
            for name, value in sorted(self.resource_counters.items()):
                lines.append(f"    {name:<40} {value:>8}")
        if self.cache_counters:
            lines.append("  persistent cache:")
            for name, value in sorted(self.cache_counters.items()):
                lines.append(f"    {name:<40} {value:>8}")
        return "\n".join(lines)


class EfficiencyStudy:
    """Time every stage on a document sample."""

    def __init__(
        self,
        config: ReproConfig | None = None,
        builder: FacetPipelineBuilder | None = None,
    ) -> None:
        self.config = config or ReproConfig()
        self.builder = builder or FacetPipelineBuilder(self.config)

    def run(self, documents: list[Document]) -> EfficiencyReport:
        n = max(len(documents), 1)
        substrates = self.builder.substrates

        # Local extraction: NE + Wikipedia titles (no web service).
        local_extractors = build_extractors(
            [ExtractorName.NAMED_ENTITIES, ExtractorName.WIKIPEDIA],
            wikipedia=substrates.wikipedia,
        )
        start = time.perf_counter()
        annotated_local = annotate_database(documents, local_extractors)
        extraction_local = (time.perf_counter() - start) / n

        # With Yahoo: measure the local tf-idf cost, add the modeled
        # web-service latency the paper observed.
        yahoo = build_extractors(
            [ExtractorName.YAHOO], wikipedia=substrates.wikipedia
        )
        start = time.perf_counter()
        annotate_database(documents, yahoo)
        yahoo_local = (time.perf_counter() - start) / n
        extraction_with_yahoo = (
            extraction_local + yahoo_local + SIMULATED_LATENCY_SECONDS
        )

        # Local expansion: Wikipedia Graph + Synonyms + WordNet.
        local_resources = build_resources(
            [
                ResourceName.WIKI_GRAPH,
                ResourceName.WIKI_SYNONYMS,
                ResourceName.WORDNET,
            ],
            substrates,
            self.config,
        )
        start = time.perf_counter()
        contextualized = contextualize(annotated_local, local_resources)
        expansion_local = (time.perf_counter() - start) / n

        # With Google: measure the simulated engine, add modeled latency.
        google = build_resources([ResourceName.GOOGLE], substrates, self.config)
        start = time.perf_counter()
        contextualize(annotated_local, google)
        google_local = (time.perf_counter() - start) / n
        expansion_with_google = (
            expansion_local + google_local + GOOGLE_LATENCY_SECONDS
        )

        start = time.perf_counter()
        candidates = select_facet_terms(contextualized)
        selection_s = time.perf_counter() - start

        start = time.perf_counter()
        build_facet_hierarchies(candidates, contextualized)
        hierarchy_s = time.perf_counter() - start

        return EfficiencyReport(
            documents=len(documents),
            extraction_local_s_per_doc=extraction_local,
            extraction_with_yahoo_s_per_doc=extraction_with_yahoo,
            expansion_local_s_per_doc=expansion_local,
            expansion_with_google_s_per_doc=expansion_with_google,
            selection_s=selection_s,
            hierarchy_s=hierarchy_s,
        )

    def run_instrumented(
        self,
        documents: list[Document],
        workers: int = 1,
    ) -> InstrumentedEfficiencyReport:
        """Run the full pipeline once, instrumented, and report from the registry.

        Stage wall-clock comes from the ``stage.<name>.seconds`` timers
        and cache traffic from the ``resource.*`` / ``cache.persistent.*``
        counters that the pipeline's own instrumentation records — no
        hand-rolled timers around individual stages.
        """
        obs = Observability.enabled()
        previous_parallel = self.builder._parallel
        try:
            self.builder.with_parallel(
                ParallelConfig(workers=workers)
            ).with_observability(obs)
            self.builder.build().run(documents)
        finally:
            self.builder.with_parallel(previous_parallel)
            self.builder.with_observability(None)

        stage_seconds: dict[str, float] = {}
        for stage in STAGES:
            timer = obs.metrics.timer_value(f"stage.{stage}.seconds")
            stage_seconds[stage] = timer.total if timer is not None else 0.0
        counters = obs.metrics.counters
        resource_counters = {
            name: int(value)
            for name, value in counters.items()
            if name.startswith("resource.")
        }
        cache_counters = {
            name: int(value)
            for name, value in counters.items()
            if name.startswith("cache.persistent.")
        }
        return InstrumentedEfficiencyReport(
            documents=len(documents),
            workers=workers,
            stage_seconds=stage_seconds,
            resource_counters=resource_counters,
            cache_counters=cache_counters,
        )

    def run_parallel_comparison(
        self,
        documents: list[Document],
        workers: int = 4,
        latency_seconds: float = COMPARISON_LATENCY_SECONDS,
        cache_path: str = ":memory:",
    ) -> ParallelEfficiencyReport:
        """Measure contextualization serial vs parallel vs warm-cache.

        Expansion over a remote resource is latency-bound: each distinct
        important term costs one (simulated) round trip.  A thread pool
        overlaps those round trips, and a warm persistent cache removes
        them entirely — the two deployment levers of Section V-D.

        Every run here pins ``batch_queries=False``: this comparison
        isolates the worker-pool lever, so both sides pay one round trip
        per term (see :meth:`run_batched_comparison` for the batching
        lever).
        """
        substrates = self.builder.substrates
        extractors = build_extractors(
            [ExtractorName.NAMED_ENTITIES, ExtractorName.WIKIPEDIA],
            wikipedia=substrates.wikipedia,
        )
        annotated = annotate_database(documents, extractors)

        def remote_google() -> SimulatedLatencyResource:
            return SimulatedLatencyResource(
                build_resource(ResourceName.GOOGLE, substrates, self.config),
                latency_seconds=latency_seconds,
            )

        def per_term(workers: int) -> ParallelConfig:
            return ParallelConfig(
                workers=workers, batch_queries=False, prefetch=False
            )

        # Serial, cold cache — no persistent tier, so the parallel run
        # below starts equally cold.
        serial = remote_google()
        start = time.perf_counter()
        contextualize(annotated, [serial], per_term(1))
        serial_s = time.perf_counter() - start

        # Parallel, cold cache — populates the shared persistent store.
        store = PersistentResourceCache(cache_path)
        parallel = remote_google()
        parallel.attach_cache(store)
        start = time.perf_counter()
        contextualize(annotated, [parallel], per_term(workers))
        parallel_s = time.perf_counter() - start

        # Parallel, warm cache — a *fresh* resource instance over the
        # now-populated store: every distinct term is a persistent hit.
        warm = remote_google()
        warm.attach_cache(store)
        start = time.perf_counter()
        contextualize(annotated, [warm], per_term(workers))
        warm_s = time.perf_counter() - start

        warm_stats = warm.cache_stats
        return ParallelEfficiencyReport(
            documents=len(documents),
            workers=workers,
            latency_seconds=latency_seconds,
            serial_s=serial_s,
            parallel_s=parallel_s,
            warm_s=warm_s,
            serial_queries=serial.simulated_calls,
            parallel_queries=parallel.simulated_calls,
            warm_persistent_hits=warm_stats.persistent_hits,
            warm_queries=warm_stats.queries,
        )

    def run_batched_comparison(
        self,
        documents: list[Document],
        workers: int = 4,
        latency_seconds: float = COMPARISON_LATENCY_SECONDS,
    ) -> BatchedEfficiencyReport:
        """Measure the batched query engine against the per-term path.

        Both runs share one annotation, use the same worker count and
        start from a cold cache over the same simulated remote resource.
        The per-term path issues one round trip per distinct term per
        chunk miss; the batched path deduplicates each chunk's terms and
        answers them with one bulk round trip
        (:meth:`~repro.resources.resilience.SimulatedLatencyResource.query_many`),
        with single-flight coalescing deduplicating across concurrent
        chunks.  The report also certifies the two contextualized
        databases are identical.
        """
        substrates = self.builder.substrates
        extractors = build_extractors(
            [ExtractorName.NAMED_ENTITIES, ExtractorName.WIKIPEDIA],
            wikipedia=substrates.wikipedia,
        )
        annotated = annotate_database(documents, extractors)

        def remote_google() -> SimulatedLatencyResource:
            return SimulatedLatencyResource(
                build_resource(ResourceName.GOOGLE, substrates, self.config),
                latency_seconds=latency_seconds,
            )

        per_term = remote_google()
        start = time.perf_counter()
        per_term_db = contextualize(
            annotated,
            [per_term],
            ParallelConfig(workers=workers, batch_queries=False, prefetch=False),
        )
        per_term_s = time.perf_counter() - start

        batched = remote_google()
        start = time.perf_counter()
        batched_db = contextualize(
            annotated,
            [batched],
            ParallelConfig(workers=workers, batch_queries=True),
        )
        batched_s = time.perf_counter() - start

        identical = (
            per_term_db.context_terms == batched_db.context_terms
            and per_term_db.expanded_sets == batched_db.expanded_sets
        )
        return BatchedEfficiencyReport(
            documents=len(documents),
            workers=workers,
            latency_seconds=latency_seconds,
            per_term_s=per_term_s,
            batched_s=batched_s,
            per_term_round_trips=per_term.simulated_calls,
            batched_round_trips=batched.simulated_calls,
            identical_output=identical,
        )

    def run_columnar_comparison(
        self,
        documents: list[Document],
        trials: int = 3,
    ) -> ColumnarEfficiencyReport:
        """Measure the columnar data plane against the legacy one.

        Both sides annotate with the local extractors, contextualize
        with the local resources, and run facet-term selection,
        serially, over this study's shared substrates; extractors and
        resources are rebuilt fresh for every run so neither side
        inherits the other's instance state.  One
        untimed warm-up of each side primes the substrates' lazy
        structures (anchor indexes, derived graph/synonym caches) so the
        timed trials compare steady-state data planes, not first-touch
        initialization.  Per stage, the report keeps the minimum CPU
        time across ``trials`` interleaved runs — external noise only
        ever adds time, so the minimum is the least-contaminated
        estimate on a shared machine.
        """
        substrates = self.builder.substrates
        legacy_parallel = ParallelConfig(
            workers=1, columnar=False, batch_queries=False
        )
        columnar_parallel = ParallelConfig(
            workers=1, columnar=True, batch_queries=True
        )
        local_resources = [
            ResourceName.WIKI_GRAPH,
            ResourceName.WIKI_SYNONYMS,
            ResourceName.WORDNET,
        ]

        def run_side(parallel: ParallelConfig):
            extractors = build_extractors(
                [ExtractorName.NAMED_ENTITIES, ExtractorName.WIKIPEDIA],
                wikipedia=substrates.wikipedia,
            )
            resources = build_resources(local_resources, substrates, self.config)
            start = time.process_time()
            annotated = annotate_database(documents, extractors, parallel=parallel)
            mid = time.process_time()
            contextualized = contextualize(annotated, resources, parallel)
            post_ctx = time.process_time()
            candidates = select_facet_terms(contextualized)
            end = time.process_time()
            return (
                mid - start,
                post_ctx - mid,
                end - post_ctx,
                annotated,
                contextualized,
                candidates,
            )

        # Untimed warm-up of both sides (substrate lazy structures).
        run_side(columnar_parallel)
        run_side(legacy_parallel)

        legacy_ann = legacy_ctx = legacy_sel = float("inf")
        columnar_ann = columnar_ctx = columnar_sel = float("inf")
        identical = True
        for _ in range(max(trials, 1)):
            l_ann, l_ctx, l_sel, l_annotated, l_contextualized, l_candidates = (
                run_side(legacy_parallel)
            )
            c_ann, c_ctx, c_sel, c_annotated, c_contextualized, c_candidates = (
                run_side(columnar_parallel)
            )
            legacy_ann = min(legacy_ann, l_ann)
            legacy_ctx = min(legacy_ctx, l_ctx)
            legacy_sel = min(legacy_sel, l_sel)
            columnar_ann = min(columnar_ann, c_ann)
            columnar_ctx = min(columnar_ctx, c_ctx)
            columnar_sel = min(columnar_sel, c_sel)
            identical = identical and (
                l_annotated.important_terms == c_annotated.important_terms
                and l_contextualized.context_terms
                == c_contextualized.context_terms
                and l_contextualized.expanded_sets
                == c_contextualized.expanded_sets
                and l_candidates == c_candidates
            )
        return ColumnarEfficiencyReport(
            documents=len(documents),
            trials=max(trials, 1),
            legacy_annotation_s=legacy_ann,
            legacy_contextualization_s=legacy_ctx,
            legacy_selection_s=legacy_sel,
            columnar_annotation_s=columnar_ann,
            columnar_contextualization_s=columnar_ctx,
            columnar_selection_s=columnar_sel,
            identical_output=identical,
        )
