"""The recall study (Tables II, III, IV).

For every combination of term extractor (NE / Yahoo / Wikipedia / All)
and external resource (Google / WordNet Hypernyms / Wikipedia Synonyms /
Wikipedia Graph / All), run the pipeline over the annotated sample and
measure the fraction of the gold facet terms that the pipeline extracts.
Annotation (Step 1) is shared across resource cells, and resources
memoize their answers, so the full 4 x 5 grid costs far less than 20
independent runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..builder import FacetPipelineBuilder
from ..config import ReproConfig
from ..corpus.document import Corpus
from ..core.annotate import annotate_database
from ..core.contextualize import contextualize
from ..core.selection import select_facet_terms
from ..extractors.base import ExtractorName
from ..extractors.registry import build_extractors
from ..resources.base import ResourceName
from ..resources.composite import CompositeResource
from ..resources.registry import build_resources
from .goldset import GoldSet, build_gold_set
from .metrics import match_key

#: Row labels in table order (resources), incl. the "All" union row.
RESOURCE_ROWS: tuple[str, ...] = (
    ResourceName.GOOGLE.value,
    ResourceName.WORDNET.value,
    ResourceName.WIKI_SYNONYMS.value,
    ResourceName.WIKI_GRAPH.value,
    "All",
)

#: Column labels in table order (extractors), incl. the "All" column.
EXTRACTOR_COLUMNS: tuple[str, ...] = (
    ExtractorName.NAMED_ENTITIES.value,
    ExtractorName.YAHOO.value,
    ExtractorName.WIKIPEDIA.value,
    "All",
)

#: Facet terms kept per cell for the recall measurement.  None keeps
#: every candidate passing the shift tests (the paper does not cap the
#: recall measurement; only the judged hierarchies are capped).
RECALL_TOP_K: int | None = None


@dataclass
class StudyMatrix:
    """A resource x extractor matrix of measurements."""

    dataset: str
    metric: str
    values: dict[tuple[str, str], float] = field(default_factory=dict)

    def value(self, resource: str, extractor: str) -> float:
        return self.values[(resource, extractor)]

    def set(self, resource: str, extractor: str, value: float) -> None:
        self.values[(resource, extractor)] = value

    def format_table(self) -> str:
        """Render in the layout of the paper's tables."""
        width = max(len(r) for r in RESOURCE_ROWS) + 2
        header = " " * width + "".join(f"{c:>12}" for c in EXTRACTOR_COLUMNS)
        lines = [
            f"{self.metric} ({self.dataset})",
            header,
        ]
        for resource in RESOURCE_ROWS:
            cells = "".join(
                f"{self.values.get((resource, extractor), float('nan')):>12.3f}"
                for extractor in EXTRACTOR_COLUMNS
            )
            lines.append(f"{resource:<{width}}" + cells)
        return "\n".join(lines)


def _extractor_sets() -> dict[str, list[ExtractorName]]:
    return {
        ExtractorName.NAMED_ENTITIES.value: [ExtractorName.NAMED_ENTITIES],
        ExtractorName.YAHOO.value: [ExtractorName.YAHOO],
        ExtractorName.WIKIPEDIA.value: [ExtractorName.WIKIPEDIA],
        "All": list(ExtractorName),
    }


def _resource_sets() -> dict[str, list[ResourceName]]:
    return {
        ResourceName.GOOGLE.value: [ResourceName.GOOGLE],
        ResourceName.WORDNET.value: [ResourceName.WORDNET],
        ResourceName.WIKI_SYNONYMS.value: [ResourceName.WIKI_SYNONYMS],
        ResourceName.WIKI_GRAPH.value: [ResourceName.WIKI_GRAPH],
        "All": list(ResourceName),
    }


class RecallStudy:
    """Run the full extractor x resource recall grid on one dataset."""

    def __init__(
        self,
        config: ReproConfig | None = None,
        builder: FacetPipelineBuilder | None = None,
        top_k: int | None = RECALL_TOP_K,
    ) -> None:
        self.config = config or ReproConfig()
        self.builder = builder or FacetPipelineBuilder(self.config)
        self._top_k = top_k
        # One resource instance per name, shared across cells so caches
        # persist for the whole grid.
        self._resources = {
            name: build_resources([name], self.builder.substrates, self.config)[0]
            for name in ResourceName
        }

    def _resource_list(self, label: str):
        names = _resource_sets()[label]
        members = [self._resources[name] for name in names]
        if len(members) == 1:
            return members
        return [CompositeResource(members)]

    def concept_key(self, term: str) -> str:
        """Comparison key that identifies name variants of one concept.

        The paper's human annotators judge concept identity, not string
        equality — "U.S." and "United States" are the same facet term.
        Terms that resolve to a Wikipedia entry (directly or through a
        redirect) are compared by the entry title.
        """
        title = self.builder.substrates.wikipedia.resolve(term)
        return match_key(title if title is not None else term)

    def recall(self, gold_terms: list[str], extracted: list[str]) -> float:
        """Concept-level recall of ``extracted`` against ``gold_terms``."""
        gold_keys = {k for k in (self.concept_key(t) for t in gold_terms) if k}
        if not gold_keys:
            return 0.0
        extracted_keys = {
            k for k in (self.concept_key(t) for t in extracted) if k
        }
        return len(gold_keys & extracted_keys) / len(gold_keys)

    def extracted_terms(
        self, corpus: Corpus, extractor_label: str, resource_label: str,
        gold: GoldSet | None = None,
    ) -> list[str]:
        """Facet terms extracted for one grid cell (on the gold sample)."""
        gold = gold or build_gold_set(corpus, self.config, self.builder.world)
        extractors = build_extractors(
            _extractor_sets()[extractor_label],
            wikipedia=self.builder.substrates.wikipedia,
        )
        annotated = annotate_database(gold.documents, extractors)
        contextualized = contextualize(annotated, self._resource_list(resource_label))
        candidates = select_facet_terms(contextualized, top_k=self._top_k)
        return [c.term for c in candidates]

    def run(self, corpus: Corpus) -> StudyMatrix:
        """Measure recall for every cell of the grid."""
        gold = build_gold_set(corpus, self.config, self.builder.world)
        matrix = StudyMatrix(dataset=corpus.name, metric="Recall")
        for extractor_label, extractor_names in _extractor_sets().items():
            extractors = build_extractors(
                extractor_names, wikipedia=self.builder.substrates.wikipedia
            )
            annotated = annotate_database(gold.documents, extractors)
            for resource_label in _resource_sets():
                contextualized = contextualize(
                    annotated, self._resource_list(resource_label)
                )
                candidates = select_facet_terms(contextualized, top_k=self._top_k)
                recall = self.recall(gold.terms, [c.term for c in candidates])
                matrix.set(resource_label, extractor_label, recall)
        return matrix
