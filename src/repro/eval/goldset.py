"""Dataset-level gold facet-term sets (Section V-B).

The paper annotates 1,000 stories per dataset (five annotators each,
>= 2 agreement) and reports gold sets of 633 (SNYT), 756 (SNB), and 703
(MNYT) facet terms, growing slowly with source count and time span, and
a sensitivity curve: ~40% of the terms are discovered within the first
100 stories and ~80% within 500.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ReproConfig
from ..corpus.document import Corpus, Document
from ..kb.world import World, build_world
from .annotators import AnnotatorPool
from .metrics import match_key


@dataclass
class GoldSet:
    """Gold annotations for one dataset sample."""

    dataset: str
    per_document: dict[str, list[str]]
    documents: list[Document] = field(default_factory=list)

    @property
    def terms(self) -> list[str]:
        """Distinct gold facet terms across the sample."""
        seen: dict[str, str] = {}
        for terms in self.per_document.values():
            for term in terms:
                key = match_key(term)
                if key:
                    seen.setdefault(key, term)
        return [seen[key] for key in sorted(seen)]

    def __len__(self) -> int:
        return len(self.terms)

    def discovery_curve(self, checkpoints: list[int]) -> dict[int, float]:
        """Fraction of the final gold set discovered after annotating
        the first ``n`` stories, for each checkpoint ``n``."""
        total = {match_key(t) for t in self.terms}
        if not total:
            return {n: 0.0 for n in checkpoints}
        curve: dict[int, float] = {}
        ordered = [doc.doc_id for doc in self.documents]
        seen: set[str] = set()
        position = 0
        for checkpoint in sorted(checkpoints):
            while position < min(checkpoint, len(ordered)):
                for term in self.per_document.get(ordered[position], []):
                    key = match_key(term)
                    if key:
                        seen.add(key)
                position += 1
            curve[checkpoint] = len(seen & total) / len(total)
        return curve


_CACHE: dict[tuple[str, int, float, int], GoldSet] = {}


def build_gold_set(
    corpus: Corpus,
    config: ReproConfig | None = None,
    world: World | None = None,
    sample_size: int | None = None,
) -> GoldSet:
    """Annotate a (sampled) corpus with the simulated annotator pool.

    As in the paper, large corpora are sampled down to 1,000 stories
    (``config.annotated_sample_size``) before annotation.
    """
    config = config or ReproConfig()
    world = world or build_world(config)
    if sample_size is None:
        sample_size = config.annotated_sample_size
    cache_key = (corpus.name, config.seed, config.scale, sample_size)
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached
    if len(corpus) > sample_size:
        rng = config.rng(f"goldsample:{corpus.name}")
        sampled = corpus.sample(rng, sample_size)
        documents = sampled.documents
    else:
        documents = list(corpus.documents)
    pool = AnnotatorPool(world, config)
    gold = GoldSet(
        dataset=corpus.name,
        per_document=pool.annotate_corpus(documents),
        documents=documents,
    )
    _CACHE[cache_key] = gold
    return gold
