"""Structural quality metrics for extracted facet hierarchies.

The paper evaluates hierarchies with human judgments; these metrics
quantify the *structure* those judgments implicitly reward: trees that
branch (not flat term lists), nodes that actually narrow their parent,
and facets that jointly cover the collection without one facet
swallowing everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hierarchy import FacetHierarchy


@dataclass(frozen=True)
class HierarchyMetrics:
    """Aggregate structure metrics for a facet forest."""

    facets: int
    nodes: int
    max_depth: int
    branching_facets: int
    """Facets with at least one child under the root."""
    mean_branching_factor: float
    """Mean children per internal node."""
    mean_narrowing: float
    """Mean child/parent document-count ratio (lower narrows more)."""
    coverage: float
    """Fraction of the collection under at least one facet."""

    def format_summary(self) -> str:
        return "\n".join(
            [
                f"facets: {self.facets} ({self.branching_facets} branching)",
                f"nodes: {self.nodes}, max depth {self.max_depth}",
                f"mean branching factor: {self.mean_branching_factor:.2f}",
                f"mean narrowing ratio: {self.mean_narrowing:.2f}",
                f"collection coverage: {self.coverage:.0%}",
            ]
        )


def hierarchy_metrics(
    hierarchies: list[FacetHierarchy], collection_size: int
) -> HierarchyMetrics:
    """Compute :class:`HierarchyMetrics` for a facet forest."""
    if collection_size < 0:
        raise ValueError("collection_size must be >= 0")
    nodes = 0
    max_depth = 0
    internal_nodes = 0
    total_children = 0
    narrowing_ratios: list[float] = []
    covered: set[str] = set()

    def walk(node, depth: int) -> None:
        nonlocal nodes, max_depth, internal_nodes, total_children
        nodes += 1
        max_depth = max(max_depth, depth)
        if node.children:
            internal_nodes += 1
            total_children += len(node.children)
            for child in node.children:
                if node.count:
                    narrowing_ratios.append(child.count / node.count)
                walk(child, depth + 1)

    for hierarchy in hierarchies:
        covered.update(hierarchy.root.doc_ids)
        walk(hierarchy.root, 0)

    return HierarchyMetrics(
        facets=len(hierarchies),
        nodes=nodes,
        max_depth=max_depth,
        branching_facets=sum(1 for h in hierarchies if h.root.children),
        mean_branching_factor=(
            total_children / internal_nodes if internal_nodes else 0.0
        ),
        mean_narrowing=(
            sum(narrowing_ratios) / len(narrowing_ratios)
            if narrowing_ratios
            else 0.0
        ),
        coverage=len(covered) / collection_size if collection_size else 0.0,
    )
