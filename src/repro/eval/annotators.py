"""Simulated Mechanical Turk annotators.

Each annotator reads a story and reports up to 10 terms "useful for
faceted navigation" (the Section V-B instructions).  The simulation
draws from the story's ground truth — the facet-path terms of mentioned
entities, the topic's facet terms, and the names of prominent mentioned
entities (annotators do use "Iraq" or "bush administration" as facet
terms; see Figure 4 of the paper) — with per-annotator recall and a
dash of idiosyncratic noise.  The >= 2-of-5 agreement rule then filters
the noise, exactly as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import ReproConfig
from ..corpus.document import Document
from ..kb.schema import EntityKind
from ..kb.world import World
from .metrics import match_key

#: Maximum facet terms one annotator reports per story (paper: 10).
MAX_TERMS_PER_STORY = 10

#: Probability an annotator includes a taxonomy facet term or a
#: prominent entity name from the candidate pool.
ANNOTATOR_TERM_RECALL = 0.5

#: Probability an annotator coins a story-specific concept term (the
#: long tail of Figure 4: "bush administration", "italian culture").
ANNOTATOR_SPECIFIC_RECALL = 0.3

#: Probability an annotator appends one idiosyncratic noise term.
ANNOTATOR_NOISE_RATE = 0.25

#: Entity kinds whose canonical names annotators use as facet terms.
_NAMEABLE_KINDS = (EntityKind.LOCATION, EntityKind.EVENT, EntityKind.ORGANIZATION)

#: Minimum prominence for an entity name to be used as a facet term.
_NAMEABLE_PROMINENCE = 1.0


def candidate_terms(world: World, document: Document) -> list[tuple[str, float]]:
    """The ground-truth candidate pool an annotator samples from.

    Returns ``(term, inclusion_probability)`` pairs: general facet terms
    and prominent entity names are likely picks; story-specific concept
    terms (the entities' related terms, e.g. "President of France") form
    a long tail that only some annotators report — which is what makes
    the dataset-level gold set keep growing with sample size, as in the
    paper's sensitivity test.
    """
    if document.gold is None:
        return []
    pool: list[tuple[str, float]] = [
        (term, ANNOTATOR_TERM_RECALL) for term in document.gold.facet_terms
    ]
    for name in document.gold.entity_names:
        entity = world.entity(name)
        if entity.kind in _NAMEABLE_KINDS and entity.prominence >= _NAMEABLE_PROMINENCE:
            pool.append((entity.name, ANNOTATOR_TERM_RECALL))
        for related in entity.related_terms:
            pool.append((related, ANNOTATOR_SPECIFIC_RECALL))
    # De-duplicate, preserving order (general terms come first).
    seen: set[str] = set()
    unique: list[tuple[str, float]] = []
    for term, probability in pool:
        key = match_key(term)
        if key and key not in seen:
            seen.add(key)
            unique.append((term, probability))
    return unique


@dataclass
class SimulatedAnnotator:
    """One worker with their own seed (hence their own quirks)."""

    annotator_id: int
    world: World
    term_recall: float = ANNOTATOR_TERM_RECALL
    noise_rate: float = ANNOTATOR_NOISE_RATE

    def annotate(self, document: Document, rng: random.Random) -> list[str]:
        """Facet terms this annotator reports for ``document``."""
        pool = candidate_terms(self.world, document)
        chosen: list[str] = []
        # ``term_recall`` rescales the per-term probabilities, so sloppier
        # or keener annotators can be modelled with one knob.
        quality = self.term_recall / ANNOTATOR_TERM_RECALL
        for term, probability in pool:
            if len(chosen) >= MAX_TERMS_PER_STORY:
                break
            if rng.random() < probability * quality:
                chosen.append(term)
        # Idiosyncratic noise: a random taxonomy term unrelated to the
        # story.  Two annotators rarely pick the same noise term, so the
        # agreement rule removes it.
        if rng.random() < self.noise_rate and len(chosen) < MAX_TERMS_PER_STORY:
            noise = rng.choice(self.world.taxonomy.terms())
            chosen.append(noise)
        return chosen


class AnnotatorPool:
    """Runs ``k`` annotators per story and applies the agreement rule."""

    def __init__(
        self,
        world: World,
        config: ReproConfig | None = None,
        agreement: int = 2,
    ) -> None:
        if agreement < 1:
            raise ValueError(f"agreement must be >= 1, got {agreement}")
        self._world = world
        self._config = config or ReproConfig()
        self._agreement = agreement
        self._annotators = [
            SimulatedAnnotator(annotator_id=i, world=world)
            for i in range(self._config.annotators_per_story)
        ]

    def annotate_document(self, document: Document) -> list[str]:
        """Terms reported by >= ``agreement`` annotators for one story."""
        votes: dict[str, int] = {}
        surface: dict[str, str] = {}
        for annotator in self._annotators:
            rng = self._config.rng(
                f"annotate:{annotator.annotator_id}:{document.doc_id}"
            )
            for term in annotator.annotate(document, rng):
                key = match_key(term)
                if not key:
                    continue
                votes[key] = votes.get(key, 0) + 1
                surface.setdefault(key, term)
        return [
            surface[key]
            for key, count in sorted(votes.items())
            if count >= self._agreement
        ]

    def annotate_corpus(self, documents: list[Document]) -> dict[str, list[str]]:
        """Per-story agreed facet terms: doc_id -> terms."""
        return {doc.doc_id: self.annotate_document(doc) for doc in documents}
