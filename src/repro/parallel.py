"""Batch execution engine: shard work, run a pool, merge deterministically.

The paper's efficiency study (Section V-D) shows that per-document term
extraction and per-term resource expansion dominate the pipeline cost
and are embarrassingly parallel over documents.  This module provides
the sharding machinery used by :func:`repro.core.annotate.annotate_database`
and :func:`repro.core.contextualize.contextualize`:

* :func:`chunked` splits a work list into fixed-size shards;
* :func:`map_chunks` runs one function over every shard on a
  ``concurrent.futures`` pool (thread- or process-backed, per
  :class:`~repro.config.ParallelConfig`) and returns the results **in
  submission order** — the merge is deterministic by construction, so
  parallel output is bit-for-bit identical to serial output;
* a shard that raises surfaces its exception to the caller (pending
  shards are cancelled) — there are no silent partial results.

Thread workers suit the latency-bound remote resources (simulated
network sleeps release the GIL); process workers suit CPU-bound local
extraction but require picklable extractors/resources.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

from .config import ParallelConfig

T = TypeVar("T")
R = TypeVar("R")

#: The serial default used when callers pass ``parallel=None``.
SERIAL = ParallelConfig(workers=1)


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _make_executor(config: ParallelConfig, job_count: int) -> Executor:
    workers = min(config.workers, job_count)
    if config.backend == "process":
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)


def map_chunks(
    fn: Callable[[list[T]], R],
    chunks: list[list[T]],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply ``fn`` to every chunk, results in submission order.

    With ``workers == 1`` (or a single chunk) this runs inline — the
    serial path and the parallel path execute the same code, which is
    what guarantees identical results.  The first chunk exception (in
    submission order) propagates; pending chunks are cancelled.
    """
    config = config or SERIAL
    if not config.enabled or len(chunks) <= 1:
        return [fn(chunk) for chunk in chunks]
    with _make_executor(config, len(chunks)) as pool:
        futures = [pool.submit(fn, chunk) for chunk in chunks]
        results: list[R] = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply a per-item function over a sharded work list, order kept.

    Convenience wrapper over :func:`map_chunks` for callers that do not
    need chunk-level state.  ``fn`` must be picklable for the process
    backend (a module-level function or :func:`functools.partial`).
    """
    config = config or SERIAL
    chunks = chunked(items, config.resolve_chunk_size(len(items)))
    merged: list[R] = []
    for chunk_result in map_chunks(_MapChunk(fn), chunks, config):
        merged.extend(chunk_result)
    return merged


class _MapChunk:
    """Picklable per-chunk adapter for :func:`parallel_map`."""

    def __init__(self, fn: Callable[[T], R]) -> None:
        self._fn = fn

    def __call__(self, chunk: Iterable[T]) -> list[R]:
        return [self._fn(item) for item in chunk]
