"""Batch execution engine: shard work, run a pool, merge deterministically.

The paper's efficiency study (Section V-D) shows that per-document term
extraction and per-term resource expansion dominate the pipeline cost
and are embarrassingly parallel over documents.  This module provides
the sharding machinery used by :func:`repro.core.annotate.annotate_database`
and :func:`repro.core.contextualize.contextualize`:

* :func:`chunked` splits a work list into fixed-size shards;
* :func:`map_chunks` runs one function over every shard on a
  ``concurrent.futures`` pool (thread- or process-backed, per
  :class:`~repro.config.ParallelConfig`) and returns the results **in
  submission order** — the merge is deterministic by construction, so
  parallel output is bit-for-bit identical to serial output;
* a shard that raises surfaces its exception to the caller (pending
  shards are cancelled) — there are no silent partial results.

Thread workers suit the latency-bound remote resources (simulated
network sleeps release the GIL); process workers suit CPU-bound local
extraction but require picklable extractors/resources.

Observability: when :func:`map_chunks` is handed an active
:class:`~repro.observability.Observability` bundle, every chunk runs
with its own **worker-local**
:class:`~repro.observability.MetricsRegistry` (pushed onto the thread's
context, so resource probes land in it) and under its own chunk
:class:`~repro.observability.Span`.  After the pool drains, chunk
registries are merged into the parent registry and chunk spans attached
to the calling stage span **in submission order** — aggregate metrics
and trace structure never depend on worker scheduling, and both survive
the process backend because the per-chunk bundle is pickled back with
the chunk result.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

from .config import ParallelConfig
from .observability import MetricsRegistry, Observability, Span
from .observability import context as obs_context

T = TypeVar("T")
R = TypeVar("R")

#: The serial default used when callers pass ``parallel=None``.
SERIAL = ParallelConfig(workers=1)


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _make_executor(
    config: ParallelConfig,
    job_count: int,
    initializer: Callable[[], None] | None = None,
) -> Executor:
    workers = min(config.workers, job_count)
    if config.backend == "process":
        return ProcessPoolExecutor(max_workers=workers, initializer=initializer)
    return ThreadPoolExecutor(max_workers=workers, initializer=initializer)


class _ChunkOutcome:
    """What an instrumented chunk sends back: result + its telemetry."""

    __slots__ = ("result", "span", "metrics")

    def __init__(self, result: object, span: Span, metrics: MetricsRegistry) -> None:
        self.result = result
        self.span = span
        self.metrics = metrics


class _InstrumentedChunk:
    """Picklable wrapper running one chunk under worker-local telemetry."""

    def __init__(self, fn: Callable[[list[T]], R], index: int) -> None:
        self._fn = fn
        self._index = index

    def __call__(self, chunk: list[T]) -> _ChunkOutcome:
        registry = MetricsRegistry()
        span = Span.begin("chunk", index=self._index, items=len(chunk))
        try:
            with obs_context.use_metrics(registry), obs_context.use_span(span):
                result = self._fn(chunk)
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.finish()
        return _ChunkOutcome(result, span, registry)


def _run_jobs(
    jobs: list[tuple[Callable[[list[T]], R], list[T]]],
    config: ParallelConfig,
    on_result: Callable[[R], None] | None = None,
    initializer: Callable[[], None] | None = None,
) -> list[R]:
    """Run ``(callable, chunk)`` jobs inline or pooled, submission order.

    ``on_result`` fires once per chunk **as it completes** (on a worker
    thread for pooled runs, inline for serial runs) — the hook the
    prefetch stage uses to start resolving a finished chunk's terms
    while later chunks are still running.  It must be cheap, thread-safe
    and side-effect-only: returned values are still merged in submission
    order regardless of completion order.

    ``initializer`` runs once in every pool worker before its first
    chunk (the columnar plane pre-attaches shared memory segments with
    it); inline runs skip it — it must be an optimization only, never a
    correctness requirement.
    """
    if not config.enabled or len(jobs) <= 1:
        results_inline: list[R] = []
        for job, chunk in jobs:
            result = job(chunk)
            if on_result is not None:
                on_result(result)
            results_inline.append(result)
        return results_inline
    with _make_executor(config, len(jobs), initializer=initializer) as pool:
        futures = []
        for job, chunk in jobs:
            future = pool.submit(job, chunk)
            if on_result is not None:
                future.add_done_callback(_notify_on_success(on_result))
            futures.append(future)
        results: list[R] = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    return results


def _notify_on_success(
    on_result: Callable[[R], None],
) -> Callable[[object], None]:
    """Done-callback adapter: forward successful results only."""

    def _done(future) -> None:
        if future.cancelled() or future.exception() is not None:
            return
        on_result(future.result())

    return _done


def map_chunks(
    fn: Callable[[list[T]], R],
    chunks: list[list[T]],
    config: ParallelConfig | None = None,
    obs: Observability | None = None,
    on_result: Callable[[R], None] | None = None,
    initializer: Callable[[], None] | None = None,
) -> list[R]:
    """Apply ``fn`` to every chunk, results in submission order.

    With ``workers == 1`` (or a single chunk) this runs inline — the
    serial path and the parallel path execute the same code, which is
    what guarantees identical results.  The first chunk exception (in
    submission order) propagates; pending chunks are cancelled.

    With an active ``obs`` bundle every chunk collects metrics into a
    worker-local registry and times itself into a chunk span; both are
    folded into the parent bundle in submission order after the pool
    drains (see the module docstring).  The serial path uses the same
    instrumented wrapper, so accounting is identical at any worker
    count.

    ``on_result`` receives each chunk's *result* (never the
    instrumentation wrapper) as the chunk completes — see
    :func:`_run_jobs` for the contract; ``initializer`` runs once per
    pool worker before its first chunk (same contract as
    :func:`_run_jobs`).
    """
    config = config or SERIAL
    if obs is None or not obs.active:
        return _run_jobs(
            [(fn, chunk) for chunk in chunks],
            config,
            on_result=on_result,
            initializer=initializer,
        )
    parent_span = obs.tracer.current()
    jobs = [
        (_InstrumentedChunk(fn, index), chunk)
        for index, chunk in enumerate(chunks)
    ]
    on_outcome: Callable[[_ChunkOutcome], None] | None = None
    if on_result is not None:
        notify = on_result

        def on_outcome(outcome: _ChunkOutcome) -> None:
            notify(outcome.result)  # type: ignore[arg-type]

    outcomes: list[_ChunkOutcome] = _run_jobs(
        jobs, config, on_result=on_outcome, initializer=initializer
    )
    results: list[R] = []
    for outcome in outcomes:
        if obs.metrics is not None:
            obs.metrics.merge(outcome.metrics)
        obs.tracer.attach(outcome.span, parent=parent_span)
        results.append(outcome.result)  # type: ignore[arg-type]
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: ParallelConfig | None = None,
) -> list[R]:
    """Apply a per-item function over a sharded work list, order kept.

    Convenience wrapper over :func:`map_chunks` for callers that do not
    need chunk-level state.  ``fn`` must be picklable for the process
    backend (a module-level function or :func:`functools.partial`).
    """
    config = config or SERIAL
    chunks = chunked(items, config.resolve_chunk_size(len(items)))
    merged: list[R] = []
    for chunk_result in map_chunks(_MapChunk(fn), chunks, config):
        merged.extend(chunk_result)
    return merged


class _MapChunk:
    """Picklable per-chunk adapter for :func:`parallel_map`."""

    def __init__(self, fn: Callable[[T], R]) -> None:
        self._fn = fn

    def __call__(self, chunk: Iterable[T]) -> list[R]:
        return [self._fn(item) for item in chunk]
