"""Incremental archive maintenance.

A news archive grows daily; the paper's deployment advice (Section V-D)
is to keep term and context extraction offline and recompute the cheap
facet statistics on demand.  :class:`FacetArchive` implements that
loop: documents are appended in batches, only the new batch is
annotated and expanded (resources memoize, so recurring terms cost
nothing), and facets/hierarchies are recomputed from the accumulated
statistics when asked.
"""

from __future__ import annotations

from ..corpus.document import Document
from ..errors import StorageError
from ..extractors.base import TermExtractor
from ..resources.base import ExternalResource
from ..text.tokenizer import normalize_term
from ..text.vocabulary import Vocabulary
from .annotate import AnnotatedDatabase, annotate_database
from .contextualize import ContextualizedDatabase
from .hierarchy import FacetHierarchy, build_facet_hierarchies
from .selection import FacetTermCandidate, select_facet_terms


class FacetArchive:
    """An append-only document archive with always-current facet state."""

    def __init__(
        self,
        extractors: list[TermExtractor],
        resources: list[ExternalResource],
        edge_validator=None,
    ) -> None:
        if not extractors:
            raise ValueError("FacetArchive needs at least one extractor")
        if not resources:
            raise ValueError("FacetArchive needs at least one resource")
        self._extractors = list(extractors)
        self._resources = list(resources)
        self._edge_validator = edge_validator
        self._documents: list[Document] = []
        self._doc_ids: set[str] = set()
        self._important: dict[str, list[str]] = {}
        self._term_sets: dict[str, set[str]] = {}
        self._expanded_sets: dict[str, set[str]] = {}
        self._context_terms: dict[str, list[str]] = {}
        self._original_vocab = Vocabulary()
        self._expanded_vocab = Vocabulary()

    # -- ingestion -----------------------------------------------------------

    def add_documents(self, documents: list[Document]) -> None:
        """Append a batch: annotate and expand only the new documents."""
        fresh = []
        for document in documents:
            if document.doc_id in self._doc_ids:
                raise StorageError(f"duplicate doc_id: {document.doc_id!r}")
            self._doc_ids.add(document.doc_id)
            fresh.append(document)
        if not fresh:
            return
        annotated = annotate_database(fresh, self._extractors)
        for document in fresh:
            doc_id = document.doc_id
            self._documents.append(document)
            self._important[doc_id] = annotated.important(doc_id)
            originals = annotated.term_sets[doc_id]
            self._term_sets[doc_id] = originals
            self._original_vocab.add_document(originals)
            context: list[str] = []
            seen: set[str] = set()
            for term in self._important[doc_id]:
                for resource in self._resources:
                    for context_term in resource.context_terms(term):
                        key = normalize_term(context_term)
                        if key and key not in seen:
                            seen.add(key)
                            context.append(context_term)
            self._context_terms[doc_id] = context
            expanded = set(originals) | seen
            self._expanded_sets[doc_id] = expanded
            self._expanded_vocab.add_document(expanded)

    # -- state accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._documents)

    @property
    def documents(self) -> list[Document]:
        return list(self._documents)

    def contextualized(self) -> ContextualizedDatabase:
        """A snapshot of the accumulated expanded database."""
        annotated = AnnotatedDatabase(
            documents=list(self._documents),
            important_terms=dict(self._important),
            vocabulary=self._original_vocab,
            term_sets=dict(self._term_sets),
        )
        return ContextualizedDatabase(
            annotated=annotated,
            context_terms=dict(self._context_terms),
            expanded_sets=dict(self._expanded_sets),
            vocabulary=self._expanded_vocab,
        )

    # -- facet state -------------------------------------------------------------------

    def facet_terms(self, top_k: int | None = 200) -> list[FacetTermCandidate]:
        """Current facet terms (Figure 3 over everything ingested)."""
        if not self._documents:
            return []
        return select_facet_terms(self.contextualized(), top_k=top_k)

    def hierarchies(self, top_k: int = 200) -> list[FacetHierarchy]:
        """Current facet hierarchies."""
        if not self._documents:
            return []
        database = self.contextualized()
        candidates = select_facet_terms(database, top_k=top_k)
        return build_facet_hierarchies(
            candidates, database, edge_validator=self._edge_validator
        )
