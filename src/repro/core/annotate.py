"""Step 1: identify important terms within each document (Figure 1).

For every document, each configured extractor contributes its important
terms ``E_i(d)``; their union is the document annotation ``I(d)``.  The
pass also records the original database's term statistics, which Step 3
compares against the contextualized database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..corpus.document import Document
from ..extractors.base import TermExtractor
from ..text.phrases import candidate_phrases
from ..text.stopwords import is_stopword
from ..text.tokenizer import normalize_term, word_tokens
from ..text.vocabulary import Vocabulary


def document_terms(document: Document) -> list[str]:
    """All countable terms of a document: words plus 2-3-word phrases.

    This is the "Extract all terms from d" of Figure 1; the same
    extraction is used on both the original and the contextualized
    database so their statistics are comparable.
    """
    words = [w for w in word_tokens(document.text) if not is_stopword(w)]
    phrases = candidate_phrases(document.text, max_words=3, include_unigrams=False)
    return words + phrases


@dataclass
class AnnotatedDatabase:
    """The original database plus per-document important terms."""

    documents: list[Document]
    important_terms: dict[str, list[str]]  # doc_id -> I(d)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    term_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original terms (for df computations)."""

    def important(self, doc_id: str) -> list[str]:
        """Important terms ``I(d)`` of one document."""
        return self.important_terms.get(doc_id, [])


def annotate_database(
    documents: list[Document],
    extractors: list[TermExtractor],
) -> AnnotatedDatabase:
    """Run Step 1 over a document collection.

    Every document is scanned once per extractor; the union of extractor
    outputs (deduplicated on normalized form) becomes ``I(d)``.
    """
    important: dict[str, list[str]] = {}
    vocabulary = Vocabulary()
    term_sets: dict[str, set[str]] = {}
    # First pass: corpus statistics, so that background-scored extractors
    # (the Yahoo stand-in) have idf available during extraction.
    for document in documents:
        terms = document_terms(document)
        normalized = [t for t in (normalize_term(t) for t in terms) if t]
        vocabulary.add_document(normalized)
        term_sets[document.doc_id] = set(normalized)
    for extractor in extractors:
        extractor.use_background(vocabulary)
    # Second pass: important-term extraction.
    for document in documents:
        merged: list[str] = []
        seen: set[str] = set()
        for extractor in extractors:
            for term in extractor.extract(document):
                key = normalize_term(term)
                if key and key not in seen:
                    seen.add(key)
                    merged.append(term)
        important[document.doc_id] = merged
    return AnnotatedDatabase(
        documents=list(documents),
        important_terms=important,
        vocabulary=vocabulary,
        term_sets=term_sets,
    )
