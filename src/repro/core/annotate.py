"""Step 1: identify important terms within each document (Figure 1).

For every document, each configured extractor contributes its important
terms ``E_i(d)``; their union is the document annotation ``I(d)``.  The
pass also records the original database's term statistics, which Step 3
compares against the contextualized database.

With ``ParallelConfig.columnar`` (the default) the pass runs on the
columnar data plane (:mod:`repro.core.columnar`): chunk workers memoize
the pure text functions, the statistics fold into an id-indexed
:class:`~repro.core.columnar.ColumnarVocabulary` plus per-document id
columns, and process-pool extraction reads the background statistics
from a shared read-only memory segment.  Output is byte-identical with
the plane on or off.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial

from ..config import ParallelConfig
from ..corpus.document import Document
from ..extractors.base import TermExtractor
from ..observability import Observability
from ..observability import names as obs_names
from ..observability.context import current_metrics
from ..parallel import chunked, map_chunks
from ..text.interning import (
    MemoizedChunk,
    TextMemo,
    active_memo,
    install_worker_memo,
    normalize_term,
    sentences,
    tokenize,
    use_text_memo,
)
from ..text.phrases import phrases_from_words
from ..text.stopwords import is_stopword
from ..text.vocabulary import TermInterner, Vocabulary
from .columnar import (
    ColumnarVocabulary,
    DocumentColumns,
    SharedVocabularyView,
    attach_segment,
    pack_vocabulary,
)


def document_terms(document: Document) -> list[str]:
    """All countable terms of a document: words plus 2-3-word phrases.

    This is the "Extract all terms from d" of Figure 1; the same
    extraction is used on both the original and the contextualized
    database so their statistics are comparable.

    The text is tokenized exactly once: the per-sentence token streams
    feed both the word list and the phrase n-grams.  (Sentence splitting
    only ever cuts at whitespace, which no token spans, so the
    concatenated per-sentence streams equal the whole-text stream.)
    """
    sentence_words = [
        [token.lower for token in tokenize(sentence)]
        for sentence in sentences(document.text)
    ]
    words = [
        word
        for sentence in sentence_words
        for word in sentence
        if not is_stopword(word)
    ]
    phrases: list[str] = []
    for sentence in sentence_words:
        phrases.extend(
            phrases_from_words(sentence, max_words=3, include_unigrams=False)
        )
    return words + phrases


@dataclass
class AnnotatedDatabase:
    """The original database plus per-document important terms."""

    documents: list[Document]
    important_terms: dict[str, list[str]]  # doc_id -> I(d)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    term_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original terms (for df computations)."""
    columns: DocumentColumns | None = None
    """Columnar view of per-document normalized term ids (columnar runs)."""

    def important(self, doc_id: str) -> list[str]:
        """Important terms ``I(d)`` of one document."""
        return self.important_terms.get(doc_id, [])


def _stats_chunk(documents: list[Document]) -> list[tuple[str, list[str]]]:
    """Per-chunk worker for the statistics pass: normalized terms per doc.

    Normalization routes through :mod:`repro.text.interning`, so under
    an active memo each distinct surface form pays the regex once per
    chunk.
    """
    out: list[tuple[str, list[str]]] = []
    for document in documents:
        terms = document_terms(document)
        normalized = [t for t in (normalize_term(t) for t in terms) if t]
        out.append((document.doc_id, normalized))
    return out


def _columnar_document_terms(document: Document, memo: TextMemo) -> list[str]:
    """:func:`document_terms` over memoized sentence columns.

    Emits the same list: per-sentence non-stopword lower-cased words
    (all sentences first), then per-sentence 2- and 3-gram phrases whose
    first and last words are non-stopwords — the exact
    :func:`~repro.text.phrases.phrases_from_words` sweep order, with the
    stopword predicate precomputed per token instead of re-evaluated per
    n-gram.  (``_valid_phrase``'s leading-digit rule only applies to
    unigrams, which this sweep never emits.)
    """
    words: list[str] = []
    phrases: list[str] = []
    append = phrases.append
    for sentence in memo.sentences(document.text):
        columns = memo.sentence_columns(sentence)
        lowers = columns.lowers
        stops = columns.stops
        words.extend(
            [lower for lower, stop in zip(lowers, stops) if not stop]
        )
        tail = lowers[1:]
        for a, b, stop_a, stop_b in zip(lowers, tail, stops, stops[1:]):
            if not stop_a and not stop_b:
                append(a + " " + b)
        for a, b, c, stop_a, stop_c in zip(
            lowers, tail, lowers[2:], stops, stops[2:]
        ):
            if not stop_a and not stop_c:
                append(a + " " + b + " " + c)
    return words + phrases


def _columnar_stats_chunk(
    documents: list[Document],
) -> list[tuple[str, list[str]]]:
    """Statistics worker of the columnar plane: no normalization pass.

    :func:`document_terms` emits lower-cased single tokens and
    space-joined lower-cased token n-grams — every one a fixed point of
    :func:`~repro.text.tokenizer.normalize_term`, because each token is
    a full match of the tokenizer's word regex (pinned by
    ``tests/test_columnar.py``).  Skipping the per-occurrence regex is
    the single biggest win of the columnar statistics pass; reading the
    tokens through :meth:`~repro.text.interning.TextMemo.sentence_columns`
    removes the per-token property churn on top.
    """
    memo = active_memo()
    if memo is None:  # pragma: no cover - workers always run under a memo
        return [
            (document.doc_id, document_terms(document))
            for document in documents
        ]
    return [
        (document.doc_id, _columnar_document_terms(document, memo))
        for document in documents
    ]


def merge_important(outputs: Iterable[list[str]]) -> list[str]:
    """Union per-extractor term lists into ``I(d)``, first-seen order.

    Deduplication is on the normalized form; the first surface form
    wins.  Shared by the batch annotation pass and the incremental
    pipeline (which re-merges cached per-extractor outputs), so the two
    paths cannot diverge.  Normalization routes through the interning
    layer: with an active memo each distinct surface normalizes once
    per chunk.
    """
    merged: list[str] = []
    seen: set[str] = set()
    for terms in outputs:
        for term in terms:
            key = normalize_term(term)
            if key and key not in seen:
                seen.add(key)
                merged.append(term)
    return merged


def _columnar_worker_init(segment_name: str | None = None) -> None:
    """Pool initializer for columnar runs: memo + optional segment.

    Arms the worker's persistent text memo and, when the extraction pass
    published the background vocabulary as a shared segment, pre-attaches
    it so the first chunk does not pay the attach.
    """
    install_worker_memo()
    if segment_name is not None:
        attach_segment(segment_name)


def _extract_chunk(
    extractors: list[TermExtractor], documents: list[Document]
) -> list[tuple[str, list[str]]]:
    """Per-chunk worker for the extraction pass: ``I(d)`` per doc."""
    out: list[tuple[str, list[str]]] = []
    for document in documents:
        merged = merge_important(
            extractor.extract(document) for extractor in extractors
        )
        out.append((document.doc_id, merged))
    return out


def annotate_database(
    documents: list[Document],
    extractors: list[TermExtractor],
    parallel: ParallelConfig | None = None,
    obs: Observability | None = None,
    on_important: Callable[[list[tuple[str, list[str]]]], None] | None = None,
) -> AnnotatedDatabase:
    """Run Step 1 over a document collection.

    Every document is scanned once per extractor; the union of extractor
    outputs (deduplicated on normalized form) becomes ``I(d)``.

    With ``parallel.workers > 1`` both passes are sharded over a worker
    pool; each document is processed by the same per-chunk code the
    serial path uses and the results are folded in document order, so
    the output is bit-for-bit identical at every worker count.

    With ``parallel.columnar`` the statistics fold into an id-indexed
    columnar vocabulary plus per-document id columns, chunk workers
    memoize the pure text functions, and a process-backed extraction
    pass reads the background statistics from a shared read-only
    segment (falling back to pickling when shared memory is
    unavailable).  All of it is representation only — the returned
    database is byte-identical to the dict-of-strings path.

    An active ``obs`` bundle records a chunk span per shard and
    per-chunk worker-local metrics (see :func:`repro.parallel.map_chunks`);
    instrumentation never touches the data path.

    ``on_important`` fires with each extraction chunk's
    ``(doc_id, I(d))`` list as the chunk completes (possibly on a worker
    thread) — the hook the pipeline uses to start prefetching resource
    answers for a chunk's terms while later chunks are still being
    tagged.  It must be side-effect-only; the returned database never
    depends on it.
    """
    settings = parallel or ParallelConfig(workers=1)
    chunk_size = settings.resolve_chunk_size(len(documents))
    chunks = chunked(documents, max(1, chunk_size))
    use_columnar = settings.columnar
    # First pass: corpus statistics, so that background-scored extractors
    # (the Yahoo stand-in) have idf available during extraction.
    columns: DocumentColumns | None = None
    columnar_vocabulary: ColumnarVocabulary | None = None
    if use_columnar:
        interner = TermInterner()
        columnar_vocabulary = ColumnarVocabulary(interner)
        columns = DocumentColumns(interner)
        vocabulary: Vocabulary = columnar_vocabulary
        stats_worker: Callable[
            [list[Document]], list[tuple[str, list[str]]]
        ] = MemoizedChunk(_columnar_stats_chunk)
    else:
        vocabulary = Vocabulary()
        stats_worker = _stats_chunk
    # Memo placement: an inline run shares one memo across both passes
    # (a document tokenized for statistics is still cached during
    # extraction) and normalizes through the *vocabulary* interner, so
    # every surface form the extractors resolve is already memoized when
    # contextualization probes the same table.  A pooled run arms one
    # persistent memo per worker via the pool initializer instead.
    run_memo = (
        use_text_memo(TextMemo(interner))
        if use_columnar and not settings.enabled
        else nullcontext()
    )
    pool_initializer = (
        install_worker_memo if use_columnar and settings.enabled else None
    )
    term_sets: dict[str, set[str]] = {}
    with run_memo:
        for chunk_result in map_chunks(
            stats_worker, chunks, parallel, obs=obs, initializer=pool_initializer
        ):
            for doc_id, normalized in chunk_result:
                if columnar_vocabulary is not None and columns is not None:
                    ids = columns.add_document(doc_id, normalized)
                    columnar_vocabulary.add_document_ids(ids)
                else:
                    vocabulary.add_document(normalized)
                term_sets[doc_id] = set(normalized)
        for extractor in extractors:
            extractor.use_background(vocabulary)
        important = _extract_pass(
            extractors,
            vocabulary,
            chunks,
            settings,
            parallel,
            obs,
            on_important,
            use_columnar,
            pool_initializer,
        )
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("annotate.documents", len(documents))
        metrics.increment(
            "annotate.important_terms",
            # order: summing ints is order-insensitive
            sum(len(terms) for terms in important.values()),
        )
        metrics.gauge("annotate.vocabulary_size", len(vocabulary))
        if use_columnar and columns is not None:
            metrics.gauge(
                obs_names.COLUMNAR_INTERNED_TERMS, len(columns.interner)
            )
    return AnnotatedDatabase(
        documents=list(documents),
        important_terms=important,
        vocabulary=vocabulary,
        term_sets=term_sets,
        columns=columns,
    )


def _extract_pass(
    extractors: list[TermExtractor],
    vocabulary: Vocabulary,
    chunks: list[list[Document]],
    settings: ParallelConfig,
    parallel: ParallelConfig | None,
    obs: Observability | None,
    on_important: Callable[[list[tuple[str, list[str]]]], None] | None,
    use_columnar: bool,
    pool_initializer: Callable[[], None] | None,
) -> dict[str, list[str]]:
    """The second annotation pass: important-term extraction."""
    # Second pass: important-term extraction.  A columnar process-backed
    # run publishes the statistics as a shared read-only segment and
    # rebinds adopted backgrounds to a view of it, so workers attach
    # instead of unpickling the term table; the real vocabulary is
    # restored afterwards.
    metrics = current_metrics()
    segment = None
    initializer = pool_initializer
    if (
        use_columnar
        and settings.backend == "process"
        and settings.enabled
        and len(chunks) > 1
    ):
        segment = pack_vocabulary(vocabulary)
        if segment is not None:
            view = SharedVocabularyView(segment.name)
            for extractor in extractors:
                extractor.rebind_background(view)
            initializer = partial(_columnar_worker_init, segment.name)
            if metrics is not None:
                metrics.increment(obs_names.COLUMNAR_SHARED_SEGMENTS)
                metrics.increment(
                    obs_names.COLUMNAR_SHARED_SEGMENT_BYTES, segment.size
                )
        elif metrics is not None:
            metrics.increment(obs_names.COLUMNAR_PICKLE_FALLBACKS)
    important: dict[str, list[str]] = {}
    extract = partial(_extract_chunk, extractors)
    if use_columnar:
        extract = MemoizedChunk(extract)
    try:
        for chunk_result in map_chunks(
            extract,
            chunks,
            parallel,
            obs=obs,
            on_result=on_important,
            initializer=initializer,
        ):
            for doc_id, merged in chunk_result:
                important[doc_id] = merged
    finally:
        if segment is not None:
            for extractor in extractors:
                extractor.rebind_background(vocabulary)
            segment.unlink()
    return important
