"""Step 1: identify important terms within each document (Figure 1).

For every document, each configured extractor contributes its important
terms ``E_i(d)``; their union is the document annotation ``I(d)``.  The
pass also records the original database's term statistics, which Step 3
compares against the contextualized database.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from functools import partial

from ..config import ParallelConfig
from ..corpus.document import Document
from ..extractors.base import TermExtractor
from ..observability import Observability
from ..observability.context import current_metrics
from ..parallel import chunked, map_chunks
from ..text.phrases import candidate_phrases
from ..text.stopwords import is_stopword
from ..text.tokenizer import normalize_term, word_tokens
from ..text.vocabulary import Vocabulary


def document_terms(document: Document) -> list[str]:
    """All countable terms of a document: words plus 2-3-word phrases.

    This is the "Extract all terms from d" of Figure 1; the same
    extraction is used on both the original and the contextualized
    database so their statistics are comparable.
    """
    words = [w for w in word_tokens(document.text) if not is_stopword(w)]
    phrases = candidate_phrases(document.text, max_words=3, include_unigrams=False)
    return words + phrases


@dataclass
class AnnotatedDatabase:
    """The original database plus per-document important terms."""

    documents: list[Document]
    important_terms: dict[str, list[str]]  # doc_id -> I(d)
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    term_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original terms (for df computations)."""

    def important(self, doc_id: str) -> list[str]:
        """Important terms ``I(d)`` of one document."""
        return self.important_terms.get(doc_id, [])


def _stats_chunk(documents: list[Document]) -> list[tuple[str, list[str]]]:
    """Per-chunk worker for the statistics pass: normalized terms per doc."""
    out: list[tuple[str, list[str]]] = []
    for document in documents:
        terms = document_terms(document)
        normalized = [t for t in (normalize_term(t) for t in terms) if t]
        out.append((document.doc_id, normalized))
    return out


def merge_important(outputs: Iterable[list[str]]) -> list[str]:
    """Union per-extractor term lists into ``I(d)``, first-seen order.

    Deduplication is on the normalized form; the first surface form
    wins.  Shared by the batch annotation pass and the incremental
    pipeline (which re-merges cached per-extractor outputs), so the two
    paths cannot diverge.
    """
    merged: list[str] = []
    seen: set[str] = set()
    for terms in outputs:
        for term in terms:
            key = normalize_term(term)
            if key and key not in seen:
                seen.add(key)
                merged.append(term)
    return merged


def _extract_chunk(
    extractors: list[TermExtractor], documents: list[Document]
) -> list[tuple[str, list[str]]]:
    """Per-chunk worker for the extraction pass: ``I(d)`` per doc."""
    out: list[tuple[str, list[str]]] = []
    for document in documents:
        merged = merge_important(
            extractor.extract(document) for extractor in extractors
        )
        out.append((document.doc_id, merged))
    return out


def annotate_database(
    documents: list[Document],
    extractors: list[TermExtractor],
    parallel: ParallelConfig | None = None,
    obs: Observability | None = None,
    on_important: Callable[[list[tuple[str, list[str]]]], None] | None = None,
) -> AnnotatedDatabase:
    """Run Step 1 over a document collection.

    Every document is scanned once per extractor; the union of extractor
    outputs (deduplicated on normalized form) becomes ``I(d)``.

    With ``parallel.workers > 1`` both passes are sharded over a worker
    pool; each document is processed by the same per-chunk code the
    serial path uses and the results are folded in document order, so
    the output is bit-for-bit identical at every worker count.

    An active ``obs`` bundle records a chunk span per shard and
    per-chunk worker-local metrics (see :func:`repro.parallel.map_chunks`);
    instrumentation never touches the data path.

    ``on_important`` fires with each extraction chunk's
    ``(doc_id, I(d))`` list as the chunk completes (possibly on a worker
    thread) — the hook the pipeline uses to start prefetching resource
    answers for a chunk's terms while later chunks are still being
    tagged.  It must be side-effect-only; the returned database never
    depends on it.
    """
    chunk_size = (parallel or ParallelConfig(workers=1)).resolve_chunk_size(
        len(documents)
    )
    chunks = chunked(documents, max(1, chunk_size))
    # First pass: corpus statistics, so that background-scored extractors
    # (the Yahoo stand-in) have idf available during extraction.
    vocabulary = Vocabulary()
    term_sets: dict[str, set[str]] = {}
    for chunk_result in map_chunks(_stats_chunk, chunks, parallel, obs=obs):
        for doc_id, normalized in chunk_result:
            vocabulary.add_document(normalized)
            term_sets[doc_id] = set(normalized)
    for extractor in extractors:
        extractor.use_background(vocabulary)
    # Second pass: important-term extraction.
    important: dict[str, list[str]] = {}
    extract = partial(_extract_chunk, extractors)
    for chunk_result in map_chunks(
        extract, chunks, parallel, obs=obs, on_result=on_important
    ):
        for doc_id, merged in chunk_result:
            important[doc_id] = merged
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("annotate.documents", len(documents))
        metrics.increment(
            "annotate.important_terms",
            # order: summing ints is order-insensitive
            sum(len(terms) for terms in important.values()),
        )
        metrics.gauge("annotate.vocabulary_size", len(vocabulary))
    return AnnotatedDatabase(
        documents=list(documents),
        important_terms=important,
        vocabulary=vocabulary,
        term_sets=term_sets,
    )
