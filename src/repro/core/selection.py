"""Step 3: select facet terms by comparative frequency analysis (Figure 3).

A term qualifies as a candidate when both shift functions are positive;
candidates are ranked by the log-likelihood statistic and the top-k are
returned as ``Facet(D)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..observability.context import current_metrics
from .columnar import ColumnarVocabulary, columnar_candidate_ids
from .contextualize import ContextualizedDatabase
from .likelihood import LikelihoodTables
from .shifts import ShiftTables

#: Default number of facet terms returned (the paper's top-k).
DEFAULT_TOP_K = 200


@dataclass(frozen=True)
class FacetTermCandidate:
    """One selected facet term with its full statistics."""

    term: str
    df_original: int
    df_contextualized: int
    shift_f: int
    shift_r: int
    score: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.term} (df {self.df_original} -> {self.df_contextualized}, "
            f"score {self.score:.1f})"
        )


def select_facet_terms(
    database: ContextualizedDatabase,
    top_k: int | None = DEFAULT_TOP_K,
    statistic: str = "log-likelihood",
    require_both_shifts: bool = True,
) -> list[FacetTermCandidate]:
    """Run the Figure 3 selection.

    Parameters
    ----------
    database:
        Output of :func:`repro.core.contextualize.contextualize`.
    top_k:
        Number of facet terms to return, ranked by the statistic; None
        returns every candidate that passes the shift tests (used by the
        recall study — the paper's recall is not top-k-capped, only the
        judged hierarchies are).
    statistic:
        ``"log-likelihood"`` (the paper's choice) or ``"chi-square"``
        (for the ablation study).
    require_both_shifts:
        When False, only the frequency shift is required to be positive
        (rank-shift ablation).
    """
    if top_k is not None and top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    if statistic not in ("log-likelihood", "chi-square"):
        raise ValueError(f"unknown statistic: {statistic!r}")
    original = database.annotated.vocabulary
    contextualized = database.vocabulary
    n = max(len(database.annotated.documents), 1)

    # One pass over the vocabulary against precomputed tables: df/rank
    # maps plus a rank → bin array (ShiftTables) and per-(df, df_C)
    # memoized scores over shared log terms (LikelihoodTables).  Scores
    # and shifts are bit-for-bit identical to the per-term reference
    # functions — see those classes.
    shifts = ShiftTables(original, contextualized)
    tables = LikelihoodTables(n)
    score_of = (
        tables.log_likelihood_ratio
        if statistic == "log-likelihood"
        else tables.chi_square
    )
    candidates: list[FacetTermCandidate] = []
    # Columnar fast path: run the shift pretest as vectorized integer
    # comparisons over the shared id space, then score only the
    # survivors.  The ids come back in the order the scalar loop visits
    # terms, and every quantity is an integer derived from the same
    # columns, so both paths build the identical candidate list.
    candidate_ids = None
    if isinstance(original, ColumnarVocabulary) and isinstance(
        contextualized, ColumnarVocabulary
    ):
        candidate_ids = columnar_candidate_ids(
            original,
            contextualized,
            require_both_shifts,
            shifts.bins_original,
            shifts.bins_contextualized,
        )
    if candidate_ids is not None:
        terms_by_id = original.interner.terms()
        term_iter = (terms_by_id[term_id] for term_id in candidate_ids)
    else:
        term_iter = iter(contextualized.terms())
    for term in term_iter:
        df = shifts.df_original(term)
        df_c = shifts.df_contextualized(term)
        shift_f = df_c - df
        if shift_f <= 0:
            continue
        shift_r = shifts.rank_shift(term)
        if require_both_shifts and shift_r <= 0:
            continue
        score = score_of(df, df_c)
        candidates.append(
            FacetTermCandidate(
                term=term,
                df_original=df,
                df_contextualized=df_c,
                shift_f=shift_f,
                shift_r=shift_r,
                score=score,
            )
        )
    candidates.sort(key=lambda c: (-c.score, c.term))
    selected = candidates if top_k is None else candidates[:top_k]
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("selection.terms_considered", len(contextualized))
        metrics.increment("selection.candidates", len(candidates))
        metrics.increment("selection.selected", len(selected))
    return selected
