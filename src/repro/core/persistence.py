"""Persist offline expansion artifacts.

The Section V-D deployment performs term and context extraction offline;
the artifacts must therefore survive the process that computed them.
:func:`save_expansions` writes a contextualized database (important
terms, original term sets, context terms) to SQLite;
:func:`load_expansions` restores it against a document store, ready for
:class:`~repro.core.dynamic.DynamicFaceter` or facet selection without
re-running extractors or resources.
"""

from __future__ import annotations

import sqlite3

from ..corpus.document import Document
from ..errors import StorageError
from ..text.vocabulary import Vocabulary
from .annotate import AnnotatedDatabase
from .contextualize import ContextualizedDatabase

_SCHEMA = """
CREATE TABLE IF NOT EXISTS important_terms (
    doc_id TEXT NOT NULL,
    pos    INTEGER NOT NULL,
    term   TEXT NOT NULL,
    PRIMARY KEY (doc_id, pos)
);
CREATE TABLE IF NOT EXISTS original_terms (
    doc_id TEXT NOT NULL,
    term   TEXT NOT NULL,
    PRIMARY KEY (doc_id, term)
);
CREATE TABLE IF NOT EXISTS context_terms (
    doc_id TEXT NOT NULL,
    pos    INTEGER NOT NULL,
    term   TEXT NOT NULL,
    PRIMARY KEY (doc_id, pos)
);
"""


def save_expansions(database: ContextualizedDatabase, path: str) -> None:
    """Write a contextualized database's per-document artifacts."""
    connection = sqlite3.connect(path)
    try:
        with connection:
            connection.executescript(_SCHEMA)
            connection.execute("DELETE FROM important_terms")
            connection.execute("DELETE FROM original_terms")
            connection.execute("DELETE FROM context_terms")
            annotated = database.annotated
            connection.executemany(
                "INSERT INTO important_terms VALUES (?,?,?)",
                [
                    (doc_id, pos, term)
                    for doc_id, terms in annotated.important_terms.items()
                    for pos, term in enumerate(terms)
                ],
            )
            connection.executemany(
                "INSERT INTO original_terms VALUES (?,?)",
                [
                    # Sorted: term_sets holds sets, and iterating them
                    # directly would make row order (and therefore the
                    # database bytes) vary run to run.
                    (doc_id, term)
                    for doc_id, terms in annotated.term_sets.items()
                    for term in sorted(terms)
                ],
            )
            connection.executemany(
                "INSERT INTO context_terms VALUES (?,?,?)",
                [
                    (doc_id, pos, term)
                    for doc_id, terms in database.context_terms.items()
                    for pos, term in enumerate(terms)
                ],
            )
    finally:
        connection.close()


def load_expansions(
    documents: list[Document], path: str
) -> ContextualizedDatabase:
    """Rebuild a contextualized database from :func:`save_expansions`.

    ``documents`` supplies the document objects (typically loaded from a
    :class:`~repro.db.store.DocumentStore`); artifacts for unknown
    doc_ids are ignored, and documents without artifacts contribute
    empty sets.
    """
    from ..text.tokenizer import normalize_term

    connection = sqlite3.connect(path)
    try:
        important_rows = connection.execute(
            "SELECT doc_id, pos, term FROM important_terms ORDER BY doc_id, pos"
        ).fetchall()
        original_rows = connection.execute(
            "SELECT doc_id, term FROM original_terms"
        ).fetchall()
        context_rows = connection.execute(
            "SELECT doc_id, pos, term FROM context_terms ORDER BY doc_id, pos"
        ).fetchall()
    except sqlite3.DatabaseError as exc:
        raise StorageError(f"cannot read expansions at {path!r}") from exc
    finally:
        connection.close()

    known = {doc.doc_id for doc in documents}
    important: dict[str, list[str]] = {doc_id: [] for doc_id in sorted(known)}
    term_sets: dict[str, set[str]] = {doc_id: set() for doc_id in sorted(known)}
    context_terms: dict[str, list[str]] = {doc_id: [] for doc_id in sorted(known)}
    for doc_id, _pos, term in important_rows:
        if doc_id in known:
            important[doc_id].append(term)
    for doc_id, term in original_rows:
        if doc_id in known:
            term_sets[doc_id].add(term)
    for doc_id, _pos, term in context_rows:
        if doc_id in known:
            context_terms[doc_id].append(term)

    original_vocab = Vocabulary()
    expanded_vocab = Vocabulary()
    expanded_sets: dict[str, set[str]] = {}
    for document in documents:
        doc_id = document.doc_id
        originals = term_sets[doc_id]
        original_vocab.add_document(originals)
        expanded = set(originals)
        expanded.update(
            key
            for key in (normalize_term(t) for t in context_terms[doc_id])
            if key
        )
        expanded_sets[doc_id] = expanded
        expanded_vocab.add_document(expanded)

    annotated = AnnotatedDatabase(
        documents=list(documents),
        important_terms=important,
        vocabulary=original_vocab,
        term_sets=term_sets,
    )
    return ContextualizedDatabase(
        annotated=annotated,
        context_terms=context_terms,
        expanded_sets=expanded_sets,
        vocabulary=expanded_vocab,
    )
