"""Dynamic faceting over query results (Section V-D deployment mode).

"We can generate facet hierarchies over the complete database and
dynamically over a set of lengthy query results": with term and context
extraction performed offline (the resources memoize per-term answers),
computing facets for a result set costs only the Figure 3 statistics and
a small subsumption run — "a few seconds and almost independent of the
collection size".

:class:`DynamicFaceter` holds the offline artifacts (annotated +
contextualized database for the whole collection) and derives facet
hierarchies for any subset of documents on demand.
"""

from __future__ import annotations

from ..corpus.document import Document
from ..text.vocabulary import Vocabulary
from .annotate import AnnotatedDatabase
from .contextualize import ContextualizedDatabase
from .hierarchy import FacetHierarchy, build_facet_hierarchies
from .selection import FacetTermCandidate, select_facet_terms


class DynamicFaceter:
    """Facets for arbitrary document subsets, from offline expansions."""

    def __init__(
        self,
        contextualized: ContextualizedDatabase,
        top_k: int = 60,
        edge_validator=None,
    ) -> None:
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        self._full = contextualized
        self._top_k = top_k
        self._edge_validator = edge_validator
        self._documents = {
            doc.doc_id: doc for doc in contextualized.annotated.documents
        }

    def _subset_database(self, doc_ids: list[str]) -> ContextualizedDatabase:
        """A contextualized database restricted to ``doc_ids``.

        Reuses the offline per-document term sets — no re-extraction and
        no resource queries happen here.
        """
        documents: list[Document] = []
        original_vocab = Vocabulary()
        expanded_vocab = Vocabulary()
        term_sets: dict[str, set[str]] = {}
        expanded_sets: dict[str, set[str]] = {}
        context_terms: dict[str, list[str]] = {}
        important: dict[str, list[str]] = {}
        for doc_id in doc_ids:
            document = self._documents.get(doc_id)
            if document is None:
                continue
            documents.append(document)
            originals = self._full.annotated.term_sets.get(doc_id, set())
            expanded = self._full.expanded_sets.get(doc_id, set())
            term_sets[doc_id] = originals
            expanded_sets[doc_id] = expanded
            context_terms[doc_id] = self._full.context(doc_id)
            important[doc_id] = self._full.annotated.important(doc_id)
            original_vocab.add_document(originals)
            expanded_vocab.add_document(expanded)
        annotated = AnnotatedDatabase(
            documents=documents,
            important_terms=important,
            vocabulary=original_vocab,
            term_sets=term_sets,
        )
        return ContextualizedDatabase(
            annotated=annotated,
            context_terms=context_terms,
            expanded_sets=expanded_sets,
            vocabulary=expanded_vocab,
        )

    def facet_terms(self, doc_ids: list[str]) -> list[FacetTermCandidate]:
        """Facet terms for a result set (Figure 3 over the subset)."""
        subset = self._subset_database(doc_ids)
        if not subset.annotated.documents:
            return []
        return select_facet_terms(subset, top_k=self._top_k)

    def facets_for(self, doc_ids: list[str]) -> list[FacetHierarchy]:
        """Facet hierarchies for a result set."""
        subset = self._subset_database(doc_ids)
        if not subset.annotated.documents:
            return []
        candidates = select_facet_terms(subset, top_k=self._top_k)
        return build_facet_hierarchies(
            candidates, subset, edge_validator=self._edge_validator
        )

    def facets_for_query(
        self, interface, query: str, limit: int = 200
    ) -> list[FacetHierarchy]:
        """Convenience: facets over the results of a keyword query."""
        hits = interface.search(query, limit=limit)
        return self.facets_for([doc.doc_id for doc in hits])
