"""Edge evidence for hierarchy construction.

Pure subsumption over the *expanded* database over-attaches: any term
that always co-occurs with another passes the P(x|y) test, even when
the pair is semantically unrelated (a side effect of context expansion
the original Sanderson-Croft setting does not have).  Following the
paper's own pointer to evidence-combination taxonomy induction (Snow et
al., cited as the better alternative), :class:`LinkEvidence` validates a
candidate parent-child edge against independent signals:

* a Wikipedia link between the two pages (either direction), or
* a hypernym relation in the WordNet lexicon.

Edges without supporting evidence are rejected; the child becomes a
root instead of attaching to a spurious parent.
"""

from __future__ import annotations

from ..wikipedia.database import WikipediaDatabase
from ..wordnet.hypernyms import HypernymLookup
from ..text.tokenizer import normalize_term


class LinkEvidence:
    """Callable edge validator combining Wikipedia and WordNet signals."""

    def __init__(
        self,
        wikipedia: WikipediaDatabase | None = None,
        lexicon: HypernymLookup | None = None,
    ) -> None:
        self._wikipedia = wikipedia
        self._lexicon = lexicon

    def _linked(self, child: str, parent: str) -> bool:
        if self._wikipedia is None:
            return False
        child_title = self._wikipedia.resolve(child)
        parent_title = self._wikipedia.resolve(parent)
        if child_title is None or parent_title is None:
            return False
        if parent_title in self._wikipedia.out_links(child_title):
            return True
        return child_title in self._wikipedia.out_links(parent_title)

    def _hypernym(self, child: str, parent: str) -> bool:
        if self._lexicon is None:
            return False
        child_n = normalize_term(child)
        if " " in child_n:
            return False
        parent_key = normalize_term(parent)
        return any(
            normalize_term(h) == parent_key
            for h in self._lexicon.hypernyms(child_n)
        )

    def __call__(self, child: str, parent: str) -> bool:
        """True when independent evidence supports ``child -> parent``."""
        return self._linked(child, parent) or self._hypernym(child, parent)
