"""The OLAP-style faceted browsing interface.

"A faceted interface can be perceived as an OLAP-style cube over the
text documents" (Section I).  This layer combines the extracted facet
hierarchies with keyword search: users drill down facet nodes (slice),
combine constraints across facets (dice), and intersect with BM25
keyword results — the interaction pattern measured in the user study
(Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..corpus.document import Document
from ..db.inverted_index import InvertedIndex
from ..db.search import BM25Searcher
from ..db.store import DocumentStore
from ..errors import HierarchyError
from ..text.tokenizer import normalize_term
from .hierarchy import FacetHierarchy, FacetNode


@dataclass(frozen=True)
class FacetCount:
    """A facet node with its document count (for display)."""

    term: str
    count: int
    depth: int


class FacetedInterface:
    """Browse a document collection through extracted facet hierarchies."""

    def __init__(
        self,
        store: DocumentStore,
        facets: list[FacetHierarchy],
        index: InvertedIndex | None = None,
    ) -> None:
        self._store = store
        self._facets = list(facets)
        if index is None:
            index = InvertedIndex()
            index.add_documents(list(store))
        self._index = index
        self._searcher = BM25Searcher(index)
        self._nodes: dict[str, FacetNode] = {}
        for facet in self._facets:
            for node in facet.root.walk():
                self._nodes.setdefault(normalize_term(node.term), node)

    # -- facet navigation --------------------------------------------------------

    @property
    def facets(self) -> list[FacetHierarchy]:
        """The top-level facets."""
        return list(self._facets)

    def facet_names(self) -> list[str]:
        return [facet.name for facet in self._facets]

    def node(self, term: str) -> FacetNode:
        """Locate a facet node by term."""
        node = self._nodes.get(normalize_term(term))
        if node is None:
            raise HierarchyError(f"no facet node for term: {term!r}")
        return node

    def has_node(self, term: str) -> bool:
        return normalize_term(term) in self._nodes

    def children(self, term: str) -> list[FacetCount]:
        """Child nodes of a facet node, with counts (drill-down view)."""
        node = self.node(term)
        return [
            FacetCount(child.term, child.count, depth=0)
            for child in node.children
        ]

    def top_level_counts(self) -> list[FacetCount]:
        """The facet roots with document counts (the sidebar view)."""
        return [
            FacetCount(facet.root.term, facet.root.count, depth=0)
            for facet in self._facets
        ]

    # -- OLAP-style selection ------------------------------------------------------

    def slice(self, term: str) -> list[Document]:
        """Documents under one facet node."""
        node = self.node(term)
        return [self._store.get(doc_id) for doc_id in sorted(node.doc_ids)]

    def dice(self, terms: list[str]) -> list[Document]:
        """Documents satisfying *all* facet constraints (cube dice)."""
        if not terms:
            return list(self._store)
        doc_ids: set[str] | None = None
        for term in terms:
            node_docs = self.node(term).doc_ids
            doc_ids = node_docs.copy() if doc_ids is None else doc_ids & node_docs
        return [self._store.get(doc_id) for doc_id in sorted(doc_ids or set())]

    def union(self, terms: list[str]) -> list[Document]:
        """Documents under *any* of the facet nodes (multi-select within
        a facet, e.g. "France or Germany")."""
        doc_ids: set[str] = set()
        for term in terms:
            doc_ids |= self.node(term).doc_ids
        return [self._store.get(doc_id) for doc_id in sorted(doc_ids)]

    def breadcrumb(self, term: str) -> list[str]:
        """Root-to-node trail of a facet node (for display)."""
        key = normalize_term(term)
        for facet in self._facets:
            trail: list[str] = []

            def descend(node: FacetNode, path: list[str]) -> list[str] | None:
                current = path + [node.term]
                if normalize_term(node.term) == key:
                    return current
                for child in node.children:
                    found = descend(child, current)
                    if found:
                        return found
                return None

            found = descend(facet.root, trail)
            if found:
                return found
        raise HierarchyError(f"no facet node for term: {term!r}")

    # -- search integration -------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[Document]:
        """Plain BM25 keyword search."""
        return [
            self._store.get(result.doc_id)
            for result in self._searcher.search(query, limit=limit)
        ]

    def search_with_facets(
        self, query: str, facet_terms: list[str], limit: int = 10
    ) -> list[Document]:
        """Keyword search restricted to documents matching facet constraints."""
        allowed: set[str] | None = None
        if facet_terms:
            allowed = {doc.doc_id for doc in self.dice(facet_terms)}
        results = []
        for result in self._searcher.search(query, limit=limit * 10):
            if allowed is None or result.doc_id in allowed:
                results.append(self._store.get(result.doc_id))
                if len(results) >= limit:
                    break
        return results

    def facet_counts_for(
        self, doc_ids: set[str], max_facets: int = 10
    ) -> list[FacetCount]:
        """Per-facet counts restricted to a result set (dynamic faceting
        over lengthy query results, as the paper proposes)."""
        counts = []
        for facet in self._facets:
            overlap = len(facet.root.doc_ids & doc_ids)
            if overlap:
                counts.append(FacetCount(facet.root.term, overlap, depth=0))
        counts.sort(key=lambda fc: (-fc.count, fc.term))
        return counts[:max_facets]
