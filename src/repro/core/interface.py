"""The OLAP-style faceted browsing interface.

"A faceted interface can be perceived as an OLAP-style cube over the
text documents" (Section I).  This layer combines the extracted facet
hierarchies with keyword search: users drill down facet nodes (slice),
combine constraints across facets (dice), and intersect with BM25
keyword results — the interaction pattern measured in the user study
(Section V-E).

Two implementations share this query surface:

* :class:`FacetedInterface` (here) answers from in-memory objects —
  the right backend inside a pipeline run or a notebook;
* :class:`repro.serving.FacetIndex` answers the same queries from a
  read-only SQLite artifact built once with ``FacetIndex.build`` and
  opened in O(1), which is what the HTTP service serves from.

Both return identical values for identical queries (certified by the
artifact round-trip tests), so callers can swap backends freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..corpus.document import Document
from ..db.inverted_index import InvertedIndex
from ..db.search import BM25Searcher
from ..db.store import DocumentStore
from ..errors import HierarchyError
from ..text.tokenizer import normalize_term
from .hierarchy import FacetHierarchy, FacetNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pipeline import FacetExtractionResult


@dataclass(frozen=True)
class FacetCount:
    """A facet node with its document count and tree depth (for display)."""

    term: str
    count: int
    depth: int


class FacetedInterface:
    """Browse a document collection through extracted facet hierarchies.

    Construction is keyword-only: ``FacetedInterface(store=..., facets=...)``
    with an optional prebuilt inverted ``index`` (built from the store's
    documents when omitted).  For the common cases use
    :meth:`from_result` (wrap a pipeline run) or
    :meth:`repro.serving.FacetIndex.open` (serve a prebuilt artifact).
    """

    def __init__(
        self,
        *,
        store: DocumentStore,
        facets: list[FacetHierarchy],
        index: InvertedIndex | None = None,
    ) -> None:
        self._store = store
        self._facets = list(facets)
        if index is None:
            index = InvertedIndex()
            index.add_documents(list(store))
        self._index = index
        self._searcher = BM25Searcher(index)
        self._nodes: dict[str, FacetNode] = {}
        self._depths: dict[str, int] = {}
        for facet in self._facets:
            for node, depth in _walk_with_depth(facet.root):
                key = normalize_term(node.term)
                if key not in self._nodes:
                    self._nodes[key] = node
                    self._depths[key] = depth

    @classmethod
    def from_result(
        cls,
        result: "FacetExtractionResult",
        *,
        store: DocumentStore | None = None,
    ) -> "FacetedInterface":
        """The in-memory interface over a pipeline run.

        Reuses, in order of preference: an explicitly passed store, the
        store the run was fed from (``result.store``), or a store built
        on first call and cached on the result — repeated calls never
        silently rebuild document storage or the inverted index.
        """
        if store is None:
            store = result.store
        if store is None:
            if result._built_store is None:
                result._built_store = DocumentStore(result.documents)
            store = result._built_store
        if result._built_index is None:
            index = InvertedIndex()
            index.add_documents(result.documents)
            result._built_index = index
        return cls(store=store, facets=result.hierarchies, index=result._built_index)

    # -- facet navigation --------------------------------------------------------

    @property
    def facets(self) -> list[FacetHierarchy]:
        """The top-level facets."""
        return list(self._facets)

    def facet_names(self) -> list[str]:
        return [facet.name for facet in self._facets]

    def node(self, term: str) -> FacetNode:
        """Locate a facet node by term."""
        node = self._nodes.get(normalize_term(term))
        if node is None:
            raise HierarchyError(f"no facet node for term: {term!r}")
        return node

    def has_node(self, term: str) -> bool:
        return normalize_term(term) in self._nodes

    def depth(self, term: str) -> int:
        """Tree depth of a facet node (roots are depth 0)."""
        key = normalize_term(term)
        if key not in self._depths:
            raise HierarchyError(f"no facet node for term: {term!r}")
        return self._depths[key]

    def children(self, term: str) -> list[FacetCount]:
        """Child nodes of a facet node, with counts (drill-down view)."""
        node = self.node(term)
        child_depth = self.depth(term) + 1
        return [
            FacetCount(child.term, child.count, depth=child_depth)
            for child in node.children
        ]

    def top_level_counts(self) -> list[FacetCount]:
        """The facet roots with document counts (the sidebar view)."""
        return [
            FacetCount(facet.root.term, facet.root.count, depth=0)
            for facet in self._facets
        ]

    # -- documents ----------------------------------------------------------------

    @property
    def document_count(self) -> int:
        """Number of documents in the collection."""
        return len(self._store)

    def document(self, doc_id: str) -> Document:
        """Fetch one document by id (:class:`StorageError` when unknown)."""
        return self._store.get(doc_id)

    # -- OLAP-style selection ------------------------------------------------------

    def slice(self, term: str) -> list[Document]:
        """Documents under one facet node."""
        node = self.node(term)
        return [self._store.get(doc_id) for doc_id in sorted(node.doc_ids)]

    def dice(self, terms: list[str]) -> list[Document]:
        """Documents satisfying *all* facet constraints (cube dice)."""
        if not terms:
            return list(self._store)
        doc_ids: set[str] | None = None
        for term in terms:
            node_docs = self.node(term).doc_ids
            doc_ids = node_docs.copy() if doc_ids is None else doc_ids & node_docs
        return [self._store.get(doc_id) for doc_id in sorted(doc_ids or set())]

    def union(self, terms: list[str]) -> list[Document]:
        """Documents under *any* of the facet nodes (multi-select within
        a facet, e.g. "France or Germany")."""
        doc_ids: set[str] = set()
        for term in terms:
            doc_ids |= self.node(term).doc_ids
        return [self._store.get(doc_id) for doc_id in sorted(doc_ids)]

    def breadcrumb(self, term: str) -> list[str]:
        """Root-to-node trail of a facet node (for display)."""
        key = normalize_term(term)
        for facet in self._facets:
            trail: list[str] = []

            def descend(node: FacetNode, path: list[str]) -> list[str] | None:
                current = path + [node.term]
                if normalize_term(node.term) == key:
                    return current
                for child in node.children:
                    found = descend(child, current)
                    if found:
                        return found
                return None

            found = descend(facet.root, trail)
            if found:
                return found
        raise HierarchyError(f"no facet node for term: {term!r}")

    # -- search integration -------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[Document]:
        """Plain BM25 keyword search."""
        return [
            self._store.get(result.doc_id)
            for result in self._searcher.search(query, limit=limit)
        ]

    def search_with_facets(
        self, query: str, facet_terms: list[str], limit: int = 10
    ) -> list[Document]:
        """Keyword search restricted to documents matching facet constraints."""
        allowed: set[str] | None = None
        if facet_terms:
            allowed = {doc.doc_id for doc in self.dice(facet_terms)}
        results = []
        for result in self._searcher.search(query, limit=limit * 10):
            if allowed is None or result.doc_id in allowed:
                results.append(self._store.get(result.doc_id))
                if len(results) >= limit:
                    break
        return results

    def facet_counts_for(
        self, doc_ids: set[str], max_facets: int = 10
    ) -> list[FacetCount]:
        """Per-facet counts restricted to a result set (dynamic faceting
        over lengthy query results, as the paper proposes)."""
        counts = []
        for facet in self._facets:
            overlap = len(facet.root.doc_ids & doc_ids)
            if overlap:
                counts.append(FacetCount(facet.root.term, overlap, depth=0))
        counts.sort(key=lambda fc: (-fc.count, fc.term))
        return counts[:max_facets]


def _walk_with_depth(root: FacetNode, depth: int = 0):
    """Pre-order traversal yielding ``(node, depth)`` pairs."""
    yield root, depth
    for child in root.children:
        yield from _walk_with_depth(child, depth + 1)
