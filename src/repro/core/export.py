"""Export extracted facet hierarchies for downstream systems.

A faceted interface usually lives in a UI layer or an OLAP tool (the
paper: "our tools can be seamlessly integrated with current OLAP
systems").  This module serializes a facet forest three ways:

* :func:`to_dict` / :func:`to_json` — nested structures for APIs,
* :func:`to_text_tree` — an indented tree for terminals and logs,
* :func:`to_flat_rows` — ``(facet, path, term, count)`` rows, the shape
  an OLAP dimension table ingests.
"""

from __future__ import annotations

import json

from .hierarchy import FacetHierarchy, FacetNode


def to_dict(hierarchies: list[FacetHierarchy], include_docs: bool = False) -> list[dict]:
    """Nested dict form of a facet forest."""

    def node_dict(node: FacetNode) -> dict:
        data: dict = {"term": node.term, "count": node.count}
        if include_docs:
            data["doc_ids"] = sorted(node.doc_ids)
        if node.children:
            data["children"] = [node_dict(child) for child in node.children]
        return data

    return [node_dict(h.root) for h in hierarchies]


def to_json(
    hierarchies: list[FacetHierarchy],
    include_docs: bool = False,
    indent: int | None = 2,
) -> str:
    """JSON form of a facet forest."""
    return json.dumps(to_dict(hierarchies, include_docs=include_docs), indent=indent)


def to_text_tree(hierarchies: list[FacetHierarchy], max_facets: int | None = None) -> str:
    """Indented text rendering (for terminals)."""
    lines: list[str] = []

    def walk(node: FacetNode, depth: int) -> None:
        prefix = "  " * depth + ("- " if depth else "")
        lines.append(f"{prefix}{node.term} ({node.count})")
        for child in node.children:
            walk(child, depth + 1)

    selected = hierarchies if max_facets is None else hierarchies[:max_facets]
    for hierarchy in selected:
        walk(hierarchy.root, 0)
    return "\n".join(lines)


def to_flat_rows(
    hierarchies: list[FacetHierarchy],
) -> list[tuple[str, str, str, int]]:
    """``(facet, path, term, count)`` rows — an OLAP dimension table.

    ``path`` is the ``/``-joined route from the facet root to the term
    (inclusive), so rows can rebuild the tree or feed a drill-down UI.
    """
    rows: list[tuple[str, str, str, int]] = []

    def walk(node: FacetNode, facet: str, prefix: list[str]) -> None:
        path = prefix + [node.term]
        rows.append((facet, "/".join(path), node.term, node.count))
        for child in node.children:
            walk(child, facet, path)

    for hierarchy in hierarchies:
        walk(hierarchy.root, hierarchy.name, [])
    return rows


def from_dict(data: list[dict]) -> list[FacetHierarchy]:
    """Rebuild a facet forest from :func:`to_dict` output."""

    def build(entry: dict) -> FacetNode:
        node = FacetNode(
            term=entry["term"],
            doc_ids=set(entry.get("doc_ids", ())),
        )
        for child_entry in entry.get("children", ()):
            node.children.append(build(child_entry))
        if not entry.get("doc_ids"):
            for child in node.children:
                node.doc_ids.update(child.doc_ids)
        return node

    return [FacetHierarchy(root=build(entry)) for entry in data]
