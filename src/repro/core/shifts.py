"""The two shift functions of Section IV-C.

* **Frequency-based shifting**: ``Shift_f(t) = df_C(t) - df(t)``.
  Simple, but Zipfian frequencies make it favour terms that were already
  frequent in the original database.
* **Rank-based shifting**: terms are assigned to logarithmic bins
  ``B(t) = ceil(log2(Rank(t)))``; ``Shift_r(t) = B_D(t) - B_C(t)``
  is positive when the term moved up (to a lower-numbered bin) in the
  contextualized database.

A term is a candidate facet term only when **both** shifts are positive.

The per-term functions (:func:`frequency_shift`, :func:`rank_shift`)
remain the reference implementation; :class:`ShiftTables` precomputes
the same quantities for a whole vocabulary pair in one pass — direct
df/rank map references plus a rank → bin array, so the selection stage's
hot loop does dict lookups and integer subtractions only.  Both paths
produce identical integers by construction (the bin array is filled by
calling :func:`repro.text.zipf.rank_bin` itself).
"""

from __future__ import annotations

from ..text.vocabulary import Vocabulary
from ..text.zipf import rank_bin


def frequency_shift(term: str, original: Vocabulary, contextualized: Vocabulary) -> int:
    """``Shift_f(t) = df_C(t) - df(t)``."""
    return contextualized.df(term) - original.df(term)


def rank_shift(term: str, original: Vocabulary, contextualized: Vocabulary) -> int:
    """``Shift_r(t) = B_D(t) - B_C(t)`` with logarithmic rank bins.

    A term absent from a database ranks below every present term, which
    places it in the deepest bin — so terms that only exist after
    expansion get a strongly positive rank shift.
    """
    bin_original = rank_bin(original.rank(term))
    bin_contextualized = rank_bin(contextualized.rank(term))
    return bin_original - bin_contextualized


def is_shift_candidate(
    term: str, original: Vocabulary, contextualized: Vocabulary
) -> bool:
    """Both shifts strictly positive — the Figure 3 candidate test."""
    if frequency_shift(term, original, contextualized) <= 0:
        return False
    return rank_shift(term, original, contextualized) > 0


def _bins_by_rank(max_rank: int) -> list[int]:
    """``B(r)`` for every rank ``1..max_rank``, indexable by rank.

    Index 0 is a placeholder (ranks are 1-based).  Filled with
    :func:`rank_bin` itself so the array agrees with the per-term path
    bit for bit — including any float quirks of ``ceil(log2(r))``.
    """
    return [0] + [rank_bin(rank) for rank in range(1, max_rank + 1)]


class ShiftTables:
    """Whole-vocabulary shift statistics, precomputed once.

    Built from a fully-populated vocabulary pair; the selection stage
    then evaluates ``Shift_f``/``Shift_r`` and reads df values with
    dictionary lookups only — no per-term log/ceil calls.
    """

    __slots__ = (
        "_df_original",
        "_df_contextualized",
        "_ranks_original",
        "_ranks_contextualized",
        "_unknown_original",
        "_unknown_contextualized",
        "_bins_original",
        "_bins_contextualized",
    )

    def __init__(self, original: Vocabulary, contextualized: Vocabulary) -> None:
        # On the columnar plane these maps are zero-copy views over the
        # vocabularies' id-indexed columns (ColumnarCountMap /
        # ColumnarRankMap) — same Mapping contract, no dict rebuild.
        self._df_original = original.df_map()
        self._df_contextualized = contextualized.df_map()
        self._ranks_original = original.rank_map()
        self._ranks_contextualized = contextualized.rank_map()
        # Unknown terms rank below every known term (Vocabulary.rank).
        self._unknown_original = len(original) + 1
        self._unknown_contextualized = len(contextualized) + 1
        self._bins_original = _bins_by_rank(self._unknown_original)
        self._bins_contextualized = _bins_by_rank(self._unknown_contextualized)

    @property
    def bins_original(self) -> list[int]:
        """``B(r)`` by rank for the original database (index 0 unused)."""
        return self._bins_original

    @property
    def bins_contextualized(self) -> list[int]:
        """``B(r)`` by rank for the contextualized database."""
        return self._bins_contextualized

    def df_original(self, term: str) -> int:
        """``df(t)`` in the original database."""
        return self._df_original.get(term, 0)

    def df_contextualized(self, term: str) -> int:
        """``df_C(t)`` in the contextualized database."""
        return self._df_contextualized.get(term, 0)

    def frequency_shift(self, term: str) -> int:
        """``Shift_f(t)``, identical to :func:`frequency_shift`."""
        return self.df_contextualized(term) - self.df_original(term)

    def rank_shift(self, term: str) -> int:
        """``Shift_r(t)``, identical to :func:`rank_shift`."""
        bin_original = self._bins_original[
            self._ranks_original.get(term, self._unknown_original)
        ]
        bin_contextualized = self._bins_contextualized[
            self._ranks_contextualized.get(term, self._unknown_contextualized)
        ]
        return bin_original - bin_contextualized
