"""The two shift functions of Section IV-C.

* **Frequency-based shifting**: ``Shift_f(t) = df_C(t) - df(t)``.
  Simple, but Zipfian frequencies make it favour terms that were already
  frequent in the original database.
* **Rank-based shifting**: terms are assigned to logarithmic bins
  ``B(t) = ceil(log2(Rank(t)))``; ``Shift_r(t) = B_D(t) - B_C(t)``
  is positive when the term moved up (to a lower-numbered bin) in the
  contextualized database.

A term is a candidate facet term only when **both** shifts are positive.
"""

from __future__ import annotations

from ..text.vocabulary import Vocabulary
from ..text.zipf import rank_bin


def frequency_shift(term: str, original: Vocabulary, contextualized: Vocabulary) -> int:
    """``Shift_f(t) = df_C(t) - df(t)``."""
    return contextualized.df(term) - original.df(term)


def rank_shift(term: str, original: Vocabulary, contextualized: Vocabulary) -> int:
    """``Shift_r(t) = B_D(t) - B_C(t)`` with logarithmic rank bins.

    A term absent from a database ranks below every present term, which
    places it in the deepest bin — so terms that only exist after
    expansion get a strongly positive rank shift.
    """
    bin_original = rank_bin(original.rank(term))
    bin_contextualized = rank_bin(contextualized.rank(term))
    return bin_original - bin_contextualized


def is_shift_candidate(
    term: str, original: Vocabulary, contextualized: Vocabulary
) -> bool:
    """Both shifts strictly positive — the Figure 3 candidate test."""
    if frequency_shift(term, original, contextualized) <= 0:
        return False
    return rank_shift(term, original, contextualized) > 0
