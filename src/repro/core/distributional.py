"""Distributional comparison of the original and expanded collections.

The paper situates its method in distributional analysis (Section VI):
Lee's (ACL 1999) *skew divergence* identifies asymmetric substitutability
("fruit" can approximate "apple" but not vice versa), and the shift/LLR
machinery of Section IV-C is one instance of comparing two collections'
term distributions.  This module supplies the general tools:

* :func:`kl_divergence` and :func:`skew_divergence` over term
  distributions,
* :func:`collection_distribution` — a term's probability distribution in
  a collection,
* :func:`divergence_scores` — an alternative facet-term scorer that
  ranks terms by their contribution to the divergence between the
  expanded and the original database (used by the scoring ablation).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from ..text.vocabulary import Vocabulary
from .columnar import ColumnarVocabulary

#: Lee's alpha: skew divergence is KL(p || a*q + (1-a)*p).
DEFAULT_ALPHA = 0.99


def collection_distribution(vocabulary: Vocabulary) -> dict[str, float]:
    """Document-frequency distribution of a collection's terms."""
    if isinstance(vocabulary, ColumnarVocabulary):
        # Columnar fast path: one scan of the df column instead of one
        # id lookup per term.  Same integer sum, same divisions, and
        # nonzero-id order equals terms() order — identical dict.
        df = vocabulary.df_column()
        terms = vocabulary.interner.terms()
        total = sum(df)
        if total == 0:
            return {}
        return {
            terms[term_id]: df[term_id] / total
            for term_id in range(len(df))
            if df[term_id]
        }
    total = sum(vocabulary.df(term) for term in vocabulary.terms())
    if total == 0:
        return {}
    return {
        term: vocabulary.df(term) / total for term in vocabulary.terms()
    }


def kl_divergence(
    p: Mapping[str, float], q: Mapping[str, float], epsilon: float = 1e-12
) -> float:
    """``KL(p || q)`` with epsilon-smoothing for q's zeros."""
    divergence = 0.0
    for term, p_value in p.items():
        if p_value <= 0:
            continue
        q_value = q.get(term, 0.0)
        divergence += p_value * math.log(p_value / max(q_value, epsilon))
    return divergence


def skew_divergence(
    p: Mapping[str, float],
    q: Mapping[str, float],
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Lee's skew divergence ``s_alpha(p, q) = KL(p || a*q + (1-a)*p)``.

    Asymmetric by design — exactly the property the paper highlights
    ("fruit" approximates "apple" but not vice versa).
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    mixed = {}
    for term in sorted(set(p) | set(q)):
        mixed[term] = alpha * q.get(term, 0.0) + (1 - alpha) * p.get(term, 0.0)
    return kl_divergence(p, mixed)


def divergence_scores(
    original: Vocabulary, contextualized: Vocabulary
) -> dict[str, float]:
    """Per-term contribution to ``KL(contextualized || original)``.

    Terms whose probability grew after expansion contribute positively;
    ranking by this score is an alternative to the paper's LLR ranking
    (compared in the scoring ablation benchmark).
    """
    p = collection_distribution(contextualized)
    q = collection_distribution(original)
    scores: dict[str, float] = {}
    for term, p_value in p.items():
        if p_value <= 0:
            continue
        q_value = max(q.get(term, 0.0), 1e-12)
        contribution = p_value * math.log(p_value / q_value)
        if contribution > 0:
            scores[term] = contribution
    return scores
