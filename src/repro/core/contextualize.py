"""Step 2: expand documents with context terms (Figure 2).

Each important term of each document is sent to every external resource;
the union of returned context terms ``C(d)`` augments the document.  The
contextualized database keeps, per document, the original terms plus the
context terms — the input to the comparative analysis of Step 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from ..config import ParallelConfig
from ..observability import Observability
from ..observability.context import current_metrics
from ..parallel import chunked, map_chunks
from ..resources.base import ExternalResource
from ..text.tokenizer import normalize_term
from ..text.vocabulary import Vocabulary
from .annotate import AnnotatedDatabase


@dataclass
class ContextualizedDatabase:
    """The expanded database ``C(D)``."""

    annotated: AnnotatedDatabase
    context_terms: dict[str, list[str]]  # doc_id -> C(d) (surface forms)
    expanded_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original + context terms."""
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    """Term statistics of the contextualized database."""

    def context(self, doc_id: str) -> list[str]:
        """Context terms ``C(d)`` of one document."""
        return self.context_terms.get(doc_id, [])


def _expand_chunk(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Per-chunk worker: expand ``(doc_id, I(d))`` into
    ``(doc_id, C(d) surface forms, normalized keys in first-seen order)``."""
    out: list[tuple[str, list[str], list[str]]] = []
    for doc_id, important in items:
        merged: list[str] = []
        seen_keys: list[str] = []
        seen: set[str] = set()
        for term in important:
            for resource in resources:
                for context_term in resource.context_terms(term):
                    key = normalize_term(context_term)
                    if key and key not in seen:
                        seen.add(key)
                        seen_keys.append(key)
                        merged.append(context_term)
        out.append((doc_id, merged, seen_keys))
    return out


def contextualize(
    annotated: AnnotatedDatabase,
    resources: list[ExternalResource],
    parallel: ParallelConfig | None = None,
    obs: Observability | None = None,
) -> ContextualizedDatabase:
    """Run Step 2: query every resource with every important term.

    Resources memoize per-term answers, so cost scales with the number
    of *distinct* important terms, not with corpus size — this is what
    makes the offline-expansion deployment of Section V-D practical.

    With ``parallel.workers > 1`` documents are sharded over a worker
    pool; the shared two-tier resource cache means each distinct term is
    still (normally) answered once per run.  Per-document results are
    folded in document order, so the contextualized database is
    bit-for-bit identical at every worker count.
    """
    work: list[tuple[str, list[str]]] = [
        (document.doc_id, annotated.important(document.doc_id))
        for document in annotated.documents
    ]
    chunk_size = (parallel or ParallelConfig(workers=1)).resolve_chunk_size(len(work))
    chunks = chunked(work, max(1, chunk_size))
    expand = partial(_expand_chunk, resources)
    context_terms: dict[str, list[str]] = {}
    expanded_sets: dict[str, set[str]] = {}
    vocabulary = Vocabulary()
    for chunk_result in map_chunks(expand, chunks, parallel, obs=obs):
        for doc_id, merged, seen_keys in chunk_result:
            context_terms[doc_id] = merged
            expanded = set(annotated.term_sets.get(doc_id, set()))
            expanded.update(seen_keys)
            expanded_sets[doc_id] = expanded
            vocabulary.add_document(expanded)
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("contextualize.documents", len(work))
        metrics.increment(
            "contextualize.context_terms",
            # order: summing ints is order-insensitive
            sum(len(terms) for terms in context_terms.values()),
        )
        metrics.gauge("contextualize.vocabulary_size", len(vocabulary))
    return ContextualizedDatabase(
        annotated=annotated,
        context_terms=context_terms,
        expanded_sets=expanded_sets,
        vocabulary=vocabulary,
    )
