"""Step 2: expand documents with context terms (Figure 2).

Each important term of each document is sent to every external resource;
the union of returned context terms ``C(d)`` augments the document.  The
contextualized database keeps, per document, the original terms plus the
context terms — the input to the comparative analysis of Step 3.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from functools import partial

from ..config import ParallelConfig
from ..observability import Observability
from ..observability.context import current_metrics
from ..parallel import chunked, map_chunks
from ..resources.base import ExternalResource
from ..text.tokenizer import normalize_term
from ..text.vocabulary import Vocabulary
from .annotate import AnnotatedDatabase


@dataclass
class ContextualizedDatabase:
    """The expanded database ``C(D)``."""

    annotated: AnnotatedDatabase
    context_terms: dict[str, list[str]]  # doc_id -> C(d) (surface forms)
    expanded_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original + context terms."""
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    """Term statistics of the contextualized database."""

    def context(self, doc_id: str) -> list[str]:
        """Context terms ``C(d)`` of one document."""
        return self.context_terms.get(doc_id, [])


def _merge_document(
    important: list[str],
    answers_for: Callable[[str], Iterable[list[str]]],
) -> tuple[list[str], list[str]]:
    """Union per-resource answers for one document, first-seen order.

    Shared by the per-term and batched expansion paths — both feed the
    same merge, so switching paths cannot change the output.
    """
    merged: list[str] = []
    seen_keys: list[str] = []
    seen: set[str] = set()
    for term in important:
        for answer in answers_for(term):
            for context_term in answer:
                key = normalize_term(context_term)
                if key and key not in seen:
                    seen.add(key)
                    seen_keys.append(key)
                    merged.append(context_term)
    return merged, seen_keys


def _expand_chunk(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Per-chunk worker: expand ``(doc_id, I(d))`` into
    ``(doc_id, C(d) surface forms, normalized keys in first-seen order)``.

    Baseline path: one resource round trip per (term, resource) pair.
    """
    out: list[tuple[str, list[str], list[str]]] = []
    for doc_id, important in items:
        merged, seen_keys = _merge_document(
            important,
            lambda term: (resource.context_terms(term) for resource in resources),
        )
        out.append((doc_id, merged, seen_keys))
    return out


def _expand_chunk_batched(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Batched per-chunk worker: one deduplicated batch per resource.

    The chunk's distinct important terms (first-seen surface form per
    normalized key) are answered with a single
    :meth:`~repro.resources.base.ExternalResource.context_terms_many`
    call per resource — bulk backend lookups, batched persistent-cache
    I/O, and single-flight coalescing across concurrent chunks — then
    per-document merges run through the same helper as the per-term
    path, so the output is bit-for-bit identical.
    """
    ordered_terms: list[str] = []
    known_keys: set[str] = set()
    for _doc_id, important in items:
        for term in important:
            key = normalize_term(term)
            if key and key not in known_keys:
                known_keys.add(key)
                ordered_terms.append(term)
    answer_tables: list[dict[str, list[str]]] = []
    for resource in resources:
        batch = resource.context_terms_many(ordered_terms)
        answer_tables.append(
            {
                normalize_term(term): answer
                for term, answer in zip(ordered_terms, batch)
            }
        )

    def answers_for(term: str) -> Iterable[list[str]]:
        key = normalize_term(term)
        return (table.get(key, []) for table in answer_tables)

    out: list[tuple[str, list[str], list[str]]] = []
    for doc_id, important in items:
        merged, seen_keys = _merge_document(important, answers_for)
        out.append((doc_id, merged, seen_keys))
    return out


def expand_items(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Public batched expansion of ``(doc_id, I(d))`` work items.

    The incremental pipeline expands only new/dirty documents through
    this entry point — the same worker the batch pipeline runs per
    chunk, so both produce identical ``(C(d), seen-key)`` payloads.
    """
    return _expand_chunk_batched(resources, items)


def contextualize(
    annotated: AnnotatedDatabase,
    resources: list[ExternalResource],
    parallel: ParallelConfig | None = None,
    obs: Observability | None = None,
) -> ContextualizedDatabase:
    """Run Step 2: query every resource with every important term.

    Resources memoize per-term answers, so cost scales with the number
    of *distinct* important terms, not with corpus size — this is what
    makes the offline-expansion deployment of Section V-D practical.

    With ``parallel.workers > 1`` documents are sharded over a worker
    pool; the shared two-tier resource cache means each distinct term is
    still (normally) answered once per run.  Per-document results are
    folded in document order, so the contextualized database is
    bit-for-bit identical at every worker count.

    With ``parallel.batch_queries`` (the default) each chunk resolves
    its distinct important terms through one deduplicated batch per
    resource instead of one round trip per term; the per-term path
    remains available as the benchmark baseline and produces identical
    output.
    """
    work: list[tuple[str, list[str]]] = [
        (document.doc_id, annotated.important(document.doc_id))
        for document in annotated.documents
    ]
    settings = parallel or ParallelConfig(workers=1)
    chunk_size = settings.resolve_chunk_size(len(work))
    chunks = chunked(work, max(1, chunk_size))
    worker = _expand_chunk_batched if settings.batch_queries else _expand_chunk
    expand = partial(worker, resources)
    context_terms: dict[str, list[str]] = {}
    expanded_sets: dict[str, set[str]] = {}
    vocabulary = Vocabulary()
    for chunk_result in map_chunks(expand, chunks, parallel, obs=obs):
        for doc_id, merged, seen_keys in chunk_result:
            context_terms[doc_id] = merged
            expanded = set(annotated.term_sets.get(doc_id, set()))
            expanded.update(seen_keys)
            expanded_sets[doc_id] = expanded
            vocabulary.add_document(expanded)
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("contextualize.documents", len(work))
        metrics.increment(
            "contextualize.context_terms",
            # order: summing ints is order-insensitive
            sum(len(terms) for terms in context_terms.values()),
        )
        metrics.gauge("contextualize.vocabulary_size", len(vocabulary))
    return ContextualizedDatabase(
        annotated=annotated,
        context_terms=context_terms,
        expanded_sets=expanded_sets,
        vocabulary=vocabulary,
    )
