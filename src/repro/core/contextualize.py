"""Step 2: expand documents with context terms (Figure 2).

Each important term of each document is sent to every external resource;
the union of returned context terms ``C(d)`` augments the document.  The
contextualized database keeps, per document, the original terms plus the
context terms — the input to the comparative analysis of Step 3.

With ``ParallelConfig.columnar`` (and batched queries, the default) the
expansion runs on the columnar data plane: the run's distinct important
terms are resolved once (one batch per resource per term shard), every
answer is normalized and interned once, and the per-document merges
become integer set operations over precomputed ``(surface, key-id)``
contribution lists.  Output is byte-identical to the per-chunk path.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from functools import partial

from ..config import ParallelConfig
from ..observability import Observability
from ..observability.context import current_metrics
from ..parallel import chunked, map_chunks
from ..resources.base import ExternalResource
from ..text.interning import MemoizedChunk, install_worker_memo, normalize_term
from ..text.vocabulary import TermInterner, Vocabulary
from .annotate import AnnotatedDatabase
from .columnar import ColumnarVocabulary, DocumentColumns


@dataclass
class ContextualizedDatabase:
    """The expanded database ``C(D)``."""

    annotated: AnnotatedDatabase
    context_terms: dict[str, list[str]]  # doc_id -> C(d) (surface forms)
    expanded_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original + context terms."""
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    """Term statistics of the contextualized database."""
    columns: DocumentColumns | None = None
    """Columnar view of per-document expanded term ids (columnar runs)."""

    def context(self, doc_id: str) -> list[str]:
        """Context terms ``C(d)`` of one document."""
        return self.context_terms.get(doc_id, [])


def _merge_document(
    important: list[str],
    answers_for: Callable[[str], Iterable[list[str]]],
) -> tuple[list[str], list[str]]:
    """Union per-resource answers for one document, first-seen order.

    Shared by the per-term and batched expansion paths — both feed the
    same merge, so switching paths cannot change the output.
    """
    merged: list[str] = []
    seen_keys: list[str] = []
    seen: set[str] = set()
    for term in important:
        for answer in answers_for(term):
            for context_term in answer:
                key = normalize_term(context_term)
                if key and key not in seen:
                    seen.add(key)
                    seen_keys.append(key)
                    merged.append(context_term)
    return merged, seen_keys


def _expand_chunk(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Per-chunk worker: expand ``(doc_id, I(d))`` into
    ``(doc_id, C(d) surface forms, normalized keys in first-seen order)``.

    Baseline path: one resource round trip per (term, resource) pair.
    """
    out: list[tuple[str, list[str], list[str]]] = []
    for doc_id, important in items:
        merged, seen_keys = _merge_document(
            important,
            lambda term: (resource.context_terms(term) for resource in resources),
        )
        out.append((doc_id, merged, seen_keys))
    return out


def _expand_chunk_batched(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Batched per-chunk worker: one deduplicated batch per resource.

    The chunk's distinct important terms (first-seen surface form per
    normalized key) are answered with a single
    :meth:`~repro.resources.base.ExternalResource.context_terms_many`
    call per resource — bulk backend lookups, batched persistent-cache
    I/O, and single-flight coalescing across concurrent chunks — then
    per-document merges run through the same helper as the per-term
    path, so the output is bit-for-bit identical.
    """
    ordered_terms: list[str] = []
    known_keys: set[str] = set()
    for _doc_id, important in items:
        for term in important:
            key = normalize_term(term)
            if key and key not in known_keys:
                known_keys.add(key)
                ordered_terms.append(term)
    answer_tables: list[dict[str, list[str]]] = []
    for resource in resources:
        batch = resource.context_terms_many(ordered_terms)
        answer_tables.append(
            {
                normalize_term(term): answer
                for term, answer in zip(ordered_terms, batch)
            }
        )

    def answers_for(term: str) -> Iterable[list[str]]:
        key = normalize_term(term)
        return (table.get(key, []) for table in answer_tables)

    out: list[tuple[str, list[str], list[str]]] = []
    for doc_id, important in items:
        merged, seen_keys = _merge_document(important, answers_for)
        out.append((doc_id, merged, seen_keys))
    return out


def expand_items(
    resources: list[ExternalResource],
    items: list[tuple[str, list[str]]],
) -> list[tuple[str, list[str], list[str]]]:
    """Public batched expansion of ``(doc_id, I(d))`` work items.

    The incremental pipeline expands only new/dirty documents through
    this entry point — the same worker the batch pipeline runs per
    chunk, so both produce identical ``(C(d), seen-key)`` payloads.
    """
    return _expand_chunk_batched(resources, items)


def _resolve_chunk(
    resources: list[ExternalResource], terms: list[str]
) -> list[list[list[str]]]:
    """Columnar phase-A worker: per-resource batched answers for a shard
    of the run's distinct important terms."""
    return [resource.context_terms_many(terms) for resource in resources]


#: Shared empty contribution list for keys no resource answered.
_NO_PAIRS: tuple[tuple[str, int], ...] = ()


def _contextualize_columnar(
    annotated: AnnotatedDatabase,
    resources: list[ExternalResource],
    work: list[tuple[str, list[str]]],
    settings: ParallelConfig,
    parallel: ParallelConfig | None,
    obs: Observability | None,
) -> ContextualizedDatabase:
    """Columnar expansion: resolve the run's distinct terms once, then
    merge per document with integer set operations.

    Produces exactly what the per-chunk batched path produces: resource
    answers are keyed by normalized term (chunking-invariant, certified
    by the worker-count equivalence tests), contribution lists preserve
    resource order and answer order, and the per-document first-seen
    filter is the same — only executed over interned ids.
    """
    interner = (
        annotated.columns.interner
        if annotated.columns is not None
        else TermInterner()
    )
    # Phase A: the run's distinct important terms, first surface per key.
    # Per-document key-id lists are kept (dropping empty normalizations)
    # so phase B never re-probes the surface → id table.
    ordered_terms: list[str] = []
    key_ids: list[int] = []
    known: set[int] = set()
    kids_per_doc: list[list[int]] = []
    for _doc_id, important in work:
        doc_kids: list[int] = []
        for term, kid in zip(important, interner.normalized_ids(important)):
            if kid < 0:
                continue
            doc_kids.append(kid)
            if kid not in known:
                known.add(kid)
                ordered_terms.append(term)
                key_ids.append(kid)
        kids_per_doc.append(doc_kids)
    term_chunks = (
        chunked(
            ordered_terms,
            max(1, settings.resolve_chunk_size(len(ordered_terms))),
        )
        if ordered_terms
        else []
    )
    resolve: Callable[[list[str]], list[list[list[str]]]] = MemoizedChunk(
        partial(_resolve_chunk, resources)
    )
    per_resource: list[list[list[str]]] = [[] for _ in resources]
    for chunk_answers in map_chunks(
        resolve,
        term_chunks,
        parallel,
        obs=obs,
        initializer=install_worker_memo if settings.enabled else None,
    ):
        for r_index, answers in enumerate(chunk_answers):
            per_resource[r_index].extend(answers)
    # Contribution lists: per key id, the (surface, key id) pairs its
    # answers add, in resource order then answer order — each answer
    # term normalized and interned exactly once per run.
    pairs: dict[int, list[tuple[str, int]]] = {}
    for position, kid in enumerate(key_ids):
        contributions: list[tuple[str, int]] = []
        for answers in per_resource:
            answer = answers[position]
            contributions.extend(
                (context_term, context_kid)
                for context_term, context_kid in zip(
                    answer, interner.normalized_ids(answer)
                )
                if context_kid >= 0
            )
        if contributions:
            pairs[kid] = contributions
    # Phase B: per-document merges (first-seen over ids) and statistics.
    terms_by_id = interner.terms()
    context_terms: dict[str, list[str]] = {}
    expanded_sets: dict[str, set[str]] = {}
    vocabulary = ColumnarVocabulary(interner)
    columns = DocumentColumns(interner)
    annotated_columns = annotated.columns
    for doc_index, (doc_id, _important) in enumerate(work):
        merged: list[str] = []
        seen: set[int] = set()
        seen_order: list[int] = []
        for kid in kids_per_doc[doc_index]:
            for context_term, context_kid in pairs.get(kid, _NO_PAIRS):
                if context_kid not in seen:
                    seen.add(context_kid)
                    seen_order.append(context_kid)
                    merged.append(context_term)
        context_terms[doc_id] = merged
        if (
            annotated_columns is not None
            and doc_index < len(annotated_columns)
            and annotated_columns.doc_ids[doc_index] == doc_id
        ):
            expanded_ids = set(annotated_columns.ids_of(doc_index))
        else:
            expanded_ids = {
                interner.intern(term)
                for term in annotated.term_sets.get(doc_id, set())
            }
        expanded_ids.update(seen_order)
        expanded_sets[doc_id] = {terms_by_id[i] for i in expanded_ids}
        vocabulary.add_document_distinct_ids(expanded_ids)
        columns.add_document_ids(doc_id, sorted(expanded_ids))
    _record_metrics(work, context_terms, vocabulary)
    return ContextualizedDatabase(
        annotated=annotated,
        context_terms=context_terms,
        expanded_sets=expanded_sets,
        vocabulary=vocabulary,
        columns=columns,
    )


def _record_metrics(
    work: list[tuple[str, list[str]]],
    context_terms: dict[str, list[str]],
    vocabulary: Vocabulary,
) -> None:
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("contextualize.documents", len(work))
        metrics.increment(
            "contextualize.context_terms",
            # order: summing ints is order-insensitive
            sum(len(terms) for terms in context_terms.values()),
        )
        metrics.gauge("contextualize.vocabulary_size", len(vocabulary))


def contextualize(
    annotated: AnnotatedDatabase,
    resources: list[ExternalResource],
    parallel: ParallelConfig | None = None,
    obs: Observability | None = None,
) -> ContextualizedDatabase:
    """Run Step 2: query every resource with every important term.

    Resources memoize per-term answers, so cost scales with the number
    of *distinct* important terms, not with corpus size — this is what
    makes the offline-expansion deployment of Section V-D practical.

    With ``parallel.workers > 1`` documents are sharded over a worker
    pool; the shared two-tier resource cache means each distinct term is
    still (normally) answered once per run.  Per-document results are
    folded in document order, so the contextualized database is
    bit-for-bit identical at every worker count.

    With ``parallel.batch_queries`` (the default) each chunk resolves
    its distinct important terms through one deduplicated batch per
    resource instead of one round trip per term; the per-term path
    remains available as the benchmark baseline and produces identical
    output.

    With ``parallel.columnar`` on top of batched queries the expansion
    moves to the run-level columnar plan (:func:`_contextualize_columnar`);
    with batched queries off, the columnar flag only wraps the per-term
    baseline workers in a text-function memo.  All combinations emit
    byte-identical databases.
    """
    work: list[tuple[str, list[str]]] = [
        (document.doc_id, annotated.important(document.doc_id))
        for document in annotated.documents
    ]
    settings = parallel or ParallelConfig(workers=1)
    if settings.columnar and settings.batch_queries:
        return _contextualize_columnar(
            annotated, resources, work, settings, parallel, obs
        )
    chunk_size = settings.resolve_chunk_size(len(work))
    chunks = chunked(work, max(1, chunk_size))
    worker = _expand_chunk_batched if settings.batch_queries else _expand_chunk
    expand: Callable[
        [list[tuple[str, list[str]]]], list[tuple[str, list[str], list[str]]]
    ] = partial(worker, resources)
    if settings.columnar:
        expand = MemoizedChunk(expand)
    context_terms: dict[str, list[str]] = {}
    expanded_sets: dict[str, set[str]] = {}
    vocabulary = Vocabulary()
    for chunk_result in map_chunks(expand, chunks, parallel, obs=obs):
        for doc_id, merged, seen_keys in chunk_result:
            context_terms[doc_id] = merged
            expanded = set(annotated.term_sets.get(doc_id, set()))
            expanded.update(seen_keys)
            expanded_sets[doc_id] = expanded
            vocabulary.add_document(expanded)
    _record_metrics(work, context_terms, vocabulary)
    return ContextualizedDatabase(
        annotated=annotated,
        context_terms=context_terms,
        expanded_sets=expanded_sets,
        vocabulary=vocabulary,
    )
