"""Step 2: expand documents with context terms (Figure 2).

Each important term of each document is sent to every external resource;
the union of returned context terms ``C(d)`` augments the document.  The
contextualized database keeps, per document, the original terms plus the
context terms — the input to the comparative analysis of Step 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..resources.base import ExternalResource
from ..text.tokenizer import normalize_term
from ..text.vocabulary import Vocabulary
from .annotate import AnnotatedDatabase


@dataclass
class ContextualizedDatabase:
    """The expanded database ``C(D)``."""

    annotated: AnnotatedDatabase
    context_terms: dict[str, list[str]]  # doc_id -> C(d) (surface forms)
    expanded_sets: dict[str, set[str]] = field(default_factory=dict)
    """doc_id -> normalized original + context terms."""
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    """Term statistics of the contextualized database."""

    def context(self, doc_id: str) -> list[str]:
        """Context terms ``C(d)`` of one document."""
        return self.context_terms.get(doc_id, [])


def contextualize(
    annotated: AnnotatedDatabase,
    resources: list[ExternalResource],
) -> ContextualizedDatabase:
    """Run Step 2: query every resource with every important term.

    Resources memoize per-term answers, so cost scales with the number
    of *distinct* important terms, not with corpus size — this is what
    makes the offline-expansion deployment of Section V-D practical.
    """
    context_terms: dict[str, list[str]] = {}
    expanded_sets: dict[str, set[str]] = {}
    vocabulary = Vocabulary()
    for document in annotated.documents:
        doc_id = document.doc_id
        merged: list[str] = []
        seen: set[str] = set()
        for term in annotated.important(doc_id):
            for resource in resources:
                for context_term in resource.context_terms(term):
                    key = normalize_term(context_term)
                    if key and key not in seen:
                        seen.add(key)
                        merged.append(context_term)
        context_terms[doc_id] = merged
        expanded = set(annotated.term_sets.get(doc_id, set()))
        expanded.update(seen)
        expanded_sets[doc_id] = expanded
        vocabulary.add_document(expanded)
    return ContextualizedDatabase(
        annotated=annotated,
        context_terms=context_terms,
        expanded_sets=expanded_sets,
        vocabulary=vocabulary,
    )
