"""The columnar data plane for Steps 1-3 (ROADMAP item 2).

The dict-of-strings pipeline spends most of its time hashing and
re-normalizing the same term strings.  This module keeps the string ↔ id
boundary at the edges (extractor outputs in, facet rendering out) and
moves everything in between onto flat integer columns:

* every normalized term gets a stable ``int32`` id in first-seen order
  (:class:`~repro.text.vocabulary.TermInterner`);
* per-document term lists and postings live in offset/id arrays
  (:class:`DocumentColumns`);
* df/tf/rank statistics live in id-indexed vectors
  (:class:`ColumnarVocabulary`), exposed to the existing
  ``ShiftTables``/``LikelihoodTables`` consumers through zero-copy
  :class:`~collections.abc.Mapping` views (:class:`ColumnarCountMap`,
  :class:`ColumnarRankMap`);
* process-pool workers receive the background vocabulary as a read-only
  ``multiprocessing.shared_memory`` segment
  (:class:`SharedVocabularyView`) instead of a pickled dict — with a
  graceful fallback to plain pickling when shared memory is unavailable.

A numpy fast path accelerates the whole-vocabulary scans when numpy is
importable (and ``REPRO_NO_NUMPY`` is unset); the pure-stdlib ``array``
fallback produces identical results — both operate on the same integer
columns and all floats are derived from the same integers.

Everything here is a *representation* change: emitted facets,
hierarchies, and serving payloads are byte-identical with the plane on
or off (``ParallelConfig.columnar``), certified by the differential
tests in ``tests/test_columnar_equivalence.py``.
"""

from __future__ import annotations

import json
import os
from array import array
from collections.abc import Iterator, Mapping

from ..text.vocabulary import TermInterner, Vocabulary

try:  # pragma: no cover - exercised via the no-numpy CI leg
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np  # type: ignore[no-redef]
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

#: True when the numpy fast path is active for whole-vocabulary scans.
HAVE_NUMPY = _np is not None


class IntVector:
    """A growable ``int32`` column over ``array('i')``.

    The stdlib ``array`` stores machine ints contiguously, supports the
    buffer protocol (zero-copy :meth:`memoryview` / numpy views), and
    pickles compactly — everything the data plane needs without a hard
    numpy dependency.
    """

    __slots__ = ("_data", "_view")

    def __init__(self, size: int = 0) -> None:
        self._data = array("i", bytes(4 * size)) if size else array("i")
        self._view = None

    @classmethod
    def from_iterable(cls, values) -> "IntVector":
        vector = cls()
        vector._data.extend(values)
        return vector

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index):
        return self._data[index]

    def __setitem__(self, index: int, value: int) -> None:
        self._data[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def append(self, value: int) -> None:
        self._view = None
        self._data.append(value)

    def extend(self, values) -> None:
        self._view = None
        self._data.extend(values)

    def grow_to(self, size: int) -> None:
        """Zero-extend the column to at least ``size`` entries."""
        missing = size - len(self._data)
        if missing > 0:
            # Drop the cached numpy view first: resizing an array while
            # a buffer export is alive raises BufferError.
            self._view = None
            self._data.frombytes(bytes(4 * missing))

    def memoryview(self) -> memoryview:
        """Zero-copy read view of the underlying int32 storage."""
        return memoryview(self._data)

    def tobytes(self) -> bytes:
        return self._data.tobytes()

    def copy(self) -> "IntVector":
        clone = IntVector()
        clone._data = array("i", self._data)
        return clone

    def __getstate__(self):
        return self._data

    def __setstate__(self, state) -> None:
        self._data = state
        self._view = None

    def to_numpy(self):
        """Zero-copy numpy view (requires :data:`HAVE_NUMPY`).

        The view is cached between resizes — per-document folds call
        this on every document, and rebuilding the buffer export
        dominates the cost of the fancy-indexed updates themselves.
        Writes through ``__setitem__`` stay coherent (shared memory);
        any resize drops the cache.
        """
        if _np is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("numpy fast path is unavailable")
        view = self._view
        if view is None:
            if not len(self._data):
                return _np.zeros(0, dtype=_np.int32)
            view = self._view = _np.frombuffer(self._data, dtype=_np.int32)
        return view


class ColumnarCountMap(Mapping[str, int]):
    """Zero-copy term → count view over an id-indexed column.

    Duck-type compatible with ``Vocabulary.df_map()``: iterating yields
    the terms with a nonzero count (id order = first-seen order, same as
    ``Counter`` insertion order for an append-only vocabulary), and
    ``.get(term, default)`` is a dict probe plus an array read — the
    exact access pattern ``ShiftTables`` relies on.
    """

    __slots__ = ("_interner", "_counts", "_nonzero")

    def __init__(
        self, interner: TermInterner, counts: IntVector, nonzero: int
    ) -> None:
        self._interner = interner
        self._counts = counts
        self._nonzero = nonzero

    def __getitem__(self, term: str) -> int:
        term_id = self._interner.id_of(term)
        if term_id is None or term_id >= len(self._counts):
            raise KeyError(term)
        count = self._counts[term_id]
        if count == 0:
            raise KeyError(term)
        return count

    def get(self, term: str, default: int | None = None):
        term_id = self._interner.id_of(term)
        if term_id is None or term_id >= len(self._counts):
            return default
        count = self._counts[term_id]
        return count if count else default

    def __iter__(self) -> Iterator[str]:
        terms = self._interner.terms()
        counts = self._counts
        for term_id in range(len(counts)):
            if counts[term_id]:
                yield terms[term_id]

    def __contains__(self, term: object) -> bool:
        return isinstance(term, str) and self.get(term) is not None

    def __len__(self) -> int:
        return self._nonzero


class ColumnarRankMap(Mapping[str, int]):
    """Term → 1-based rank snapshot over an id-indexed rank column.

    Mirrors ``Vocabulary.rank_map()``: contains exactly the nonzero-df
    terms, with ranks assigned by decreasing df and ties broken
    alphabetically.  Absent terms miss (callers supply the
    ``term_count + 1`` default themselves, as ``ShiftTables`` does).
    """

    __slots__ = ("_interner", "_ranks", "_nonzero")

    def __init__(
        self, interner: TermInterner, ranks: IntVector, nonzero: int
    ) -> None:
        self._interner = interner
        self._ranks = ranks  # 0 marks "no rank" (df == 0)
        self._nonzero = nonzero

    def __getitem__(self, term: str) -> int:
        term_id = self._interner.id_of(term)
        if term_id is None or term_id >= len(self._ranks):
            raise KeyError(term)
        rank = self._ranks[term_id]
        if rank == 0:
            raise KeyError(term)
        return rank

    def get(self, term: str, default: int | None = None):
        term_id = self._interner.id_of(term)
        if term_id is None or term_id >= len(self._ranks):
            return default
        rank = self._ranks[term_id]
        return rank if rank else default

    def __iter__(self) -> Iterator[str]:
        terms = self._interner.terms()
        ranks = self._ranks
        for term_id in range(len(ranks)):
            if ranks[term_id]:
                yield terms[term_id]

    def __contains__(self, term: object) -> bool:
        return isinstance(term, str) and self.get(term) is not None

    def __len__(self) -> int:
        return self._nonzero


class ColumnarVocabulary(Vocabulary):
    """Array-backed :class:`~repro.text.vocabulary.Vocabulary`.

    Statistics live in id-indexed ``int32`` columns over a shared
    :class:`~repro.text.vocabulary.TermInterner` instead of string-keyed
    counters.  Every public accessor returns exactly what the dict-backed
    base class returns for the same document sequence (the equivalence
    is pinned by ``tests/test_columnar.py``); ``df_map``/``rank_map``
    hand zero-copy column views to ``ShiftTables``.

    One documented divergence: after a term's df drops to zero via
    :meth:`remove_document` and the term is later re-added, ``terms()``
    yields it at its original first-seen position rather than at the
    end (ids are stable; ``Counter`` re-inserts).  Term *order* is never
    part of any certified output — selection sorts on a total key — and
    the batch pipeline never removes documents.
    """

    def __init__(self, interner: TermInterner | None = None) -> None:
        self.interner = interner if interner is not None else TermInterner()
        self._df_ids = IntVector()
        self._tf_ids = IntVector()
        self._nonzero = 0
        self._documents = 0
        self._rank_ids: IntVector | None = None

    # -- construction --------------------------------------------------------

    def add_document(self, terms) -> None:
        self.add_document_ids(
            self.interner.intern_many(term for term in terms if term)
        )

    def add_document_ids(self, term_ids) -> None:
        """Register one document given its (possibly repeated) term ids."""
        ids = list(term_ids)
        self._documents += 1
        self._rank_ids = None
        if not ids:
            return
        if _np is not None and len(ids) >= 32:
            self._add_document_ids_numpy(ids)
            return
        self._grow(max(ids) + 1)
        tf = self._tf_ids
        df = self._df_ids
        for term_id in ids:
            tf[term_id] += 1
        # order: incrementing per-id counters is order-insensitive
        for term_id in set(ids):
            if df[term_id] == 0:
                self._nonzero += 1
            df[term_id] += 1

    def _add_document_ids_numpy(self, ids: list) -> None:
        """Vectorized fold of one document's term ids into tf/df.

        ``unique`` gives the document's distinct ids with their
        occurrence counts in work proportional to the *document*, not to
        the vocabulary (a per-document ``bincount`` would scan an array
        as long as the highest id).  Adding integer counts to integer
        columns is the same arithmetic the scalar loop does, in a
        different (irrelevant) order.
        """
        distinct, counts = _np.unique(
            _np.asarray(ids, dtype=_np.int64), return_counts=True
        )
        self._grow(int(distinct[-1]) + 1)
        tf = self._tf_ids.to_numpy()
        df = self._df_ids.to_numpy()
        tf[distinct] += counts.astype(_np.int32)
        self._nonzero += int((df[distinct] == 0).sum())
        df[distinct] += 1

    def add_document_distinct_ids(self, term_ids) -> None:
        """Register one document given its *distinct* term ids.

        Contract: no id repeats (the caller folds a set).  Each id then
        contributes exactly +1 to both tf and df, so the fold skips the
        per-document ``bincount`` of :meth:`add_document_ids`.
        """
        ids = list(term_ids)
        self._documents += 1
        self._rank_ids = None
        if not ids:
            return
        if _np is not None and len(ids) >= 32:
            index = _np.asarray(ids, dtype=_np.int64)
            self._grow(int(index.max()) + 1)
            tf = self._tf_ids.to_numpy()
            df = self._df_ids.to_numpy()
            tf[index] += 1
            self._nonzero += int((df[index] == 0).sum())
            df[index] += 1
            return
        self._grow(max(ids) + 1)
        tf = self._tf_ids
        df = self._df_ids
        # order: incrementing per-id counters is order-insensitive
        for term_id in ids:
            tf[term_id] += 1
            if df[term_id] == 0:
                self._nonzero += 1
            df[term_id] += 1

    def remove_document(self, terms) -> None:
        term_list = [term for term in terms if term]
        if self._documents < 1:
            raise ValueError("remove_document on an empty vocabulary")
        counts: dict[str, int] = {}
        for term in term_list:
            counts[term] = counts.get(term, 0) + 1
        resolved: list[tuple[int, int]] = []
        for term, count in counts.items():
            term_id = self.interner.id_of(term)
            in_range = term_id is not None and term_id < len(self._df_ids)
            if (
                not in_range
                or self._df_ids[term_id] < 1
                or self._tf_ids[term_id] < count
            ):
                raise ValueError(
                    f"remove_document: term {term!r} was never added "
                    "with these frequencies"
                )
            resolved.append((term_id, count))
        self._documents -= 1
        for term_id, count in resolved:
            self._tf_ids[term_id] -= count
            self._df_ids[term_id] -= 1
            if self._df_ids[term_id] == 0:
                self._nonzero -= 1
        self._rank_ids = None

    def copy(self) -> "ColumnarVocabulary":
        clone = ColumnarVocabulary(self.interner)
        clone._df_ids = self._df_ids.copy()
        clone._tf_ids = self._tf_ids.copy()
        clone._nonzero = self._nonzero
        clone._documents = self._documents
        return clone

    def _grow(self, size: int) -> None:
        self._df_ids.grow_to(size)
        self._tf_ids.grow_to(size)

    # -- size accessors -------------------------------------------------------

    @property
    def term_count(self) -> int:
        return self._nonzero

    def __contains__(self, term: str) -> bool:
        return self.df(term) > 0

    def __len__(self) -> int:
        return self._nonzero

    def terms(self) -> list[str]:
        all_terms = self._interner_terms()
        df = self._df_ids
        return [all_terms[i] for i in range(len(df)) if df[i]]

    def _interner_terms(self) -> list[str]:
        return self.interner.terms()

    # -- frequency accessors ----------------------------------------------------

    def _count_by_id(self, column: IntVector, term: str) -> int:
        term_id = self.interner.id_of(term)
        if term_id is None or term_id >= len(column):
            return 0
        return column[term_id]

    def tf(self, term: str) -> int:
        return self._count_by_id(self._tf_ids, term)

    def df(self, term: str) -> int:
        return self._count_by_id(self._df_ids, term)

    def df_by_id(self, term_id: int) -> int:
        """``df`` addressed by interned id (columnar fast paths)."""
        return self._df_ids[term_id] if term_id < len(self._df_ids) else 0

    def df_column(self, size: int | None = None) -> IntVector:
        """The id-indexed df column, zero-padded to ``size`` entries.

        Padding mutates the live column (appending zeros never changes
        any count), so the return is a zero-copy view, not a copy.
        """
        if size is not None:
            self._grow(size)
        return self._df_ids

    def rank_column(self, size: int | None = None) -> IntVector:
        """Id-indexed 1-based ranks; 0 marks absent (df == 0) terms."""
        ranks = self._rank_column()
        if size is not None and len(ranks) < size:
            ranks.grow_to(size)
        return ranks

    def _rank_column(self) -> IntVector:
        if self._rank_ids is None:
            df = self._df_ids
            all_terms = self._interner_terms()
            present = [i for i in range(len(df)) if df[i]]
            present.sort(key=lambda i: (-df[i], all_terms[i]))
            ranks = IntVector(len(df))
            for position, term_id in enumerate(present):
                ranks[term_id] = position + 1
            self._rank_ids = ranks
        return self._rank_ids

    def rank(self, term: str) -> int:
        term_id = self.interner.id_of(term)
        ranks = self._rank_column()
        if term_id is None or term_id >= len(ranks) or ranks[term_id] == 0:
            return self._nonzero + 1
        return ranks[term_id]

    def df_map(self) -> Mapping[str, int]:
        return ColumnarCountMap(self.interner, self._df_ids, self._nonzero)

    def rank_map(self) -> Mapping[str, int]:
        # Snapshot semantics, like the base class: hand out a private
        # copy so later adds cannot mutate what ShiftTables captured.
        return ColumnarRankMap(
            self.interner, self._rank_column().copy(), self._nonzero
        )

    def most_common(self, n: int | None = None) -> list[tuple[str, int]]:
        df = self._df_ids
        all_terms = self._interner_terms()
        ordered = sorted(
            (
                (all_terms[i], df[i])
                for i in range(len(df))
                if df[i]
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ordered if n is None else ordered[:n]


class DocumentColumns:
    """Per-document term-id lists as offset/id arrays (CSR layout).

    ``term_ids[offsets[i]:offsets[i + 1]]`` are the interned term ids of
    document ``i`` (in emission order, repeats preserved).  Built by the
    annotation statistics pass and by contextualization (expanded sets);
    :meth:`postings` inverts the layout for the hierarchy stage.
    """

    __slots__ = ("interner", "doc_ids", "offsets", "term_ids", "_doc_index")

    def __init__(self, interner: TermInterner) -> None:
        self.interner = interner
        self.doc_ids: list[str] = []
        self.offsets = IntVector.from_iterable([0])
        self.term_ids = IntVector()
        self._doc_index: dict[str, int] | None = None

    def __len__(self) -> int:
        return len(self.doc_ids)

    def add_document(self, doc_id: str, terms) -> list[int]:
        """Append one document's terms; returns their interned ids."""
        ids = self.interner.intern_many(term for term in terms if term)
        self.doc_ids.append(doc_id)
        self.term_ids.extend(ids)
        self.offsets.append(len(self.term_ids))
        self._doc_index = None
        return ids

    def add_document_ids(self, doc_id: str, term_ids) -> None:
        """Append one document given already-interned term ids."""
        self.doc_ids.append(doc_id)
        self.term_ids.extend(term_ids)
        self.offsets.append(len(self.term_ids))
        self._doc_index = None

    def ids_of(self, index: int) -> memoryview:
        """Zero-copy id slice of document ``index``."""
        return self.term_ids.memoryview()[
            self.offsets[index] : self.offsets[index + 1]
        ]

    def terms_of(self, index: int) -> list[str]:
        terms = self.interner.terms()
        return [terms[term_id] for term_id in self.ids_of(index)]

    def index_of(self, doc_id: str) -> int | None:
        if self._doc_index is None:
            self._doc_index = {
                doc_id: i for i, doc_id in enumerate(self.doc_ids)
            }
        return self._doc_index.get(doc_id)

    def postings(self, term_ids=None) -> dict[int, IntVector]:
        """term id → ascending document positions (distinct per doc).

        ``term_ids`` restricts the inversion to the given ids (the
        hierarchy stage inverts only the selected facet terms); None
        inverts everything.  Either way this is one pass over the flat
        id column.
        """
        wanted = None if term_ids is None else set(term_ids)
        inverted: dict[int, IntVector] = {}
        for index in range(len(self.doc_ids)):
            row = set(self.ids_of(index))
            if wanted is not None:
                row &= wanted
            for term_id in sorted(row):
                posting = inverted.get(term_id)
                if posting is None:
                    posting = inverted[term_id] = IntVector()
                posting.append(index)
        return inverted


# -- shared read-only segments ------------------------------------------------

#: Process-local cache of attached segments, keyed by segment name, so
#: every chunk a worker runs reuses one attachment.
_ATTACHED: dict[str, "SharedSegment"] = {}

#: Process-local cache of decoded vocabulary views, keyed by segment
#: name (see :meth:`SharedVocabularyView._load`).
_LOADED_VIEWS: dict[str, tuple[dict[str, int], "array", "array", int]] = {}


class SharedSegment:
    """One read-only shared-memory block of named byte sections.

    Layout: ``8-byte little-endian index length | JSON index
    {name: [offset, length]} | payload bytes``.  The creating process
    owns the segment and must call :meth:`unlink`; attaching processes
    get zero-copy :class:`memoryview` sections.
    """

    __slots__ = ("name", "_shm", "_index", "_payload_start")

    def __init__(self, shm, index: dict[str, list[int]], start: int) -> None:
        self.name: str = shm.name
        self._shm = shm
        self._index = index
        self._payload_start = start

    @classmethod
    def create(cls, sections: dict[str, bytes]) -> "SharedSegment | None":
        """Publish ``sections``; None when shared memory is unavailable."""
        index: dict[str, list[int]] = {}
        offset = 0
        for name, payload in sections.items():
            index[name] = [offset, len(payload)]
            offset += len(payload)
        header = json.dumps(index, sort_keys=True).encode("utf-8")
        total = 8 + len(header) + offset
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        except (ImportError, OSError, ValueError):
            return None
        buffer = shm.buf
        buffer[0:8] = len(header).to_bytes(8, "little")
        buffer[8 : 8 + len(header)] = header
        start = 8 + len(header)
        for name, payload in sections.items():
            begin = start + index[name][0]
            buffer[begin : begin + len(payload)] = payload
        return cls(shm, index, start)

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        """Attach to an existing segment (cached per process)."""
        cached = _ATTACHED.get(name)
        if cached is not None:
            return cached
        from multiprocessing import shared_memory

        # The creator owns the segment's lifetime, so the attachment
        # must not be resource-tracked: under fork every process shares
        # one tracker whose name cache is a set, and a register +
        # unregister pair from any worker would erase the creator's own
        # registration (KeyError at unlink); under spawn a tracked
        # attachment makes the worker's tracker unlink the segment when
        # the worker exits.  Python 3.13+ supports track=False; older
        # versions need register suppressed for the attach call.
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _skip_shared_memory(resource_name: str, rtype: str) -> None:
                if rtype != "shared_memory":
                    original_register(resource_name, rtype)

            resource_tracker.register = _skip_shared_memory
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        header_len = int.from_bytes(bytes(shm.buf[0:8]), "little")
        index = json.loads(bytes(shm.buf[8 : 8 + header_len]).decode("utf-8"))
        segment = cls(shm, index, 8 + header_len)
        _ATTACHED[name] = segment
        return segment

    @property
    def size(self) -> int:
        """Total bytes allocated for the segment."""
        return self._shm.size

    def section(self, name: str) -> memoryview:
        """Zero-copy view of one named section."""
        offset, length = self._index[name]
        begin = self._payload_start + offset
        return self._shm.buf[begin : begin + length]

    def close(self) -> None:
        _ATTACHED.pop(self.name, None)
        _LOADED_VIEWS.pop(self.name, None)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering exported views
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only); safe to call once."""
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def pack_vocabulary(vocabulary: Vocabulary) -> SharedSegment | None:
    """Publish a vocabulary's statistics as a shared read-only segment.

    Sections: the newline-joined term blob, the id-indexed df/tf
    columns, and a small JSON meta section (document count).  Returns
    None — callers fall back to pickling the vocabulary itself — when
    shared memory is unavailable on the platform.
    """
    if isinstance(vocabulary, ColumnarVocabulary):
        terms = vocabulary.interner.terms()
        size = len(terms)
        df = vocabulary.df_column(size).tobytes()
        tf_column = IntVector(size)
        for term_id, term in enumerate(terms):
            tf_column[term_id] = vocabulary.tf(term)
        tf = tf_column.tobytes()
    else:
        terms = vocabulary.terms()
        df_column = IntVector(len(terms))
        tf_column = IntVector(len(terms))
        for term_id, term in enumerate(terms):
            df_column[term_id] = vocabulary.df(term)
            tf_column[term_id] = vocabulary.tf(term)
        df = df_column.tobytes()
        tf = tf_column.tobytes()
    meta = json.dumps(
        {"documents": vocabulary.document_count, "terms": len(terms)}
    ).encode("utf-8")
    return SharedSegment.create(
        {
            "terms": "\n".join(terms).encode("utf-8"),
            "df": df,
            "tf": tf,
            "meta": meta,
        }
    )


class SharedVocabularyView:
    """Read-only vocabulary facade over a :class:`SharedSegment`.

    Pickles as just the segment name: process-pool workers attach the
    segment on first use instead of deserializing the full term table —
    that is the "workers receive read-only index segments" half of the
    columnar plane.  Implements the accessors extraction needs
    (``df``/``tf``/``document_count``/containment); it is a *background*
    statistics view, never the pipeline's authoritative vocabulary.
    """

    __slots__ = ("_segment_name", "_ids", "_df", "_tf", "_documents")

    def __init__(self, segment_name: str) -> None:
        self._segment_name = segment_name
        self._ids: dict[str, int] | None = None
        self._df: array | None = None
        self._tf: array | None = None
        self._documents = 0

    def __getstate__(self) -> str:
        return self._segment_name

    def __setstate__(self, state: str) -> None:
        self._segment_name = state
        self._ids = None
        self._df = None
        self._tf = None
        self._documents = 0

    def _load(self) -> dict[str, int]:
        if self._ids is None:
            # Decode once per process, not once per chunk: every chunk
            # job re-pickles the extractors (and so this view), but the
            # decoded tables are immutable and keyed by segment name.
            cached = _LOADED_VIEWS.get(self._segment_name)
            if cached is None:
                segment = SharedSegment.attach(self._segment_name)
                blob = bytes(segment.section("terms")).decode("utf-8")
                terms = blob.split("\n") if blob else []
                ids = {term: i for i, term in enumerate(terms)}
                df = array("i", bytes(segment.section("df")))
                tf = array("i", bytes(segment.section("tf")))
                meta = json.loads(
                    bytes(segment.section("meta")).decode("utf-8")
                )
                cached = (ids, df, tf, meta["documents"])
                _LOADED_VIEWS[self._segment_name] = cached
            self._ids, self._df, self._tf, self._documents = cached
        return self._ids

    @property
    def document_count(self) -> int:
        self._load()
        return self._documents

    @property
    def term_count(self) -> int:
        return len(self)

    def __len__(self) -> int:
        self._load()
        assert self._df is not None
        return sum(1 for count in self._df if count)

    def __contains__(self, term: str) -> bool:
        return self.df(term) > 0

    def terms(self) -> list[str]:
        ids = self._load()
        assert self._df is not None
        df = self._df
        return [term for term, term_id in ids.items() if df[term_id]]

    def df(self, term: str) -> int:
        term_id = self._load().get(term)
        assert self._df is not None
        return self._df[term_id] if term_id is not None else 0

    def tf(self, term: str) -> int:
        term_id = self._load().get(term)
        assert self._tf is not None
        return self._tf[term_id] if term_id is not None else 0


def attach_segment(name: str) -> None:
    """Pool initializer: pre-attach a shared segment in a fresh worker."""
    try:
        SharedSegment.attach(name)
    except FileNotFoundError:  # pragma: no cover - creator already gone
        pass


# -- whole-vocabulary fast paths ---------------------------------------------


def columnar_candidate_ids(
    original: ColumnarVocabulary,
    contextualized: ColumnarVocabulary,
    require_both_shifts: bool,
    bins_original,
    bins_contextualized,
) -> list[int] | None:
    """Vectorized Figure 3 shift pretest over the shared id space.

    Returns the ascending term ids passing the shift test(s) — exactly
    the terms the scalar selection loop would keep, in the same order it
    visits them (``terms()`` yields id order) — or None when the numpy
    fast path is unavailable and the caller should run the scalar loop.
    All quantities are integers; no float enters the comparison, so the
    two paths agree bit for bit.
    """
    if _np is None or original.interner is not contextualized.interner:
        return None
    size = len(original.interner)
    if size == 0:
        return []
    df_o = original.df_column(size).to_numpy()
    df_c = contextualized.df_column(size).to_numpy()
    mask = df_c > df_o
    if require_both_shifts:
        unknown_o = len(original) + 1
        unknown_c = len(contextualized) + 1
        ranks_o = original.rank_column(size).to_numpy().copy()
        ranks_c = contextualized.rank_column(size).to_numpy().copy()
        ranks_o[ranks_o == 0] = unknown_o
        ranks_c[ranks_c == 0] = unknown_c
        table_o = _np.asarray(bins_original, dtype=_np.int64)
        table_c = _np.asarray(bins_contextualized, dtype=_np.int64)
        shift_r = table_o[ranks_o] - table_c[ranks_c]
        mask &= shift_r > 0
    # Selection only ever scores terms present in the contextualized
    # database (it iterates contextualized.terms()).
    mask &= df_c > 0
    return [int(term_id) for term_id in _np.nonzero(mask)[0]]
