"""Facet hierarchy construction over the selected facet terms.

The selected terms are organized with Sanderson-Croft subsumption over
co-occurrence in the *contextualized* database; each root of the
resulting forest becomes one browsing facet, and every node is populated
with the documents whose expanded term set contains the node's term —
the OLAP-style structure the user study browses.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import HierarchyError
from ..observability.context import current_metrics
from ..text.tokenizer import normalize_term
from .contextualize import ContextualizedDatabase
from .selection import FacetTermCandidate
from .subsumption import SubsumptionHierarchy, build_subsumption_hierarchy


@dataclass
class FacetNode:
    """One node of a facet hierarchy."""

    term: str
    children: list["FacetNode"] = field(default_factory=list)
    doc_ids: set[str] = field(default_factory=set)

    @property
    def count(self) -> int:
        """Number of documents at this node (inclusive of descendants)."""
        return len(self.doc_ids)

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, term: str) -> "FacetNode | None":
        """Locate a descendant node by (normalized) term."""
        key = normalize_term(term)
        for node in self.walk():
            if normalize_term(node.term) == key:
                return node
        return None


@dataclass
class FacetHierarchy:
    """One facet: a named root plus its tree."""

    root: FacetNode

    @property
    def name(self) -> str:
        return self.root.term

    @property
    def size(self) -> int:
        """Number of nodes in the facet tree."""
        return sum(1 for _ in self.root.walk())

    def terms(self) -> list[str]:
        return [node.term for node in self.root.walk()]


#: Default parent/child coverage ratio cap for facet trees (see
#: :func:`repro.core.subsumption.build_subsumption_hierarchy`).
DEFAULT_MAX_DF_RATIO = 30.0

#: Terms covering more than this fraction of the collection cannot act
#: as hierarchy *parents*: a facet node matching nearly every document
#: would trivially adopt every orphan term under subsumption,
#: collapsing the forest into one tree.  Such terms stay in the forest
#: as stand-alone roots.
DEFAULT_MAX_COVERAGE = 0.75


def build_facet_hierarchies(
    candidates: list[FacetTermCandidate],
    database: ContextualizedDatabase,
    threshold: float = 0.8,
    min_docs: int = 1,
    max_df_ratio: float | None = DEFAULT_MAX_DF_RATIO,
    max_coverage: float = DEFAULT_MAX_COVERAGE,
    edge_validator: Callable[[str, str], bool] | None = None,
) -> list[FacetHierarchy]:
    """Group facet terms into per-facet trees and populate them.

    Parameters
    ----------
    candidates:
        Output of :func:`repro.core.selection.select_facet_terms`.
    database:
        The contextualized database (co-occurrence source and document
        population).
    threshold:
        Subsumption threshold.
    min_docs:
        Nodes covering fewer documents are dropped.
    """
    if min_docs < 1:
        raise HierarchyError(f"min_docs must be >= 1, got {min_docs}")
    terms = [normalize_term(c.term) for c in candidates]
    doc_sets: dict[str, set[str]] = {}
    columns = database.columns
    if columns is not None and len(columns) == len(database.expanded_sets):
        # Columnar fast path: invert the expanded id columns for just
        # the candidate ids (one pass) instead of scanning every
        # document's string set once per candidate.  The id rows hold
        # exactly the expanded_sets members, so the doc sets are equal.
        id_of = columns.interner.id_of
        candidate_ids = {
            term_id
            # order: building a set from a set is order-insensitive
            for term_id in (id_of(term) for term in set(terms))
            if term_id is not None
        }
        postings = columns.postings(candidate_ids)
        doc_ids = columns.doc_ids
        for term in terms:
            term_id = id_of(term)
            posting = postings.get(term_id) if term_id is not None else None
            docs = (
                {doc_ids[index] for index in posting}
                if posting is not None
                else set()
            )
            if len(docs) >= min_docs:
                doc_sets[term] = docs
    else:
        for term in terms:
            docs = {
                doc_id
                for doc_id, expanded in database.expanded_sets.items()
                if term in expanded
            }
            if len(docs) >= min_docs:
                doc_sets[term] = docs
    return build_hierarchies_from_doc_sets(
        terms,
        doc_sets,
        len(database.annotated.documents),
        threshold=threshold,
        max_df_ratio=max_df_ratio,
        max_coverage=max_coverage,
        edge_validator=edge_validator,
    )


def build_hierarchies_from_doc_sets(
    terms: list[str],
    doc_sets: dict[str, set[str]],
    document_count: int,
    threshold: float = 0.8,
    max_df_ratio: float | None = DEFAULT_MAX_DF_RATIO,
    max_coverage: float = DEFAULT_MAX_COVERAGE,
    edge_validator: Callable[[str, str], bool] | None = None,
    overlap: Callable[[str, str], int] | None = None,
) -> list[FacetHierarchy]:
    """Build facet trees from precomputed per-term document sets.

    The shared back half of :func:`build_facet_hierarchies`: the batch
    pipeline scans ``expanded_sets`` to produce ``doc_sets``, while the
    incremental pipeline reads them straight from its postings index —
    both then run this exact code, so the trees cannot diverge.
    ``overlap`` optionally replaces the set-intersection co-occurrence
    counts (see :func:`repro.core.subsumption.build_subsumption_hierarchy`).
    """
    if not 0 < max_coverage <= 1:
        raise HierarchyError(f"max_coverage must be in (0, 1], got {max_coverage}")
    max_parent_df = int(max_coverage * max(document_count, 1))
    usable = [t for t in terms if t in doc_sets]
    subsumption = build_subsumption_hierarchy(
        usable,
        doc_sets,
        threshold=threshold,
        max_df_ratio=max_df_ratio,
        max_parent_df=max_parent_df,
        edge_validator=edge_validator,
        overlap=overlap,
    )
    hierarchies = hierarchies_from_subsumption(subsumption, doc_sets)
    metrics = current_metrics()
    if metrics is not None:
        metrics.increment("hierarchy.candidate_terms", len(terms))
        metrics.increment("hierarchy.usable_terms", len(usable))
        metrics.increment("hierarchy.facets", len(hierarchies))
        metrics.increment(
            "hierarchy.nodes", sum(facet.size for facet in hierarchies)
        )
    return hierarchies


def hierarchies_from_subsumption(
    subsumption: SubsumptionHierarchy,
    doc_sets: dict[str, set[str]],
) -> list[FacetHierarchy]:
    """Materialize :class:`FacetHierarchy` trees from a subsumption forest."""

    def build_node(term: str) -> FacetNode:
        node = FacetNode(term=term, doc_ids=set(doc_sets.get(term, set())))
        for child_term in subsumption.children_of(term):
            child = build_node(child_term)
            node.children.append(child)
            node.doc_ids.update(child.doc_ids)
        node.children.sort(key=lambda n: (-n.count, n.term))
        return node

    facets = [FacetHierarchy(root=build_node(root)) for root in subsumption.roots]
    facets.sort(key=lambda f: (-f.root.count, f.name))
    return facets
