"""Dunning's log-likelihood statistic for binomial frequency comparison.

Section IV-C of the paper, following Dunning (1993): the chi-square test
misbehaves under power-law term frequencies, so significance of a
frequency difference is tested with the likelihood ratio

    -log lambda_t = log L(p1, df_C, N) + log L(p2, df, N)
                    - log L(p, df, N) - log L(p, df_C, N)

with ``log L(p, k, n) = k log p + (n - k) log(1 - p)``,
``p1 = df_C / N``, ``p2 = df / N`` and ``p = (p1 + p2) / 2``.

The chi-square statistic is provided too, for the ablation benchmark
that examines the paper's choice empirically.

The scalar functions are the reference implementation.
:class:`LikelihoodTables` serves the vectorized selection stage: for a
fixed corpus size ``n`` it shares the pure per-``k`` log-likelihood
terms (``log L(k/n, k, n)``) across every term and memoizes full scores
per distinct ``(df, df_C)`` pair — Zipfian frequencies make those pairs
highly repetitive, so a whole-vocabulary pass computes only a few
hundred distinct scores.  Every cached value is produced by the scalar
functions themselves (same expression, same association order), so
table-driven scores are bit-for-bit identical to per-term scores.
"""

from __future__ import annotations

import math


def _xlogy(x: float, y: float) -> float:
    """``x * log(y)`` with the convention ``0 * log(0) = 0``."""
    if x == 0:
        return 0.0
    if y <= 0:
        # k > 0 with p = 0 cannot happen for consistent inputs; guard
        # against float underflow by flooring the probability.
        y = 1e-300
    return x * math.log(y)


def binomial_log_likelihood(p: float, k: float, n: float) -> float:
    """``log L(p, k, n) = k log p + (n - k) log(1 - p)``."""
    return _xlogy(k, p) + _xlogy(n - k, 1.0 - p)


def log_likelihood_ratio(df_original: int, df_contextualized: int, n: int) -> float:
    """The paper's ``-log lambda_t`` for one term.

    Parameters
    ----------
    df_original:
        Document frequency in the original database ``D``.
    df_contextualized:
        Document frequency in the contextualized database ``C(D)``.
    n:
        Number of documents ``|D|`` (the two databases hold the same
        documents, so a single size is used — as in Figure 3).
    """
    if n <= 0:
        raise ValueError(f"database size must be positive, got {n}")
    if not 0 <= df_original <= n or not 0 <= df_contextualized <= n:
        raise ValueError(
            "document frequencies must lie in [0, n]: "
            f"df={df_original}, df_C={df_contextualized}, n={n}"
        )
    p1 = df_contextualized / n
    p2 = df_original / n
    p = (p1 + p2) / 2.0
    return (
        binomial_log_likelihood(p1, df_contextualized, n)
        + binomial_log_likelihood(p2, df_original, n)
        - binomial_log_likelihood(p, df_original, n)
        - binomial_log_likelihood(p, df_contextualized, n)
    )


class LikelihoodTables:
    """Shared log-likelihood tables for one corpus size ``n``.

    ``pure(k)`` caches ``log L(k/n, k, n)`` per distinct ``k`` (the two
    leading terms of the ratio use exactly this shape);
    :meth:`log_likelihood_ratio` and :meth:`chi_square` memoize whole
    scores per distinct ``(df, df_C)`` pair.  Results are bit-for-bit
    identical to the module-level scalar functions: the mixed-``p``
    terms are evaluated by :func:`binomial_log_likelihood` itself and
    the final combination keeps the scalar's left-to-right association.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"database size must be positive, got {n}")
        self.n = n
        self._pure: dict[int, float] = {}
        self._ratio: dict[tuple[int, int], float] = {}
        self._chi: dict[tuple[int, int], float] = {}

    def pure(self, k: int) -> float:
        """``log L(k/n, k, n)`` — the success probability implied by ``k``."""
        value = self._pure.get(k)
        if value is None:
            value = binomial_log_likelihood(k / self.n, k, self.n)
            self._pure[k] = value
        return value

    def log_likelihood_ratio(self, df_original: int, df_contextualized: int) -> float:
        """Memoized :func:`log_likelihood_ratio` for this ``n``."""
        key = (df_original, df_contextualized)
        value = self._ratio.get(key)
        if value is not None:
            return value
        n = self.n
        if not 0 <= df_original <= n or not 0 <= df_contextualized <= n:
            raise ValueError(
                "document frequencies must lie in [0, n]: "
                f"df={df_original}, df_C={df_contextualized}, n={n}"
            )
        p1 = df_contextualized / n
        p2 = df_original / n
        p = (p1 + p2) / 2.0
        value = (
            self.pure(df_contextualized)
            + self.pure(df_original)
            - binomial_log_likelihood(p, df_original, n)
            - binomial_log_likelihood(p, df_contextualized, n)
        )
        self._ratio[key] = value
        return value

    def chi_square(self, df_original: int, df_contextualized: int) -> float:
        """Memoized :func:`chi_square_statistic` for this ``n``."""
        key = (df_original, df_contextualized)
        value = self._chi.get(key)
        if value is None:
            value = chi_square_statistic(df_original, df_contextualized, self.n)
            self._chi[key] = value
        return value


def chi_square_statistic(df_original: int, df_contextualized: int, n: int) -> float:
    """Pearson chi-square on the same 2x2 presence table.

    Included for the statistics ablation: the paper argues this test's
    assumptions fail for Zipf-distributed term frequencies.
    """
    if n <= 0:
        raise ValueError(f"database size must be positive, got {n}")
    a = df_contextualized
    b = n - df_contextualized
    c = df_original
    d = n - df_original
    total = a + b + c + d
    row1 = a + c
    row2 = b + d
    col1 = a + b
    col2 = c + d
    if 0 in (row1, row2, col1, col2):
        return 0.0
    statistic = 0.0
    for observed, row, col in (
        (a, row1, col1),
        (b, row2, col1),
        (c, row1, col2),
        (d, row2, col2),
    ):
        expected = row * col / total
        if expected > 0:
            statistic += (observed - expected) ** 2 / expected
    return statistic
