"""End-to-end facet extraction: the public entry point of the library.

:class:`FacetExtractor` wires Steps 1-3 and hierarchy construction
together; :class:`FacetExtractionResult` carries every intermediate so
the evaluation harness (and curious users) can inspect each stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..corpus.document import Document
from ..db.inverted_index import InvertedIndex
from ..db.store import DocumentStore
from ..extractors.base import TermExtractor
from ..resources.base import ExternalResource
from .annotate import AnnotatedDatabase, annotate_database
from .contextualize import ContextualizedDatabase, contextualize
from .hierarchy import FacetHierarchy, build_facet_hierarchies
from .interface import FacetedInterface
from .selection import DEFAULT_TOP_K, FacetTermCandidate, select_facet_terms


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage (the Section V-D numbers)."""

    annotation: float = 0.0
    contextualization: float = 0.0
    selection: float = 0.0
    hierarchy: float = 0.0

    @property
    def total(self) -> float:
        return self.annotation + self.contextualization + self.selection + self.hierarchy


@dataclass
class FacetExtractionResult:
    """Everything the pipeline produced."""

    documents: list[Document]
    annotated: AnnotatedDatabase
    contextualized: ContextualizedDatabase
    facet_terms: list[FacetTermCandidate]
    hierarchies: list[FacetHierarchy] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)

    def facet_term_strings(self) -> list[str]:
        """Just the selected terms, ranked by score."""
        return [candidate.term for candidate in self.facet_terms]

    def interface(self, store: DocumentStore | None = None) -> FacetedInterface:
        """Build the faceted browsing interface over the result."""
        if store is None:
            store = DocumentStore(self.documents)
        index = InvertedIndex()
        index.add_documents(self.documents)
        return FacetedInterface(store, self.hierarchies, index=index)


class FacetExtractor:
    """The unsupervised facet-extraction pipeline of Section IV.

    Parameters
    ----------
    extractors:
        Term extractors for Step 1 (any subset of NE / Yahoo / Wikipedia).
    resources:
        External resources for Step 2 (any subset of Google / WordNet /
        Wikipedia Graph / Wikipedia Synonyms, or a composite).
    top_k:
        Facet terms to keep after the Figure 3 ranking.
    statistic:
        ``"log-likelihood"`` (paper) or ``"chi-square"`` (ablation).
    build_hierarchies:
        Skip hierarchy construction when False (recall studies only
        need the flat term set).
    """

    def __init__(
        self,
        extractors: list[TermExtractor],
        resources: list[ExternalResource],
        top_k: int = DEFAULT_TOP_K,
        statistic: str = "log-likelihood",
        require_both_shifts: bool = True,
        subsumption_threshold: float = 0.8,
        build_hierarchies: bool = True,
        edge_validator=None,
    ) -> None:
        if not extractors:
            raise ValueError("FacetExtractor needs at least one extractor")
        if not resources:
            raise ValueError("FacetExtractor needs at least one resource")
        self._extractors = list(extractors)
        self._resources = list(resources)
        self._top_k = top_k
        self._statistic = statistic
        self._require_both_shifts = require_both_shifts
        self._subsumption_threshold = subsumption_threshold
        self._build_hierarchies = build_hierarchies
        self._edge_validator = edge_validator

    def run(self, documents: list[Document]) -> FacetExtractionResult:
        """Extract facets from a document collection."""
        timings = StageTimings()

        start = time.perf_counter()
        annotated = annotate_database(documents, self._extractors)
        timings.annotation = time.perf_counter() - start

        start = time.perf_counter()
        contextualized = contextualize(annotated, self._resources)
        timings.contextualization = time.perf_counter() - start

        start = time.perf_counter()
        facet_terms = select_facet_terms(
            contextualized,
            top_k=self._top_k,
            statistic=self._statistic,
            require_both_shifts=self._require_both_shifts,
        )
        timings.selection = time.perf_counter() - start

        hierarchies: list[FacetHierarchy] = []
        if self._build_hierarchies:
            start = time.perf_counter()
            hierarchies = build_facet_hierarchies(
                facet_terms,
                contextualized,
                threshold=self._subsumption_threshold,
                edge_validator=self._edge_validator,
            )
            timings.hierarchy = time.perf_counter() - start

        return FacetExtractionResult(
            documents=list(documents),
            annotated=annotated,
            contextualized=contextualized,
            facet_terms=facet_terms,
            hierarchies=hierarchies,
            timings=timings,
        )
