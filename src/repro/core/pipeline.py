"""End-to-end facet extraction: the public entry point of the library.

:class:`FacetExtractor` wires Steps 1-3 and hierarchy construction
together; :class:`FacetExtractionResult` carries every intermediate so
the evaluation harness (and curious users) can inspect each stage.

The pipeline is permanently instrumented: hand the extractor an
:class:`~repro.observability.Observability` bundle and it produces a
trace (``pipeline`` → ``stage:*`` → ``chunk`` → ``resource:*`` spans)
plus a metrics registry with per-stage timers and per-resource cache
counters.  Without a bundle the no-op tracer is used and every probe
costs one ``None`` check, so results — including parallel-vs-serial
bit-for-bit determinism — are unaffected.

.. deprecated:: 1.2
   ``StageTimings`` moved to :class:`repro.observability.SpanTimings`
   and the ``cache_stats`` dict became
   :attr:`FacetExtractionResult.resource_stats` (values are
   :class:`repro.observability.ResourceStats`).  The old names still
   work here but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import time
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..config import ParallelConfig
from ..corpus.document import Document
from ..db.inverted_index import InvertedIndex
from ..db.resource_cache import PersistentResourceCache
from ..db.store import DocumentStore
from ..extractors.base import TermExtractor
from ..observability import DISABLED, Observability, ResourceStats, SpanTimings
from ..observability.logging import get_logger
from ..resources.base import ExternalResource
from ..resources.engine import ResourcePrefetcher
from .annotate import AnnotatedDatabase, annotate_database
from .contextualize import ContextualizedDatabase, contextualize
from .hierarchy import FacetHierarchy, build_facet_hierarchies
from .interface import FacetedInterface
from .selection import DEFAULT_TOP_K, FacetTermCandidate, select_facet_terms

log = get_logger(__name__)

#: The four stages, in execution order (span names are ``stage:<name>``).
STAGES = ("annotation", "contextualization", "selection", "hierarchy")


@dataclass
class FacetExtractionResult:
    """Everything the pipeline produced."""

    documents: list[Document]
    annotated: AnnotatedDatabase
    contextualized: ContextualizedDatabase
    facet_terms: list[FacetTermCandidate]
    hierarchies: list[FacetHierarchy] = field(default_factory=list)
    timings: SpanTimings = field(default_factory=SpanTimings)
    resource_stats: dict[str, ResourceStats] = field(default_factory=dict)
    """Per-resource cache counters observed during this run."""
    store: DocumentStore | None = None
    """The document store the run was fed from, when one existed."""
    _built_store: DocumentStore | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _built_index: InvertedIndex | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def cache_stats(self) -> dict[str, ResourceStats]:
        """Deprecated alias for :attr:`resource_stats`."""
        warnings.warn(
            "FacetExtractionResult.cache_stats is deprecated; use "
            "resource_stats (values are repro.observability.ResourceStats)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.resource_stats

    def facet_term_strings(self) -> list[str]:
        """Just the selected terms, ranked by score."""
        return [candidate.term for candidate in self.facet_terms]

    def interface(self, store: DocumentStore | None = None) -> FacetedInterface:
        """Deprecated: build the faceted browsing interface over the result.

        .. deprecated:: 1.3
           The interface moved to an explicit build/open lifecycle.  Use
           :meth:`FacetedInterface.from_result` for in-memory browsing, or
           compile a serving artifact with
           :meth:`repro.serving.FacetIndex.build` and reopen it in O(1)
           with :meth:`repro.serving.FacetIndex.open`.
        """
        warnings.warn(
            "FacetExtractionResult.interface() is deprecated; use "
            "FacetedInterface.from_result(result) for in-memory browsing "
            "or repro.serving.FacetIndex.build()/.open() for serving",
            DeprecationWarning,
            stacklevel=2,
        )
        return FacetedInterface.from_result(self, store=store)


class FacetExtractor:
    """The unsupervised facet-extraction pipeline of Section IV.

    Parameters
    ----------
    extractors:
        Term extractors for Step 1 (any subset of NE / Yahoo / Wikipedia).
    resources:
        External resources for Step 2 (any subset of Google / WordNet /
        Wikipedia Graph / Wikipedia Synonyms, or a composite).
    top_k:
        Facet terms to keep after the Figure 3 ranking.
    statistic:
        ``"log-likelihood"`` (paper) or ``"chi-square"`` (ablation).
    build_hierarchies:
        Skip hierarchy construction when False (recall studies only
        need the flat term set).
    parallel:
        Batch-execution settings for Steps 1-2 (worker count, chunk
        size, persistent cache path).  Serial by default; results are
        bit-for-bit identical at every worker count.
    resource_cache:
        An already-open persistent cache to attach to the resources;
        overrides ``parallel.cache_path``.  Useful when several
        pipelines should share one store.
    cache_fingerprint:
        Extra namespace component for persistent-cache entries (e.g.
        :meth:`~repro.config.ReproConfig.cache_fingerprint`), keeping
        differently-configured runs from sharing answers.
    observability:
        Tracing/metrics bundle; None (default) installs the zero-cost
        no-op bundle.
    """

    def __init__(
        self,
        extractors: list[TermExtractor],
        resources: list[ExternalResource],
        top_k: int = DEFAULT_TOP_K,
        statistic: str = "log-likelihood",
        require_both_shifts: bool = True,
        subsumption_threshold: float = 0.8,
        build_hierarchies: bool = True,
        edge_validator: Callable[[str, str], bool] | None = None,
        parallel: ParallelConfig | None = None,
        resource_cache: PersistentResourceCache | None = None,
        cache_fingerprint: str = "",
        observability: Observability | None = None,
    ) -> None:
        if not extractors:
            raise ValueError("FacetExtractor needs at least one extractor")
        if not resources:
            raise ValueError("FacetExtractor needs at least one resource")
        self._extractors = list(extractors)
        self._resources = list(resources)
        self._top_k = top_k
        self._statistic = statistic
        self._require_both_shifts = require_both_shifts
        self._subsumption_threshold = subsumption_threshold
        self._build_hierarchies = build_hierarchies
        self._edge_validator = edge_validator
        self._parallel = parallel or ParallelConfig(workers=1)
        self.observability = observability or DISABLED
        cache = resource_cache
        if cache is None and self._parallel.cache_path:
            cache = PersistentResourceCache(self._parallel.cache_path)
        self.resource_cache = cache
        if cache is not None:
            for resource in self._resources:
                namespace = resource.cache_namespace()
                if cache_fingerprint:
                    namespace = f"{namespace}|{cache_fingerprint}"
                resource.attach_cache(cache, namespace=namespace)

    @property
    def parallel(self) -> ParallelConfig:
        """The batch-execution settings this pipeline runs with."""
        return self._parallel

    @property
    def extractors(self) -> list[TermExtractor]:
        """The Step-1 extractors (shared list — do not mutate)."""
        return self._extractors

    @property
    def resources(self) -> list[ExternalResource]:
        """The Step-2 resources (shared list — do not mutate)."""
        return self._resources

    @property
    def top_k(self) -> int:
        """Facet terms kept after the Figure 3 ranking."""
        return self._top_k

    @property
    def statistic(self) -> str:
        """Ranking statistic (``log-likelihood`` or ``chi-square``)."""
        return self._statistic

    @property
    def require_both_shifts(self) -> bool:
        """Whether candidates need both shifts positive."""
        return self._require_both_shifts

    @property
    def subsumption_threshold(self) -> float:
        """``P(x | y)`` cut-off used for hierarchy construction."""
        return self._subsumption_threshold

    @property
    def build_hierarchies(self) -> bool:
        """Whether hierarchy construction runs after selection."""
        return self._build_hierarchies

    @property
    def edge_validator(self) -> Callable[[str, str], bool] | None:
        """Independent-evidence check for subsumption edges, if any."""
        return self._edge_validator

    def _start_prefetcher(self) -> ResourcePrefetcher | None:
        """Build the cache warm-up stage when the configuration allows it.

        Prefetch pays off only when annotation chunks complete while
        others are still running (a thread-backed pool) — with a serial
        or process-backed run the warm-up would just serialize in front
        of contextualization, so it stays off.
        """
        settings = self._parallel
        if not (
            settings.prefetch and settings.enabled and settings.backend == "thread"
        ):
            return None
        return ResourcePrefetcher(self._prefetch_terms)

    def _prefetch_terms(self, terms: Sequence[str]) -> None:
        """Warm every resource's caches for ``terms`` (answers discarded)."""
        batch = list(terms)
        for resource in self._resources:
            resource.context_terms_many(batch)

    def run(
        self,
        documents: list[Document],
        store: DocumentStore | None = None,
    ) -> FacetExtractionResult:
        """Extract facets from a document collection.

        ``store``, when given, is carried onto the result so
        :meth:`FacetExtractionResult.interface` reuses it instead of
        building a fresh one.
        """
        obs = self.observability
        timings = SpanTimings()
        log.info(
            "pipeline.start",
            documents=len(documents),
            workers=self._parallel.workers,
            backend=self._parallel.backend,
        )
        with obs.collect(), obs.tracer.span(
            "pipeline",
            documents=len(documents),
            workers=self._parallel.workers,
            backend=self._parallel.backend,
        ) as pipeline_span:
            annotated, contextualized, facet_terms, hierarchies = self._run_stages(
                documents, timings, obs
            )
            pipeline_span.add("facet_terms", len(facet_terms))
            pipeline_span.add("facets", len(hierarchies))
            if obs.metrics is not None:
                for stage in STAGES:
                    obs.metrics.record_time(
                        f"stage.{stage}.seconds", getattr(timings, stage)
                    )
        log.info(
            "pipeline.done",
            documents=len(documents),
            facet_terms=len(facet_terms),
            facets=len(hierarchies),
            seconds=round(timings.total, 3),
        )
        return FacetExtractionResult(
            documents=list(documents),
            annotated=annotated,
            contextualized=contextualized,
            facet_terms=facet_terms,
            hierarchies=hierarchies,
            timings=timings,
            resource_stats={
                resource.cache_namespace(): resource.cache_stats
                for resource in self._resources
            },
            store=store,
        )

    def _run_stages(
        self,
        documents: list[Document],
        timings: SpanTimings,
        obs: Observability,
    ) -> tuple[
        AnnotatedDatabase,
        ContextualizedDatabase,
        list[FacetTermCandidate],
        list[FacetHierarchy],
    ]:
        prefetcher = self._start_prefetcher()
        on_important = None
        if prefetcher is not None:

            def on_important(chunk_result: list[tuple[str, list[str]]]) -> None:
                terms: list[str] = []
                for _doc_id, important in chunk_result:
                    terms.extend(important)
                prefetcher.submit(terms)

        try:
            with obs.tracer.span("stage:annotation") as span:
                start = time.perf_counter()
                annotated = annotate_database(
                    documents,
                    self._extractors,
                    self._parallel,
                    obs=obs,
                    on_important=on_important,
                )
                timings.annotation = time.perf_counter() - start
                span.add("documents", len(documents))

            with obs.tracer.span("stage:contextualization") as span:
                start = time.perf_counter()
                contextualized = contextualize(
                    annotated, self._resources, self._parallel, obs=obs
                )
                timings.contextualization = time.perf_counter() - start
                span.add("documents", len(documents))
        finally:
            # Drain after contextualization: still-running warm-ups are
            # coalesced with main-path queries by single-flight, and the
            # prefetcher's private metrics merge into the run exactly
            # once regardless of scheduling.
            if prefetcher is not None:
                prefetcher.drain(into=obs.metrics)

        with obs.tracer.span("stage:selection") as span:
            start = time.perf_counter()
            facet_terms = select_facet_terms(
                contextualized,
                top_k=self._top_k,
                statistic=self._statistic,
                require_both_shifts=self._require_both_shifts,
            )
            timings.selection = time.perf_counter() - start
            span.add("selected", len(facet_terms))

        hierarchies: list[FacetHierarchy] = []
        if self._build_hierarchies:
            with obs.tracer.span("stage:hierarchy") as span:
                start = time.perf_counter()
                hierarchies = build_facet_hierarchies(
                    facet_terms,
                    contextualized,
                    threshold=self._subsumption_threshold,
                    edge_validator=self._edge_validator,
                )
                timings.hierarchy = time.perf_counter() - start
                span.add("facets", len(hierarchies))
        return annotated, contextualized, facet_terms, hierarchies


def __getattr__(name: str):
    if name == "StageTimings":
        warnings.warn(
            "repro.core.pipeline.StageTimings is deprecated; use "
            "repro.observability.SpanTimings",
            DeprecationWarning,
            stacklevel=2,
        )
        return SpanTimings
    if name == "CacheStats":
        warnings.warn(
            "repro.core.pipeline.CacheStats is deprecated; use "
            "repro.observability.ResourceStats",
            DeprecationWarning,
            stacklevel=2,
        )
        return ResourceStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
