"""End-to-end facet extraction: the public entry point of the library.

:class:`FacetExtractor` wires Steps 1-3 and hierarchy construction
together; :class:`FacetExtractionResult` carries every intermediate so
the evaluation harness (and curious users) can inspect each stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..config import ParallelConfig
from ..corpus.document import Document
from ..db.inverted_index import InvertedIndex
from ..db.resource_cache import PersistentResourceCache
from ..db.store import DocumentStore
from ..extractors.base import TermExtractor
from ..resources.base import CacheStats, ExternalResource
from .annotate import AnnotatedDatabase, annotate_database
from .contextualize import ContextualizedDatabase, contextualize
from .hierarchy import FacetHierarchy, build_facet_hierarchies
from .interface import FacetedInterface
from .selection import DEFAULT_TOP_K, FacetTermCandidate, select_facet_terms


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage (the Section V-D numbers)."""

    annotation: float = 0.0
    contextualization: float = 0.0
    selection: float = 0.0
    hierarchy: float = 0.0

    @property
    def total(self) -> float:
        return self.annotation + self.contextualization + self.selection + self.hierarchy


@dataclass
class FacetExtractionResult:
    """Everything the pipeline produced."""

    documents: list[Document]
    annotated: AnnotatedDatabase
    contextualized: ContextualizedDatabase
    facet_terms: list[FacetTermCandidate]
    hierarchies: list[FacetHierarchy] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    cache_stats: dict[str, CacheStats] = field(default_factory=dict)
    """Per-resource cache counters observed during this run."""

    def facet_term_strings(self) -> list[str]:
        """Just the selected terms, ranked by score."""
        return [candidate.term for candidate in self.facet_terms]

    def interface(self, store: DocumentStore | None = None) -> FacetedInterface:
        """Build the faceted browsing interface over the result."""
        if store is None:
            store = DocumentStore(self.documents)
        index = InvertedIndex()
        index.add_documents(self.documents)
        return FacetedInterface(store, self.hierarchies, index=index)


class FacetExtractor:
    """The unsupervised facet-extraction pipeline of Section IV.

    Parameters
    ----------
    extractors:
        Term extractors for Step 1 (any subset of NE / Yahoo / Wikipedia).
    resources:
        External resources for Step 2 (any subset of Google / WordNet /
        Wikipedia Graph / Wikipedia Synonyms, or a composite).
    top_k:
        Facet terms to keep after the Figure 3 ranking.
    statistic:
        ``"log-likelihood"`` (paper) or ``"chi-square"`` (ablation).
    build_hierarchies:
        Skip hierarchy construction when False (recall studies only
        need the flat term set).
    parallel:
        Batch-execution settings for Steps 1-2 (worker count, chunk
        size, persistent cache path).  Serial by default; results are
        bit-for-bit identical at every worker count.
    resource_cache:
        An already-open persistent cache to attach to the resources;
        overrides ``parallel.cache_path``.  Useful when several
        pipelines should share one store.
    cache_fingerprint:
        Extra namespace component for persistent-cache entries (e.g.
        :meth:`~repro.config.ReproConfig.cache_fingerprint`), keeping
        differently-configured runs from sharing answers.
    """

    def __init__(
        self,
        extractors: list[TermExtractor],
        resources: list[ExternalResource],
        top_k: int = DEFAULT_TOP_K,
        statistic: str = "log-likelihood",
        require_both_shifts: bool = True,
        subsumption_threshold: float = 0.8,
        build_hierarchies: bool = True,
        edge_validator=None,
        parallel: ParallelConfig | None = None,
        resource_cache: PersistentResourceCache | None = None,
        cache_fingerprint: str = "",
    ) -> None:
        if not extractors:
            raise ValueError("FacetExtractor needs at least one extractor")
        if not resources:
            raise ValueError("FacetExtractor needs at least one resource")
        self._extractors = list(extractors)
        self._resources = list(resources)
        self._top_k = top_k
        self._statistic = statistic
        self._require_both_shifts = require_both_shifts
        self._subsumption_threshold = subsumption_threshold
        self._build_hierarchies = build_hierarchies
        self._edge_validator = edge_validator
        self._parallel = parallel or ParallelConfig(workers=1)
        cache = resource_cache
        if cache is None and self._parallel.cache_path:
            cache = PersistentResourceCache(self._parallel.cache_path)
        self.resource_cache = cache
        if cache is not None:
            for resource in self._resources:
                namespace = resource.cache_namespace()
                if cache_fingerprint:
                    namespace = f"{namespace}|{cache_fingerprint}"
                resource.attach_cache(cache, namespace=namespace)

    @property
    def parallel(self) -> ParallelConfig:
        """The batch-execution settings this pipeline runs with."""
        return self._parallel

    def run(self, documents: list[Document]) -> FacetExtractionResult:
        """Extract facets from a document collection."""
        timings = StageTimings()

        start = time.perf_counter()
        annotated = annotate_database(documents, self._extractors, self._parallel)
        timings.annotation = time.perf_counter() - start

        start = time.perf_counter()
        contextualized = contextualize(annotated, self._resources, self._parallel)
        timings.contextualization = time.perf_counter() - start

        start = time.perf_counter()
        facet_terms = select_facet_terms(
            contextualized,
            top_k=self._top_k,
            statistic=self._statistic,
            require_both_shifts=self._require_both_shifts,
        )
        timings.selection = time.perf_counter() - start

        hierarchies: list[FacetHierarchy] = []
        if self._build_hierarchies:
            start = time.perf_counter()
            hierarchies = build_facet_hierarchies(
                facet_terms,
                contextualized,
                threshold=self._subsumption_threshold,
                edge_validator=self._edge_validator,
            )
            timings.hierarchy = time.perf_counter() - start

        return FacetExtractionResult(
            documents=list(documents),
            annotated=annotated,
            contextualized=contextualized,
            facet_terms=facet_terms,
            hierarchies=hierarchies,
            timings=timings,
            cache_stats={
                resource.cache_namespace(): resource.cache_stats
                for resource in self._resources
            },
        )
