"""The paper's core contribution: unsupervised facet-term extraction.

Pipeline (Section IV):

1. :mod:`repro.core.annotate` — identify important terms per document
   with one or more extractors (Figure 1);
2. :mod:`repro.core.contextualize` — expand each document with context
   terms from external resources (Figure 2);
3. :mod:`repro.core.selection` — compare term distributions between the
   original and contextualized databases with the shift functions
   (:mod:`repro.core.shifts`) and Dunning's log-likelihood statistic
   (:mod:`repro.core.likelihood`) to select facet terms (Figure 3);
4. :mod:`repro.core.subsumption` + :mod:`repro.core.hierarchy` — build
   per-facet hierarchies with Sanderson–Croft subsumption;
5. :mod:`repro.core.interface` — the OLAP-style faceted browsing layer.

:class:`repro.core.pipeline.FacetExtractor` ties the steps together.
"""

from .annotate import AnnotatedDatabase, annotate_database
from .contextualize import ContextualizedDatabase, contextualize
from .distributional import divergence_scores, kl_divergence, skew_divergence
from .dynamic import DynamicFaceter
from .archive import FacetArchive
from .export import from_dict, to_dict, to_flat_rows, to_json, to_text_tree
from .persistence import load_expansions, save_expansions
from .evidence import LinkEvidence
from .shifts import frequency_shift, rank_shift
from .likelihood import log_likelihood_ratio
from .selection import FacetTermCandidate, select_facet_terms
from .subsumption import SubsumptionHierarchy, build_subsumption_hierarchy
from .hierarchy import FacetHierarchy, FacetNode, build_facet_hierarchies
from .pipeline import FacetExtractionResult, FacetExtractor
from .interface import FacetedInterface

__all__ = [
    "AnnotatedDatabase",
    "annotate_database",
    "ContextualizedDatabase",
    "contextualize",
    "divergence_scores",
    "DynamicFaceter",
    "FacetArchive",
    "to_dict",
    "to_json",
    "to_text_tree",
    "to_flat_rows",
    "from_dict",
    "save_expansions",
    "load_expansions",
    "kl_divergence",
    "skew_divergence",
    "LinkEvidence",
    "frequency_shift",
    "rank_shift",
    "log_likelihood_ratio",
    "FacetTermCandidate",
    "select_facet_terms",
    "SubsumptionHierarchy",
    "build_subsumption_hierarchy",
    "FacetHierarchy",
    "FacetNode",
    "build_facet_hierarchies",
    "FacetExtractionResult",
    "FacetExtractor",
    "FacetedInterface",
]
