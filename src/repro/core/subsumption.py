"""Sanderson-Croft subsumption hierarchies.

Sanderson & Croft (SIGIR'99): term ``x`` subsumes term ``y`` when

    P(x | y) >= threshold   and   P(y | x) < 1

estimated from document co-occurrence.  The hierarchy attaches each term
to its most specific subsumer; terms nobody subsumes become roots.  The
paper uses this algorithm both as the final hierarchy builder over the
selected facet terms and — without the expansion pipeline — as the
baseline of Figure 5.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import HierarchyError

#: The subsumption threshold from Sanderson & Croft.
DEFAULT_THRESHOLD = 0.8


@dataclass
class SubsumptionHierarchy:
    """Parent/children structure produced by the subsumption test."""

    parents: dict[str, str | None] = field(default_factory=dict)
    children: dict[str, list[str]] = field(default_factory=dict)

    @property
    def roots(self) -> list[str]:
        """Terms with no parent, sorted for determinism."""
        return sorted(t for t, p in self.parents.items() if p is None)

    def terms(self) -> list[str]:
        return list(self.parents)

    def parent(self, term: str) -> str | None:
        if term not in self.parents:
            raise HierarchyError(f"unknown term: {term!r}")
        return self.parents[term]

    def children_of(self, term: str) -> list[str]:
        return self.children.get(term, [])

    def depth(self, term: str) -> int:
        """0 for roots; follows parent pointers."""
        depth = 0
        current = self.parent(term)
        while current is not None:
            depth += 1
            current = self.parents.get(current)
        return depth

    def subtree(self, term: str) -> list[str]:
        """Pre-order subtree rooted at ``term`` (inclusive)."""
        result = [term]
        stack = list(reversed(self.children_of(term)))
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self.children_of(current)))
        return result


def build_subsumption_hierarchy(
    terms: list[str],
    doc_sets: dict[str, set[str]],
    threshold: float = DEFAULT_THRESHOLD,
    max_df_ratio: float | None = None,
    max_parent_df: int | None = None,
    edge_validator: Callable[[str, str], bool] | None = None,
    overlap: Callable[[str, str], int] | None = None,
) -> SubsumptionHierarchy:
    """Build the hierarchy for ``terms``.

    Parameters
    ----------
    terms:
        The vocabulary to organize.
    doc_sets:
        term -> set of document ids containing the term (in whichever
        database the caller wants co-occurrence measured: original for
        the baseline, contextualized for the real pipeline).
    threshold:
        ``P(x | y)`` cut-off (0.8 in Sanderson & Croft).
    max_df_ratio:
        When set, a parent may cover at most this many times the
        documents of its child.  Pure Sanderson-Croft (None) lets a
        near-universal term subsume every rare orphan, collapsing the
        forest into one tree; the facet builder passes a finite ratio,
        in the spirit of the grouping step of Dakka et al. (CIKM'05).
    max_parent_df:
        When set, terms covering more documents than this cannot act as
        parents (they trivially subsume everything) — they remain in
        the forest as roots.
    edge_validator:
        Optional independent-evidence check ``f(child, parent)``; when
        given, subsumption edges lacking evidence are rejected (see
        :class:`repro.core.evidence.LinkEvidence`).
    overlap:
        Optional co-occurrence provider ``f(x, y) -> |docs(x) & docs(y)|``.
        The default intersects the ``doc_sets`` entries directly; the
        incremental pipeline supplies a version-cached provider so
        unchanged pairs are not re-intersected.  Any provider must
        return exactly the intersection size — the hierarchy is then
        identical by construction.
    """
    if not 0 < threshold <= 1:
        raise HierarchyError(f"threshold must be in (0, 1], got {threshold}")
    if max_df_ratio is not None and max_df_ratio < 1:
        raise HierarchyError(f"max_df_ratio must be >= 1, got {max_df_ratio}")
    if overlap is None:

        def overlap(x: str, y: str) -> int:
            return len(doc_sets[x] & doc_sets[y])

    present = [t for t in terms if doc_sets.get(t)]
    hierarchy = SubsumptionHierarchy(
        parents={t: None for t in present},
        children={t: [] for t in present},
    )
    # For each term y, find subsumers x and keep the most specific one
    # (smallest document set strictly larger-than-or-equal coverage).
    for y in present:
        docs_y = doc_sets[y]
        best_parent: str | None = None
        best_df = None
        for x in present:
            if x == y:
                continue
            docs_x = doc_sets[x]
            if max_parent_df is not None and len(docs_x) > max_parent_df:
                continue
            shared = overlap(x, y)
            p_x_given_y = shared / len(docs_y)
            p_y_given_x = shared / len(docs_x)
            if max_df_ratio is not None and len(docs_x) > max_df_ratio * len(docs_y):
                continue
            if edge_validator is not None and not edge_validator(y, x):
                continue
            if p_x_given_y >= threshold and p_y_given_x < 1.0:
                if best_df is None or len(docs_x) < best_df:
                    best_parent = x
                    best_df = len(docs_x)
        if best_parent is not None and not _creates_cycle(
            hierarchy.parents, y, best_parent
        ):
            hierarchy.parents[y] = best_parent
            hierarchy.children[best_parent].append(y)
    # order: each child list is sorted in place; no cross-entry order leaks
    for kids in hierarchy.children.values():
        kids.sort()
    return hierarchy


def _creates_cycle(
    parents: dict[str, str | None], child: str, candidate_parent: str
) -> bool:
    """Would setting ``child.parent = candidate_parent`` form a cycle?"""
    current: str | None = candidate_parent
    while current is not None:
        if current == child:
            return True
        current = parents.get(current)
    return False
