"""The :class:`World` — taxonomy, entities, and topics in one container.

Everything downstream (corpus generation, the simulated Wikipedia,
WordNet, and Google, and the simulated annotators) reads from a single
``World`` instance, so all of them are mutually consistent.
"""

from __future__ import annotations

import random
from collections import defaultdict

from ..config import ReproConfig
from ..errors import KnowledgeBaseError
from ..text.tokenizer import normalize_term
from .entities import build_entities
from .schema import Entity, EntityKind, Topic
from .taxonomy import FacetTaxonomy, default_taxonomy
from .topics import TOPICS


class World:
    """Immutable ground-truth world for one configuration."""

    def __init__(
        self,
        taxonomy: FacetTaxonomy,
        entities: tuple[Entity, ...],
        topics: tuple[Topic, ...],
    ) -> None:
        self.taxonomy = taxonomy
        self.entities = entities
        self.topics = topics
        self._by_name: dict[str, Entity] = {}
        self._by_surface: dict[str, Entity] = {}
        self._by_kind: dict[EntityKind, list[Entity]] = defaultdict(list)
        self._by_facet: dict[str, list[Entity]] = defaultdict(list)
        for entity in entities:
            if entity.name in self._by_name:
                raise KnowledgeBaseError(f"duplicate entity: {entity.name!r}")
            self._by_name[entity.name] = entity
            self._by_kind[entity.kind].append(entity)
            for surface in entity.all_names:
                key = normalize_term(surface)
                if key and key not in self._by_surface:
                    self._by_surface[key] = entity
            for term in entity.facet_terms:
                self._by_facet[term].append(entity)
        self._validate_topics()

    def _validate_topics(self) -> None:
        for topic in self.topics:
            for term in topic.facet_terms:
                if term not in self.taxonomy:
                    raise KnowledgeBaseError(
                        f"topic {topic.name!r} references unknown facet "
                        f"term {term!r}"
                    )
            for hint in topic.facet_hints:
                if hint not in self.taxonomy:
                    raise KnowledgeBaseError(
                        f"topic {topic.name!r} facet hint {hint!r} is not "
                        "in the taxonomy"
                    )

    # -- entity lookups -----------------------------------------------------------

    def entity(self, name: str) -> Entity:
        """Entity by canonical name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KnowledgeBaseError(f"unknown entity: {name!r}") from None

    def find_by_surface(self, surface: str) -> Entity | None:
        """Entity whose canonical name or any variant matches ``surface``."""
        return self._by_surface.get(normalize_term(surface))

    def entities_of_kind(self, kind: EntityKind) -> tuple[Entity, ...]:
        """All entities of one kind."""
        return tuple(self._by_kind.get(kind, ()))

    def entities_under_facet(self, term: str) -> tuple[Entity, ...]:
        """Entities whose facet paths include ``term``."""
        canonical = self.taxonomy.canonical(term)
        if canonical is None:
            return ()
        return tuple(self._by_facet.get(canonical, ()))

    def surfaces(self) -> tuple[str, ...]:
        """Every known surface form (canonical names and variants)."""
        return tuple(
            surface
            for entity in self.entities
            for surface in entity.all_names
        )

    # -- sampling -------------------------------------------------------------------

    def sample_entities(
        self,
        rng: random.Random,
        count: int,
        kinds: tuple[EntityKind, ...] = (),
        facet_hints: tuple[str, ...] = (),
        prominence_exponent: float = 1.0,
    ) -> list[Entity]:
        """Sample distinct entities weighted by ``prominence ** exponent``.

        When ``facet_hints`` is non-empty, roughly half the sample is drawn
        from entities under those facets (topic protagonists) and the rest
        from the requested kinds (supporting cast).  Exponents below 1
        flatten the prominence skew — multi-source corpora (Newsblaster)
        reach deeper into the entity tail than a single paper does.
        """
        pool: list[Entity] = []
        if facet_hints:
            for hint in facet_hints:
                pool.extend(self.entities_under_facet(hint))
        kind_pool: list[Entity] = []
        for kind in kinds:
            kind_pool.extend(self._by_kind.get(kind, ()))
        if not pool and not kind_pool:
            pool = list(self.entities)
        chosen: list[Entity] = []
        seen: set[str] = set()
        want_hinted = count if not kind_pool else max(1, count // 2)
        for source, want in ((pool, want_hinted), (kind_pool, count)):
            attempts = 0
            while source and len(chosen) < want and attempts < count * 20:
                attempts += 1
                entity = self._weighted_choice(rng, source, prominence_exponent)
                if entity.name not in seen:
                    seen.add(entity.name)
                    chosen.append(entity)
        return chosen[:count]

    @staticmethod
    def weighted_choice(
        rng: random.Random, pool: list[Entity], exponent: float = 1.0
    ) -> Entity:
        """Prominence-weighted choice from a non-empty entity pool."""
        return World._weighted_choice(rng, pool, exponent)

    @staticmethod
    def _weighted_choice(
        rng: random.Random, pool: list[Entity], exponent: float = 1.0
    ) -> Entity:
        weights = [entity.prominence**exponent for entity in pool]
        total = sum(weights)
        if total <= 0:
            return rng.choice(pool)
        point = rng.uniform(0, total)
        acc = 0.0
        for entity, weight in zip(pool, weights, strict=True):
            acc += weight
            if acc >= point:
                return entity
        return pool[-1]

    def sample_topic(self, rng: random.Random) -> Topic:
        """Sample a topic according to the configured news mix."""
        total = sum(topic.weight for topic in self.topics)
        point = rng.uniform(0, total)
        acc = 0.0
        for topic in self.topics:
            acc += topic.weight
            if acc >= point:
                return topic
        return self.topics[-1]


_WORLD_CACHE: dict[int, World] = {}


def build_world(config: ReproConfig | None = None) -> World:
    """Build (and memoize) the world for a configuration seed."""
    config = config or ReproConfig()
    cached = _WORLD_CACHE.get(config.seed)
    if cached is None:
        taxonomy = default_taxonomy()
        cached = World(taxonomy, build_entities(config, taxonomy), TOPICS)
        _WORLD_CACHE[config.seed] = cached
    return cached
