"""Newsroom topic definitions for the article generator.

Each topic names the facet terms a story on that topic implies (all of
which exist in the ground-truth taxonomy), the content vocabulary that the
generator weaves into sentences, and hints about which entities take part.
The mix of weights roughly follows a general-interest daily paper.
"""

from __future__ import annotations

from .schema import EntityKind, Topic

_P = EntityKind.PERSON
_O = EntityKind.ORGANIZATION
_L = EntityKind.LOCATION
_E = EntityKind.EVENT

TOPICS: tuple[Topic, ...] = (
    Topic(
        name="elections",
        facet_terms=("Politics", "Elections", "Political Leaders", "Government"),
        vocabulary=(
            "campaign", "ballot", "voter", "poll", "candidate", "election",
            "primary", "debate", "senate", "congress", "governor", "district",
            "speech", "platform", "margin", "turnout", "incumbent",
        ),
        entity_kinds=(_P, _L),
        facet_hints=("Political Leaders",),
        weight=3.0,
    ),
    Topic(
        name="diplomacy",
        facet_terms=("Politics", "Diplomacy", "Summits", "Political Leaders"),
        vocabulary=(
            "summit", "treaty", "negotiation", "minister", "delegation",
            "ambassador", "agreement", "sanctions", "talks", "resolution",
            "alliance", "statement", "visit", "relations", "accord",
        ),
        entity_kinds=(_P, _L, _O),
        facet_hints=("Political Leaders", "International Organizations"),
        weight=2.5,
    ),
    Topic(
        name="war",
        facet_terms=("Conflicts", "War", "National Security", "Military Leaders"),
        vocabulary=(
            "troops", "military", "forces", "soldier", "attack", "battle",
            "insurgent", "bombing", "commander", "casualty", "strike",
            "occupation", "convoy", "checkpoint", "offensive", "withdrawal",
        ),
        entity_kinds=(_P, _L, _E),
        facet_hints=("Military Leaders", "Political Leaders"),
        weight=2.5,
    ),
    Topic(
        name="terrorism",
        facet_terms=("Conflicts", "Terrorism", "National Security", "Crime"),
        vocabulary=(
            "attack", "plot", "security", "explosion", "suspect", "bomb",
            "investigation", "intelligence", "threat", "arrest", "cell",
            "extremist", "police", "warning", "alert",
        ),
        entity_kinds=(_P, _L, _O),
        facet_hints=("Government Agencies", "Political Leaders"),
        weight=1.5,
    ),
    Topic(
        name="markets",
        facet_terms=("Markets", "Stock Market", "Economy", "Financial Firms"),
        vocabulary=(
            "shares", "investor", "trading", "index", "profit", "stock",
            "earnings", "quarter", "analyst", "revenue", "rally", "decline",
            "portfolio", "dividend", "forecast", "exchange",
        ),
        entity_kinds=(_O, _P),
        facet_hints=("Corporations", "Business Leaders"),
        weight=2.5,
    ),
    Topic(
        name="corporate",
        facet_terms=("Corporations", "Business", "Mergers", "Business Leaders"),
        vocabulary=(
            "merger", "acquisition", "deal", "executive", "board", "chief",
            "shareholder", "bid", "takeover", "restructuring", "division",
            "subsidiary", "contract", "partnership", "strategy",
        ),
        entity_kinds=(_O, _P),
        facet_hints=("Corporations", "Business Leaders"),
        weight=2.0,
    ),
    Topic(
        name="economy",
        facet_terms=("Economy", "Inflation", "Unemployment", "Trade"),
        vocabulary=(
            "growth", "prices", "rates", "consumer", "spending", "jobs",
            "wages", "recession", "budget", "deficit", "exports", "imports",
            "manufacturing", "demand", "economists",
        ),
        entity_kinds=(_O, _L, _P),
        facet_hints=("Central Banks", "Political Leaders"),
        weight=2.0,
    ),
    Topic(
        name="technology",
        facet_terms=("Technology", "Computers", "Internet", "Technology Companies"),
        vocabulary=(
            "software", "device", "computer", "network", "startup", "chip",
            "platform", "website", "users", "innovation", "product",
            "launch", "patent", "engineers", "data", "gadget",
        ),
        entity_kinds=(_O, _P),
        facet_hints=("Technology Companies", "Business Leaders"),
        weight=2.0,
    ),
    Topic(
        name="health",
        facet_terms=("Health", "Medicine", "Public Health", "Epidemics"),
        vocabulary=(
            "patients", "doctors", "virus", "vaccine", "hospital", "disease",
            "treatment", "outbreak", "symptoms", "clinic", "infection",
            "drug", "trial", "researchers", "epidemic", "flu",
        ),
        entity_kinds=(_O, _P, _L),
        facet_hints=("Hospitals", "Medical Researchers", "Government Agencies"),
        weight=2.0,
    ),
    Topic(
        name="baseball",
        facet_terms=("Sports", "Baseball", "Athletes", "Baseball Players"),
        vocabulary=(
            "inning", "pitcher", "hitter", "season", "game", "team",
            "playoffs", "stadium", "coach", "league", "batting", "roster",
            "victory", "defeat", "championship", "fans",
        ),
        entity_kinds=(_P, _O, _L),
        facet_hints=("Baseball Players",),
        weight=2.0,
    ),
    Topic(
        name="football",
        facet_terms=("Sports", "Football", "Athletes", "Football Players"),
        vocabulary=(
            "quarterback", "touchdown", "season", "game", "team", "defense",
            "offense", "coach", "league", "playoffs", "yards", "kickoff",
            "injury", "draft", "stadium",
        ),
        entity_kinds=(_P, _O),
        facet_hints=("Football Players",),
        weight=1.5,
    ),
    Topic(
        name="tennis",
        facet_terms=("Sports", "Tennis", "Athletes", "Tennis Players"),
        vocabulary=(
            "match", "tournament", "set", "serve", "court", "final",
            "champion", "ranking", "title", "rally", "seed", "umpire",
        ),
        entity_kinds=(_P, _E),
        facet_hints=("Tennis Players",),
        weight=1.0,
    ),
    Topic(
        name="weather",
        facet_terms=("Nature", "Weather", "Storms", "Natural Disasters"),
        vocabulary=(
            "storm", "rain", "wind", "temperature", "forecast", "flooding",
            "snow", "hurricane", "damage", "evacuation", "coast", "residents",
            "emergency", "rainfall", "drought", "heat",
        ),
        entity_kinds=(_L, _E),
        facet_hints=("Natural Disasters",),
        weight=1.5,
    ),
    Topic(
        name="environment",
        facet_terms=("Environment", "Climate Change", "Conservation", "Pollution"),
        vocabulary=(
            "emissions", "climate", "warming", "energy", "carbon", "species",
            "habitat", "forest", "river", "wildlife", "pollution",
            "conservation", "ecosystem", "scientists", "glacier",
        ),
        entity_kinds=(_L, _O, _P),
        facet_hints=("International Organizations", "Scientists"),
        weight=1.2,
    ),
    Topic(
        name="crime",
        facet_terms=("Crime", "Violence", "Courts", "Fraud"),
        vocabulary=(
            "police", "charges", "trial", "jury", "prosecutor", "arrest",
            "investigation", "verdict", "sentence", "detective", "robbery",
            "lawyer", "testimony", "evidence", "prison",
        ),
        entity_kinds=(_P, _L, _O),
        facet_hints=("Courts", "Government Agencies"),
        weight=2.0,
    ),
    Topic(
        name="education",
        facet_terms=("Education", "Schools", "Higher Education", "Universities"),
        vocabulary=(
            "students", "teachers", "school", "curriculum", "tuition",
            "classroom", "graduation", "campus", "faculty", "scholarship",
            "enrollment", "test", "literacy", "principal",
        ),
        entity_kinds=(_O, _P, _L),
        facet_hints=("Universities",),
        weight=1.2,
    ),
    Topic(
        name="entertainment",
        facet_terms=("Culture", "Film", "Actors", "Cultural Events"),
        vocabulary=(
            "movie", "film", "director", "premiere", "audience", "studio",
            "screen", "award", "role", "script", "festival", "box",
            "office", "celebrity", "critics",
        ),
        entity_kinds=(_P, _O, _E),
        facet_hints=("Actors", "Media Companies"),
        weight=1.5,
    ),
    Topic(
        name="music",
        facet_terms=("Culture", "Music", "Musicians", "Concerts"),
        vocabulary=(
            "album", "song", "concert", "tour", "band", "singer", "record",
            "stage", "audience", "melody", "chart", "producer", "studio",
        ),
        entity_kinds=(_P, _E, _O),
        facet_hints=("Musicians",),
        weight=1.2,
    ),
    Topic(
        name="religion",
        facet_terms=("Religion", "Religious Leaders", "Culture"),
        vocabulary=(
            "church", "faith", "prayer", "congregation", "worship", "clergy",
            "pilgrimage", "ceremony", "tradition", "temple", "mosque",
            "parish", "sermon",
        ),
        entity_kinds=(_P, _L, _O),
        facet_hints=("Religious Leaders",),
        weight=0.8,
    ),
    Topic(
        name="immigration",
        facet_terms=("Immigration", "Politics", "Poverty", "Government"),
        vocabulary=(
            "border", "visa", "asylum", "citizenship", "refugees", "migrants",
            "deportation", "workers", "permits", "legislation", "policy",
            "community", "families",
        ),
        entity_kinds=(_P, _L, _O),
        facet_hints=("Political Leaders", "Government Agencies"),
        weight=1.0,
    ),
    Topic(
        name="realestate",
        facet_terms=("Real Estate", "Economy", "Business"),
        vocabulary=(
            "housing", "mortgage", "property", "apartment", "construction",
            "developer", "rent", "buyers", "listing", "neighborhood",
            "prices", "building", "tenants", "brokers",
        ),
        entity_kinds=(_O, _L, _P),
        facet_hints=("Corporations",),
        weight=1.0,
    ),
    Topic(
        name="science",
        facet_terms=("Scientists", "Technology", "Medicine"),
        vocabulary=(
            "research", "study", "laboratory", "discovery", "experiment",
            "journal", "findings", "theory", "physics", "genome",
            "telescope", "mission", "satellite", "particle",
        ),
        entity_kinds=(_P, _O),
        facet_hints=("Scientists", "Universities"),
        weight=1.0,
    ),
    Topic(
        name="history",
        facet_terms=("History", "Anniversaries", "Historical Figures", "Museums"),
        vocabulary=(
            "anniversary", "archive", "memorial", "veterans", "century",
            "era", "document", "exhibit", "commemoration", "historian",
            "heritage", "monument", "artifact",
        ),
        entity_kinds=(_P, _L, _O, _E),
        facet_hints=("Museums", "Historical Figures"),
        weight=0.8,
    ),
    Topic(
        name="energy",
        facet_terms=("Energy Companies", "Economy", "Environment", "Trade"),
        vocabulary=(
            "oil", "drilling", "refinery", "pipeline", "barrels", "crude",
            "electricity", "grid", "fuel", "gas", "wells", "output",
            "supply", "renewables", "reserves",
        ),
        entity_kinds=(_O, _L, _P),
        facet_hints=("Energy Companies",),
        weight=1.2,
    ),
    Topic(
        name="transportation",
        facet_terms=("Airlines", "Business", "Government Agencies"),
        vocabulary=(
            "flights", "airport", "passengers", "transit", "railway",
            "commuters", "highway", "traffic", "terminal", "routes",
            "fares", "delays", "fleet", "safety",
        ),
        entity_kinds=(_O, _L),
        facet_hints=("Airlines", "Government Agencies"),
        weight=1.0,
    ),
    Topic(
        name="courts",
        facet_terms=("Courts", "Crime", "Legislation", "Government"),
        vocabulary=(
            "appeal", "ruling", "justices", "constitutional", "lawsuit",
            "plaintiff", "hearing", "docket", "opinion", "dissent",
            "statute", "precedent", "injunction", "argument",
        ),
        entity_kinds=(_O, _P),
        facet_hints=("Courts",),
        weight=1.0,
    ),
    Topic(
        name="labor",
        facet_terms=("Unemployment", "Economy", "Social Phenomenon"),
        vocabulary=(
            "union", "strike", "wages", "workers", "layoffs", "contract",
            "pension", "benefits", "overtime", "picket", "negotiators",
            "walkout", "hiring", "payroll",
        ),
        entity_kinds=(_O, _P, _L),
        facet_hints=("Corporations",),
        weight=1.0,
    ),
    Topic(
        name="media",
        facet_terms=("Media Companies", "Culture", "Technology"),
        vocabulary=(
            "newspaper", "broadcast", "ratings", "audience", "advertising",
            "circulation", "editor", "programming", "viewers", "subscribers",
            "coverage", "column", "syndication",
        ),
        entity_kinds=(_O, _P),
        facet_hints=("Media Companies", "Journalists"),
        weight=0.9,
    ),
    Topic(
        name="space",
        facet_terms=("Scientists", "Technology", "Physicists"),
        vocabulary=(
            "rocket", "orbit", "spacecraft", "astronauts", "launch",
            "module", "shuttle", "probe", "payload", "trajectory",
            "capsule", "booster", "docking",
        ),
        entity_kinds=(_O, _P),
        facet_hints=("Scientists", "Government Agencies"),
        weight=0.8,
    ),
    Topic(
        name="agriculture",
        facet_terms=("Economy", "Nature", "Trade"),
        vocabulary=(
            "farmers", "harvest", "crops", "livestock", "grain",
            "subsidies", "irrigation", "acreage", "yields", "orchard",
            "dairy", "ranchers", "seeds",
        ),
        entity_kinds=(_L, _O, _P),
        facet_hints=("Government Agencies",),
        weight=0.8,
    ),
    Topic(
        name="fashion",
        facet_terms=("Fashion", "Culture", "Business"),
        vocabulary=(
            "designer", "collection", "couture", "fabric", "trends",
            "boutique", "models", "catwalk", "season", "label",
            "stylists", "garments",
        ),
        entity_kinds=(_P, _O, _E),
        facet_hints=("Artists", "Retailers"),
        weight=0.7,
    ),
    Topic(
        name="disasters",
        facet_terms=("Natural Disasters", "Earthquakes", "Hurricanes", "Floods"),
        vocabulary=(
            "earthquake", "magnitude", "rescue", "survivors", "aftershock",
            "relief", "aid", "damage", "collapse", "emergency", "shelter",
            "victims", "rubble", "tremor",
        ),
        entity_kinds=(_L, _E, _O),
        facet_hints=("International Organizations",),
        weight=1.0,
    ),
)


def topic_by_name(name: str) -> Topic:
    """Look up a topic by its short name."""
    for topic in TOPICS:
        if topic.name == name:
            return topic
    raise KeyError(f"unknown topic: {name!r}")
