"""Dataclasses shared by the knowledge-base subpackage."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import KnowledgeBaseError

#: A facet path is the sequence of facet terms from a root facet down to a
#: leaf, e.g. ``("People", "Leaders", "Political Leaders")``.
FacetPath = tuple[str, ...]


class EntityKind(enum.Enum):
    """Coarse entity types, mirroring standard NER categories."""

    PERSON = "person"
    ORGANIZATION = "organization"
    LOCATION = "location"
    EVENT = "event"
    CONCEPT = "concept"


@dataclass(frozen=True)
class Entity:
    """A world entity.

    Parameters
    ----------
    name:
        Canonical name, which is also the simulated Wikipedia page title.
    kind:
        Coarse type used by the named-entity tagger gazetteer.
    variants:
        Alternate surface forms (the simulated Wikipedia redirects), e.g.
        ``("Hillary Clinton", "Hillary R. Clinton")`` for the canonical
        "Hillary Rodham Clinton".
    facet_paths:
        Ground-truth facet paths this entity belongs to.  Terms on these
        paths are the facet terms a human annotator would assign to a story
        about this entity.
    related_terms:
        Terms associated with the entity but not on its facet paths
        ("President of France" for Jacques Chirac).  These populate the
        simulated Wikipedia links and Google snippets.
    description_words:
        Common-noun vocabulary used by the article generator when the
        entity is mentioned ("president", "summit", ...).
    prominence:
        Relative sampling weight in the article generator (>= 0).
    """

    name: str
    kind: EntityKind
    variants: tuple[str, ...] = ()
    facet_paths: tuple[FacetPath, ...] = ()
    related_terms: tuple[str, ...] = ()
    description_words: tuple[str, ...] = ()
    prominence: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise KnowledgeBaseError("entity name must be non-empty")
        if self.prominence < 0:
            raise KnowledgeBaseError(
                f"prominence must be >= 0 for {self.name!r}, got {self.prominence}"
            )

    @property
    def all_names(self) -> tuple[str, ...]:
        """Canonical name followed by all variants."""
        return (self.name, *self.variants)

    @property
    def facet_terms(self) -> tuple[str, ...]:
        """All facet terms on this entity's paths, most general first."""
        seen: dict[str, None] = {}
        for path in self.facet_paths:
            for term in path:
                seen.setdefault(term, None)
        return tuple(seen)


@dataclass(frozen=True)
class Topic:
    """A newsroom subject area used by the article generator.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"elections"``.
    facet_terms:
        Facet terms implied by stories on this topic (must exist in the
        taxonomy); annotators assign these to the story's gold set.
    vocabulary:
        Content words characteristic of the topic.
    entity_kinds:
        Entity kinds that stories on this topic involve; the generator
        samples entities matching these kinds and facet hints.
    facet_hints:
        Facet terms an involved entity should fall under (e.g. the
        "elections" topic involves entities under "Political Leaders").
    weight:
        Relative probability of the topic in the simulated news mix.
    """

    name: str
    facet_terms: tuple[str, ...]
    vocabulary: tuple[str, ...]
    entity_kinds: tuple[EntityKind, ...]
    facet_hints: tuple[str, ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise KnowledgeBaseError("topic name must be non-empty")
        if not self.vocabulary:
            raise KnowledgeBaseError(f"topic {self.name!r} needs vocabulary")
        if self.weight <= 0:
            raise KnowledgeBaseError(
                f"topic weight must be positive for {self.name!r}"
            )


@dataclass(frozen=True)
class WikiSeed:
    """Extra, non-entity Wikipedia page injected into the simulation
    (navigation pages, list pages, and other noise)."""

    title: str
    links: tuple[str, ...] = ()
    body_terms: tuple[str, ...] = ()
