"""Name pools for programmatic entity generation.

The entity factory combines these pools deterministically (seeded RNG) to
populate the world with people, companies, and institutions beyond the
hand-written notable entities.  Names are fictional; collisions with the
taxonomy or the seeded entities are filtered out by the factory.
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "Adam", "Alice", "Andre", "Anita", "Anton", "Benjamin", "Bridget",
    "Carla", "Carlos", "Catherine", "Cecilia", "Daniel", "David", "Diane",
    "Dmitri", "Edward", "Elena", "Emilio", "Erica", "Felix", "Fiona",
    "Gabriel", "Grace", "Gregory", "Hannah", "Harold", "Hector", "Irene",
    "Isaac", "Ivan", "Jerome", "Joan", "Jonas", "Julia", "Karim", "Laura",
    "Lena", "Leon", "Louisa", "Marcus", "Margaret", "Maria", "Martin",
    "Miriam", "Nadia", "Nathan", "Nora", "Oliver", "Omar", "Patricia",
    "Paul", "Peter", "Rachel", "Raymond", "Rosa", "Samuel", "Sandra",
    "Sergei", "Silvia", "Simon", "Sofia", "Stefan", "Tamara", "Theodore",
    "Thomas", "Valerie", "Victor", "Walter", "Yusuf",
)

LAST_NAMES: tuple[str, ...] = (
    "Abbott", "Almeida", "Anderson", "Baranov", "Barnes", "Becker",
    "Bellamy", "Benson", "Berger", "Blanchard", "Bouchard", "Calloway",
    "Cardoso", "Carmichael", "Castellan", "Chandler", "Corbin", "Crawford",
    "Delacroix", "Donovan", "Drummond", "Eastwood", "Ellison", "Fairbanks",
    "Falkner", "Ferreira", "Fitzgerald", "Fontaine", "Gallagher", "Geller",
    "Goldstein", "Granger", "Greenwood", "Gutierrez", "Halloran", "Hargrove",
    "Hawkins", "Hendricks", "Holloway", "Ibrahim", "Ivanov", "Jansen",
    "Kaminski", "Keller", "Kovacs", "Kowalski", "Lambert", "Langford",
    "Larsen", "Leclerc", "Lindqvist", "Lombardi", "Maddox", "Marchetti",
    "Mercer", "Montgomery", "Moreau", "Nakamura", "Navarro", "Novak",
    "Okafor", "Olsson", "Orlov", "Pellegrini", "Petrov", "Prescott",
    "Quinlan", "Ramires", "Renard", "Rossi", "Sandoval", "Schneider",
    "Sorensen", "Takahashi", "Tanaka", "Thornton", "Ulrich", "Vandenberg",
    "Vasquez", "Voronov", "Wakefield", "Weiss", "Whitfield", "Yamamoto",
    "Zhukov",
)

COMPANY_STEMS: tuple[str, ...] = (
    "Meridian", "Apex", "Vanguard", "Summit", "Pinnacle", "Horizon",
    "Atlas", "Sterling", "Crescent", "Beacon", "Cascade", "Keystone",
    "Northgate", "Paragon", "Quantum", "Redwood", "Sapphire", "Titan",
    "Vertex", "Zenith", "Aurora", "Catalyst", "Dynamo", "Evergreen",
    "Frontier", "Granite", "Helios", "Ironwood", "Juniper", "Lakeshore",
)

COMPANY_SUFFIX_BY_SECTOR: dict[str, tuple[str, ...]] = {
    "Technology Companies": ("Systems", "Software", "Technologies", "Labs"),
    "Financial Firms": ("Capital", "Securities", "Holdings", "Partners"),
    "Energy Companies": ("Energy", "Petroleum", "Power", "Resources"),
    "Media Companies": ("Media", "Broadcasting", "Publishing", "Studios"),
    "Automakers": ("Motors", "Automotive", "Vehicles", "Mobility"),
    "Retailers": ("Stores", "Retail", "Markets", "Outfitters"),
    "Airlines": ("Airways", "Airlines", "Air", "Aviation"),
    "Pharmaceutical Companies": (
        "Pharmaceuticals", "Therapeutics", "Biosciences", "Health",
    ),
}

UNIVERSITY_STEMS: tuple[str, ...] = (
    "Ashford", "Brookfield", "Clearwater", "Dunmore", "Eastbrook",
    "Fairmont", "Glenville", "Hartwell", "Kingsley", "Lakewood",
    "Northfield", "Oakridge", "Pembroke", "Ridgemont", "Silverton",
    "Westhaven",
)

AGENCY_PATTERNS: tuple[str, ...] = (
    "Department of {domain}",
    "Federal {domain} Administration",
    "National {domain} Agency",
    "Bureau of {domain}",
    "Office of {domain}",
)

AGENCY_DOMAINS: tuple[str, ...] = (
    "Commerce", "Transportation", "Agriculture", "Labor", "Housing",
    "Veterans Affairs", "Emergency Management", "Public Safety",
    "Environmental Protection", "Disease Control", "Aviation", "Energy",
)

HURRICANE_NAMES: tuple[str, ...] = (
    "Beatrice", "Clement", "Dorian", "Estelle", "Fabian", "Giselle",
    "Horatio", "Imelda", "Jasper", "Katia",
)

TEAM_CITIES: tuple[str, ...] = (
    "Riverdale", "Brookside", "Harborview", "Stonebridge", "Mapleton",
    "Crestwood", "Bayfield", "Elmhurst",
)

TEAM_MASCOTS_BASEBALL: tuple[str, ...] = (
    "Hawks", "Pioneers", "Mariners", "Royals", "Senators", "Barons",
)

TEAM_MASCOTS_FOOTBALL: tuple[str, ...] = (
    "Wolves", "Chargers", "Stallions", "Knights", "Thunder", "Rangers",
)

BAND_NAMES: tuple[str, ...] = (
    "The Copper Lanterns", "Midnight Arcade", "Paper Compass",
    "The Velvet Sparrows", "Northern Echo", "Glass Harbor",
)
