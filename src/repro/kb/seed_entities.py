"""Hand-written notable entities.

These include every worked example from the paper (Jacques Chirac, the
2005 G8 summit, Hillary Rodham Clinton, Hasekura Tsunenaga, Steve Jobs),
so the library's documentation examples run against the simulated world,
plus a core of prominent fictional-but-plausible entities.  The factory in
:mod:`repro.kb.entities` extends this core programmatically.

Each record is ``(name, kind, facet_anchors, variants, related_terms,
description_words, prominence)`` where ``facet_anchors`` are terminal
taxonomy terms; the factory expands them to full root-to-leaf paths.
"""

from __future__ import annotations

from .schema import EntityKind

_P = EntityKind.PERSON
_O = EntityKind.ORGANIZATION
_L = EntityKind.LOCATION
_E = EntityKind.EVENT

#: (name, kind, anchors, variants, related_terms, description_words, prominence)
SeedRecord = tuple[
    str,
    EntityKind,
    tuple[str, ...],
    tuple[str, ...],
    tuple[str, ...],
    tuple[str, ...],
    float,
]

SEED_ENTITIES: tuple[SeedRecord, ...] = (
    (
        "Jacques Chirac",
        _P,
        ("Political Leaders", "France"),
        ("Chirac", "President Chirac", "Jacques Rene Chirac"),
        ("President of France", "French government"),
        ("president", "government", "minister"),
        3.0,
    ),
    (
        "2005 G8 Summit",
        _E,
        ("Summits", "Diplomacy"),
        ("G8 Summit", "Gleneagles Summit"),
        ("Africa debt cancellation", "global warming"),
        ("summit", "agenda", "leaders"),
        2.0,
    ),
    (
        "Hillary Rodham Clinton",
        _P,
        ("Political Leaders", "New York"),
        (
            "Hillary Clinton",
            "Hillary R. Clinton",
            "Clinton, Hillary Rodham",
            "Hillary Diane Rodham Clinton",
        ),
        ("United States Senate", "senator from New York"),
        ("senator", "campaign", "legislation"),
        3.0,
    ),
    (
        "Hasekura Tsunenaga",
        _P,
        ("Historical Figures", "Japan"),
        ("Samurai Tsunenaga",),
        ("samurai", "Japanese language", "embassy to Europe"),
        ("samurai", "mission", "historian"),
        0.6,
    ),
    (
        "Steve Jobs",
        _P,
        ("Business Leaders", "Technology Companies", "California"),
        ("Jobs", "Steven P. Jobs"),
        ("personal computer", "entertainment industry", "technology leaders"),
        ("chief", "executive", "product"),
        2.5,
    ),
    (
        "United Nations",
        _O,
        ("International Organizations", "Diplomacy"),
        ("UN", "U.N."),
        ("Security Council", "General Assembly", "peacekeeping"),
        ("resolution", "council", "delegation"),
        2.5,
    ),
    (
        "World Bank",
        _O,
        ("International Organizations", "Economy"),
        ("The World Bank",),
        ("development loans", "poverty reduction"),
        ("loans", "development", "economists"),
        1.5,
    ),
    (
        "World Health Organization",
        _O,
        ("International Organizations", "Public Health"),
        ("WHO",),
        ("disease surveillance", "vaccination campaign"),
        ("outbreak", "vaccine", "health"),
        1.5,
    ),
    (
        "Federal Reserve",
        _O,
        ("Central Banks", "Economy", "United States"),
        ("The Fed", "Federal Reserve Board"),
        ("interest rates", "monetary policy"),
        ("rates", "policy", "inflation"),
        2.0,
    ),
    (
        "International Monetary Fund",
        _O,
        ("International Organizations", "Economy"),
        ("IMF",),
        ("bailout package", "fiscal reform"),
        ("loans", "economists", "reform"),
        1.2,
    ),
    (
        "European Union",
        _O,
        ("International Organizations", "Europe", "Diplomacy"),
        ("EU", "E.U."),
        ("common market", "European Commission"),
        ("treaty", "commission", "ministers"),
        2.0,
    ),
    (
        "World Series",
        _E,
        ("Baseball", "Sports"),
        ("the World Series",),
        ("pennant race", "championship series"),
        ("championship", "game", "fans"),
        1.5,
    ),
    (
        "Summer Olympics",
        _E,
        ("Olympics", "Sports"),
        ("the Olympics", "Olympic Games"),
        ("gold medal", "opening ceremony"),
        ("medal", "athletes", "ceremony"),
        1.2,
    ),
    (
        "Iraq War",
        _E,
        ("War", "Iraq", "National Security"),
        ("war in Iraq", "the Iraq conflict"),
        ("coalition forces", "reconstruction effort"),
        ("troops", "forces", "security"),
        2.5,
    ),
    (
        "Kyoto Protocol",
        _E,
        ("Climate Change", "Diplomacy", "Legislation"),
        ("the Kyoto treaty",),
        ("emissions targets", "greenhouse gases"),
        ("emissions", "treaty", "targets"),
        1.0,
    ),
    (
        "Avian Influenza",
        _E,
        ("Epidemics", "Public Health"),
        ("bird flu", "avian flu", "H5N1"),
        ("pandemic preparedness", "poultry culling"),
        ("virus", "outbreak", "vaccine"),
        1.5,
    ),
)
