"""The ground-truth facet taxonomy.

The pilot study (Section III, Table I of the paper) found that human
annotators organize news stories along facets such as "Location",
"Institutes", "History", "People" (with "Leaders" below), "Social
Phenomenon", "Markets" (with "Corporations" below), "Nature", and
"Event".  :data:`_TAXONOMY_TREE` encodes those eight facets as roots of a
three-level tree; the simulated annotators and the corpus generator both
draw their facet terms from it.

Every term appears exactly once in the tree, so "is this term correctly
placed under that parent?" — the placement half of the precision judgment
in Section V-C — is well-defined.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from ..errors import KnowledgeBaseError
from ..text.tokenizer import normalize_term
from .schema import FacetPath

# Nested mapping: facet term -> children.  Leaves map to empty dicts.
_TAXONOMY_TREE: Mapping[str, Mapping] = {
    "Location": {
        "North America": {
            "United States": {
                "New York": {},
                "Washington": {},
                "California": {},
                "Texas": {},
                "Chicago": {},
            },
            "Canada": {},
            "Mexico": {},
        },
        "Europe": {
            "France": {"Paris": {}},
            "Germany": {"Berlin": {}},
            "United Kingdom": {"London": {}},
            "Italy": {"Rome": {}},
            "Russia": {"Moscow": {}},
            "Spain": {},
            "Greece": {},
        },
        "Asia": {
            "China": {"Beijing": {}},
            "Japan": {"Tokyo": {}},
            "India": {},
            "Iraq": {"Baghdad": {}},
            "Israel": {},
            "Iran": {},
            "Afghanistan": {},
            "South Korea": {},
        },
        "Africa": {
            "Egypt": {},
            "Nigeria": {},
            "South Africa": {},
            "Kenya": {},
            "Sudan": {},
        },
        "South America": {
            "Brazil": {},
            "Argentina": {},
            "Venezuela": {},
        },
        "Oceania": {"Australia": {}},
    },
    "People": {
        "Leaders": {
            "Political Leaders": {},
            "Business Leaders": {},
            "Religious Leaders": {},
            "Military Leaders": {},
        },
        "Athletes": {
            "Baseball Players": {},
            "Football Players": {},
            "Tennis Players": {},
            "Basketball Players": {},
        },
        "Artists": {
            "Musicians": {},
            "Actors": {},
            "Writers": {},
            "Painters": {},
        },
        "Scientists": {"Medical Researchers": {}, "Physicists": {}},
        "Journalists": {},
    },
    "Markets": {
        "Corporations": {
            "Technology Companies": {},
            "Financial Firms": {},
            "Energy Companies": {},
            "Media Companies": {},
            "Automakers": {},
            "Retailers": {},
            "Airlines": {},
            "Pharmaceutical Companies": {},
        },
        "Financial Markets": {
            "Stock Market": {},
            "Bond Market": {},
            "Currency Market": {},
        },
        "Economy": {
            "Inflation": {},
            "Unemployment": {},
            "Trade": {},
            "Real Estate": {},
        },
        "Business": {"Earnings": {}, "Mergers": {}, "Bankruptcy": {}},
    },
    "Institutes": {
        "Universities": {},
        "Government Agencies": {},
        "International Organizations": {},
        "Courts": {},
        "Museums": {},
        "Hospitals": {},
        "Central Banks": {},
    },
    "Event": {
        "Political Events": {"Elections": {}, "Summits": {}, "Legislation": {}},
        "Sports": {
            "Baseball": {},
            "Football": {},
            "Basketball": {},
            "Tennis": {},
            "Olympics": {},
            "Soccer": {},
        },
        "Natural Disasters": {
            "Hurricanes": {},
            "Earthquakes": {},
            "Floods": {},
            "Wildfires": {},
        },
        "Cultural Events": {
            "Festivals": {},
            "Award Ceremonies": {},
            "Concerts": {},
            "Exhibitions": {},
        },
        "Conflicts": {"War": {}, "Terrorism": {}, "Civil Unrest": {}},
    },
    "Nature": {
        "Weather": {"Drought": {}, "Storms": {}, "Heat Waves": {}},
        "Animals": {"Wildlife": {}, "Endangered Species": {}},
        "Environment": {
            "Climate Change": {},
            "Pollution": {},
            "Conservation": {},
        },
        "Geography": {"Mountains": {}, "Rivers": {}, "Forests": {}},
    },
    "Social Phenomenon": {
        "Politics": {"Government": {}, "Diplomacy": {}, "National Security": {}},
        "Crime": {"Fraud": {}, "Violence": {}, "Corruption": {}},
        "Health": {"Epidemics": {}, "Public Health": {}, "Medicine": {}},
        "Education": {"Schools": {}, "Higher Education": {}},
        "Religion": {},
        "Immigration": {},
        "Poverty": {},
        "Culture": {"Music": {}, "Film": {}, "Literature": {}, "Fashion": {}},
        "Technology": {"Computers": {}, "Internet": {}, "Telecommunications": {}},
    },
    "History": {
        "Wars": {"World War II": {}, "Vietnam War": {}},
        "Anniversaries": {},
        "Historical Figures": {},
        "Archaeology": {},
    },
}


class FacetTaxonomy:
    """A tree of facet terms with navigation and placement queries."""

    def __init__(self, tree: Mapping[str, Mapping]) -> None:
        self._children: dict[str, tuple[str, ...]] = {}
        self._parent: dict[str, str | None] = {}
        self._paths: dict[str, FacetPath] = {}
        self._normalized: dict[str, str] = {}
        self._roots = tuple(tree)
        for root, subtree in tree.items():
            self._insert(root, subtree, parent=None, prefix=())
        for term in self._paths:
            key = normalize_term(term)
            if key in self._normalized and self._normalized[key] != term:
                raise KnowledgeBaseError(
                    f"taxonomy terms collide after normalization: {term!r}"
                )
            self._normalized[key] = term

    def _insert(
        self,
        term: str,
        subtree: Mapping[str, Mapping],
        parent: str | None,
        prefix: FacetPath,
    ) -> None:
        if term in self._paths:
            raise KnowledgeBaseError(f"duplicate facet term in taxonomy: {term!r}")
        path = (*prefix, term)
        self._paths[term] = path
        self._parent[term] = parent
        self._children[term] = tuple(subtree)
        for child, child_tree in subtree.items():
            self._insert(child, child_tree, parent=term, prefix=path)

    # -- lookups -------------------------------------------------------------

    @property
    def roots(self) -> tuple[str, ...]:
        """Top-level facets (the Table I inventory)."""
        return self._roots

    def __contains__(self, term: str) -> bool:
        return normalize_term(term) in self._normalized

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[str]:
        return iter(self._paths)

    def canonical(self, term: str) -> str | None:
        """Canonical spelling of ``term`` (case/punctuation-insensitive)."""
        return self._normalized.get(normalize_term(term))

    def parent(self, term: str) -> str | None:
        """Parent facet term, or None for a root."""
        canonical = self._require(term)
        return self._parent[canonical]

    def children(self, term: str) -> tuple[str, ...]:
        """Direct children of ``term``."""
        canonical = self._require(term)
        return self._children[canonical]

    def path(self, term: str) -> FacetPath:
        """Path from root down to ``term`` (inclusive)."""
        canonical = self._require(term)
        return self._paths[canonical]

    def root_of(self, term: str) -> str:
        """The top-level facet ``term`` belongs to."""
        return self.path(term)[0]

    def depth(self, term: str) -> int:
        """0 for roots, 1 for their children, and so on."""
        return len(self.path(term)) - 1

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """True when ``ancestor`` lies strictly above ``descendant``."""
        ancestor_c = self._require(ancestor)
        descendant_path = self.path(descendant)
        return ancestor_c in descendant_path[:-1]

    def descendants(self, term: str) -> tuple[str, ...]:
        """All terms strictly below ``term`` (pre-order)."""
        result: list[str] = []
        stack = list(reversed(self.children(term)))
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self._children[current]))
        return tuple(result)

    def terms(self) -> tuple[str, ...]:
        """All facet terms (pre-order from each root)."""
        return tuple(self._paths)

    def leaves(self) -> tuple[str, ...]:
        """Terms with no children."""
        return tuple(term for term, kids in self._children.items() if not kids)

    def correctly_placed(self, child: str, parent: str) -> bool:
        """True when ``parent`` is ``child``'s actual taxonomy parent or an
        ancestor — the placement criterion of the precision study."""
        if child not in self or parent not in self:
            return False
        child_c = self.canonical(child)
        parent_c = self.canonical(parent)
        assert child_c is not None and parent_c is not None
        return self.is_ancestor(parent_c, child_c)

    def _require(self, term: str) -> str:
        canonical = self.canonical(term)
        if canonical is None:
            raise KnowledgeBaseError(f"unknown facet term: {term!r}")
        return canonical


_DEFAULT: FacetTaxonomy | None = None


def default_taxonomy() -> FacetTaxonomy:
    """The shared ground-truth taxonomy instance."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = FacetTaxonomy(_TAXONOMY_TREE)
    return _DEFAULT
