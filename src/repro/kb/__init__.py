"""Knowledge base: the ground-truth world behind the simulation.

The paper evaluates on real news corpora (NYT, Newsblaster) with real
external resources (Wikipedia, WordNet, Google) and real human annotators.
None of those are available offline, so this subpackage defines a single
consistent *world* from which all of them are derived:

* a ground-truth **facet taxonomy** (:mod:`repro.kb.taxonomy`) — the facets
  human annotators would use (Table I of the paper),
* an **entity catalog** (:mod:`repro.kb.entities`) — people, organizations,
  locations, and events with name variants and facet paths,
* **topics** (:mod:`repro.kb.topics`) — newsroom subject areas with
  vocabulary and implied facet terms,
* the :class:`repro.kb.world.World` container tying them together.

Because the corpus generator, the simulated resources, and the simulated
annotators all read the same world, the paper's central phenomenon —
facet terms rarely appear in documents but emerge after expansion — is
reproduced structurally rather than hard-coded.
"""

from .schema import Entity, EntityKind, FacetPath, Topic
from .taxonomy import FacetTaxonomy, default_taxonomy
from .world import World, build_world

__all__ = [
    "Entity",
    "EntityKind",
    "FacetPath",
    "Topic",
    "FacetTaxonomy",
    "default_taxonomy",
    "World",
    "build_world",
]
