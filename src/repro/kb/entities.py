"""Programmatic construction of the full entity catalog.

Starting from the hand-written seed entities, the factory generates a
world of people, organizations, locations, and events whose facet
anchors reference the ground-truth taxonomy.  Generation is fully
deterministic for a given :class:`~repro.config.ReproConfig` seed.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..config import ReproConfig
from ..errors import KnowledgeBaseError
from . import names
from .schema import Entity, EntityKind, FacetPath
from .seed_entities import SEED_ENTITIES
from .taxonomy import FacetTaxonomy

_P = EntityKind.PERSON
_O = EntityKind.ORGANIZATION
_L = EntityKind.LOCATION
_E = EntityKind.EVENT

#: Hand-picked variants for location entities (Wikipedia-style redirects).
_LOCATION_VARIANTS: dict[str, tuple[str, ...]] = {
    "United States": ("U.S.", "America", "United States of America"),
    "United Kingdom": ("Britain", "U.K.", "Great Britain"),
    "New York": ("New York City", "NYC"),
    "Washington": ("Washington, D.C.",),
    "Russia": ("Russian Federation",),
    "China": ("People's Republic of China",),
    "South Korea": ("Republic of Korea",),
    "Netherlands": ("Holland",),
}

_COUNTRY_DESCRIPTION = ("country", "capital", "officials", "border")
_CITY_DESCRIPTION = ("city", "residents", "mayor", "downtown")
_REGION_DESCRIPTION = ("region", "nations", "borders")

_LEADER_TITLES = ("President", "Prime Minister", "Chancellor")


def paths_from_anchors(
    taxonomy: FacetTaxonomy, anchors: Iterable[str]
) -> tuple[FacetPath, ...]:
    """Expand terminal facet anchors into full root-to-anchor paths."""
    paths = []
    for anchor in anchors:
        if anchor not in taxonomy:
            raise KnowledgeBaseError(f"facet anchor not in taxonomy: {anchor!r}")
        paths.append(taxonomy.path(anchor))
    return tuple(paths)


class EntityFactory:
    """Builds the deterministic entity catalog for a configuration."""

    def __init__(self, config: ReproConfig, taxonomy: FacetTaxonomy) -> None:
        self._config = config
        self._taxonomy = taxonomy
        self._rng = config.rng("entities")
        self._used_names: set[str] = set()
        self._first_names = list(names.FIRST_NAMES)
        self._last_names = list(names.LAST_NAMES)
        self._rng.shuffle(self._first_names)
        self._rng.shuffle(self._last_names)
        self._name_cursor = 0

    # -- helpers ---------------------------------------------------------------

    def _person_name(self) -> str:
        """Draw a unique First Last combination."""
        for _ in range(10_000):
            first = self._rng.choice(self._first_names)
            last = self._rng.choice(self._last_names)
            name = f"{first} {last}"
            if name not in self._used_names:
                return name
        raise KnowledgeBaseError("exhausted person name pool")

    def _register(self, entity: Entity) -> Entity:
        for surface in entity.all_names:
            if surface in self._used_names:
                raise KnowledgeBaseError(f"duplicate entity surface: {surface!r}")
            self._used_names.add(surface)
        return entity

    def _make(
        self,
        name: str,
        kind: EntityKind,
        anchors: tuple[str, ...],
        variants: tuple[str, ...] = (),
        related_terms: tuple[str, ...] = (),
        description_words: tuple[str, ...] = (),
        prominence: float = 1.0,
    ) -> Entity:
        # Drop variants already claimed by another entity (e.g. two people
        # sharing a bare last name); the canonical name must stay unique.
        free_variants = tuple(
            variant
            for variant in dict.fromkeys(variants)
            if variant not in self._used_names and variant != name
        )
        return self._register(
            Entity(
                name=name,
                kind=kind,
                variants=free_variants,
                facet_paths=paths_from_anchors(self._taxonomy, anchors),
                related_terms=related_terms,
                description_words=description_words,
                prominence=prominence,
            )
        )

    # -- category builders --------------------------------------------------------

    def _seed(self) -> list[Entity]:
        entities = []
        for name, kind, anchors, variants, related, desc, prominence in SEED_ENTITIES:
            entities.append(
                self._make(
                    name,
                    kind,
                    anchors,
                    variants=variants,
                    related_terms=related,
                    description_words=desc,
                    prominence=prominence,
                )
            )
        return entities

    def _locations(self) -> list[Entity]:
        """One location entity per Location-subtree taxonomy term."""
        entities = []
        for term in self._taxonomy.descendants("Location"):
            if term in self._used_names:
                continue
            depth = self._taxonomy.depth(term)
            if depth == 1:  # continents / regions
                description = _REGION_DESCRIPTION
                prominence = 0.4
            elif self._taxonomy.children(term):  # countries with cities below
                description = _COUNTRY_DESCRIPTION
                prominence = 1.5
            elif self._taxonomy.depth(term) >= 3:  # cities
                description = _CITY_DESCRIPTION
                prominence = 1.2
            else:  # leaf countries
                description = _COUNTRY_DESCRIPTION
                prominence = 1.0
            entities.append(
                self._make(
                    term,
                    _L,
                    (term,),
                    variants=_LOCATION_VARIANTS.get(term, ()),
                    related_terms=(f"government of {term}", f"economy of {term}"),
                    description_words=description,
                    prominence=prominence,
                )
            )
        return entities

    def _political_leaders(self) -> list[Entity]:
        countries = [
            term
            for term in self._taxonomy.descendants("Location")
            if self._taxonomy.depth(term) == 2
        ]
        entities = []
        for country in countries:
            name = self._person_name()
            title = self._rng.choice(_LEADER_TITLES)
            last = name.split()[-1]
            entities.append(
                self._make(
                    name,
                    _P,
                    ("Political Leaders", country),
                    variants=(f"{title} {last}", last),
                    related_terms=(
                        f"{title} of {country}",
                        f"politics of {country}",
                    ),
                    description_words=("president", "government", "minister"),
                    prominence=self._rng.uniform(0.8, 2.2),
                )
            )
        return entities

    def _corporations(self) -> list[Entity]:
        entities = []
        stems = list(names.COMPANY_STEMS)
        self._rng.shuffle(stems)
        stem_cursor = 0
        for sector, suffixes in names.COMPANY_SUFFIX_BY_SECTOR.items():
            for _ in range(4):
                stem = stems[stem_cursor % len(stems)]
                stem_cursor += 1
                suffix = self._rng.choice(suffixes)
                name = f"{stem} {suffix}"
                if name in self._used_names:
                    name = f"{stem} {suffix} Group"
                if name in self._used_names:
                    continue
                entities.append(
                    self._make(
                        name,
                        _O,
                        (sector,),
                        variants=(stem,) if stem not in self._used_names else (),
                        related_terms=(
                            f"{sector.lower()}",
                            "quarterly earnings",
                        ),
                        description_words=("company", "shares", "executive"),
                        prominence=self._rng.uniform(0.5, 2.0),
                    )
                )
        return entities

    def _business_leaders(self, corporations: list[Entity]) -> list[Entity]:
        entities = []
        sample = self._rng.sample(corporations, min(14, len(corporations)))
        for company in sample:
            name = self._person_name()
            last = name.split()[-1]
            entities.append(
                self._make(
                    name,
                    _P,
                    ("Business Leaders",),
                    variants=(last,) if last not in self._used_names else (),
                    related_terms=(
                        f"chief executive of {company.name}",
                        company.name,
                    ),
                    description_words=("chief", "executive", "strategy"),
                    prominence=self._rng.uniform(0.4, 1.5),
                )
            )
        return entities

    def _athletes(self) -> list[Entity]:
        specs = (
            ("Baseball Players", "Baseball", 8),
            ("Football Players", "Football", 7),
            ("Tennis Players", "Tennis", 5),
            ("Basketball Players", "Basketball", 5),
        )
        entities = []
        for anchor, sport, count in specs:
            for _ in range(count):
                name = self._person_name()
                last = name.split()[-1]
                entities.append(
                    self._make(
                        name,
                        _P,
                        (anchor, sport),
                        variants=(last,) if last not in self._used_names else (),
                        related_terms=(f"professional {sport.lower()}",),
                        description_words=("player", "season", "team"),
                        prominence=self._rng.uniform(0.4, 1.8),
                    )
                )
        return entities

    def _artists(self) -> list[Entity]:
        specs = (
            ("Musicians", ("album", "tour", "singer"), 8),
            ("Actors", ("film", "role", "screen"), 8),
            ("Writers", ("novel", "author", "book"), 5),
            ("Painters", ("gallery", "canvas", "exhibit"), 3),
        )
        entities = []
        for anchor, description, count in specs:
            for _ in range(count):
                name = self._person_name()
                last = name.split()[-1]
                entities.append(
                    self._make(
                        name,
                        _P,
                        (anchor,),
                        variants=(last,) if last not in self._used_names else (),
                        related_terms=(anchor.lower(),),
                        description_words=description,
                        prominence=self._rng.uniform(0.3, 1.5),
                    )
                )
        return entities

    def _professionals(self) -> list[Entity]:
        specs = (
            ("Medical Researchers", ("study", "patients", "trial"), 4),
            ("Physicists", ("theory", "particle", "laboratory"), 3),
            ("Scientists", ("research", "findings", "journal"), 3),
            ("Journalists", ("report", "newsroom", "byline"), 5),
            ("Religious Leaders", ("congregation", "faith", "sermon"), 5),
            ("Military Leaders", ("command", "forces", "operation"), 6),
            ("Historical Figures", ("era", "legacy", "memoir"), 4),
        )
        entities = []
        for anchor, description, count in specs:
            for _ in range(count):
                name = self._person_name()
                last = name.split()[-1]
                entities.append(
                    self._make(
                        name,
                        _P,
                        (anchor,),
                        variants=(last,) if last not in self._used_names else (),
                        related_terms=(anchor.lower(),),
                        description_words=description,
                        prominence=self._rng.uniform(0.3, 1.2),
                    )
                )
        return entities

    def _institutions(self) -> list[Entity]:
        entities = []
        for stem in names.UNIVERSITY_STEMS[:10]:
            pattern = self._rng.choice(("{stem} University", "University of {stem}"))
            name = pattern.format(stem=stem)
            entities.append(
                self._make(
                    name,
                    _O,
                    ("Universities", "Higher Education"),
                    related_terms=("campus research", "higher education"),
                    description_words=("students", "faculty", "campus"),
                    prominence=self._rng.uniform(0.3, 1.0),
                )
            )
        domains = list(names.AGENCY_DOMAINS)
        self._rng.shuffle(domains)
        for domain in domains:
            pattern = self._rng.choice(names.AGENCY_PATTERNS)
            name = pattern.format(domain=domain)
            if name in self._used_names:
                continue
            entities.append(
                self._make(
                    name,
                    _O,
                    ("Government Agencies",),
                    related_terms=("federal regulations", "public policy"),
                    description_words=("officials", "policy", "report"),
                    prominence=self._rng.uniform(0.3, 1.2),
                )
            )
        entities.append(
            self._make(
                "Supreme Court",
                _O,
                ("Courts", "Government"),
                variants=("the Supreme Court",),
                related_terms=("judicial ruling", "constitutional law"),
                description_words=("justices", "ruling", "appeal"),
                prominence=1.5,
            )
        )
        for index in range(3):
            name = f"{names.UNIVERSITY_STEMS[10 + index]} Museum of Art"
            entities.append(
                self._make(
                    name,
                    _O,
                    ("Museums", "Culture"),
                    related_terms=("art collection", "exhibition"),
                    description_words=("exhibit", "collection", "curator"),
                    prominence=0.4,
                )
            )
        for index in range(3):
            name = f"{names.UNIVERSITY_STEMS[13 + index]} General Hospital"
            entities.append(
                self._make(
                    name,
                    _O,
                    ("Hospitals", "Public Health"),
                    related_terms=("patient care", "emergency room"),
                    description_words=("patients", "doctors", "ward"),
                    prominence=0.5,
                )
            )
        return entities

    def _teams_and_bands(self) -> list[Entity]:
        entities = []
        cities = list(names.TEAM_CITIES)
        self._rng.shuffle(cities)
        for index, mascot in enumerate(names.TEAM_MASCOTS_BASEBALL):
            city = cities[index % len(cities)]
            entities.append(
                self._make(
                    f"{city} {mascot}",
                    _O,
                    ("Baseball",),
                    variants=(f"the {mascot}",),
                    related_terms=("baseball franchise",),
                    description_words=("team", "season", "fans"),
                    prominence=self._rng.uniform(0.5, 1.5),
                )
            )
        for index, mascot in enumerate(names.TEAM_MASCOTS_FOOTBALL):
            city = cities[(index + 3) % len(cities)]
            entities.append(
                self._make(
                    f"{city} {mascot}",
                    _O,
                    ("Football",),
                    variants=(f"the {mascot}",),
                    related_terms=("football franchise",),
                    description_words=("team", "season", "fans"),
                    prominence=self._rng.uniform(0.5, 1.5),
                )
            )
        for band in names.BAND_NAMES:
            entities.append(
                self._make(
                    band,
                    _O,
                    ("Musicians", "Music"),
                    related_terms=("concert tour", "studio album"),
                    description_words=("band", "album", "tour"),
                    prominence=self._rng.uniform(0.3, 1.0),
                )
            )
        return entities

    def _events(self) -> list[Entity]:
        entities = []
        for name in names.HURRICANE_NAMES[:6]:
            entities.append(
                self._make(
                    f"Hurricane {name}",
                    _E,
                    ("Hurricanes", "Storms"),
                    related_terms=("storm surge", "evacuation order"),
                    description_words=("storm", "winds", "damage"),
                    prominence=self._rng.uniform(0.4, 1.5),
                )
            )
        entities.append(
            self._make(
                "2005 Mayoral Election",
                _E,
                ("Elections", "New York"),
                related_terms=("campaign trail", "city hall"),
                description_words=("ballot", "voters", "campaign"),
                prominence=1.0,
            )
        )
        entities.append(
            self._make(
                "World Economic Forum",
                _E,
                ("Summits", "Economy"),
                variants=("Davos forum",),
                related_terms=("global economy", "panel discussion"),
                description_words=("forum", "leaders", "agenda"),
                prominence=0.8,
            )
        )
        entities.append(
            self._make(
                "Cannes Film Festival",
                _E,
                ("Festivals", "Film"),
                variants=("Cannes",),
                related_terms=("film premiere", "red carpet"),
                description_words=("festival", "premiere", "jury"),
                prominence=0.8,
            )
        )
        entities.append(
            self._make(
                "Grammy Awards",
                _E,
                ("Award Ceremonies", "Music"),
                variants=("the Grammys",),
                related_terms=("record of the year", "music industry"),
                description_words=("award", "ceremony", "artists"),
                prominence=0.8,
            )
        )
        return entities

    def _minor_entities(self) -> list[Entity]:
        """A long tail of low-prominence figures and organizations.

        Real news corpora mention hundreds of minor officials, analysts,
        small firms, and one-off events; the paper's gold facet-term set
        keeps growing with sample size because of exactly this tail
        (Section V-B sensitivity test).
        """
        person_anchors = (
            "Political Leaders", "Business Leaders", "Journalists",
            "Scientists", "Athletes", "Writers", "Medical Researchers",
        )
        person_roles = (
            "deputy minister", "city council member", "campaign adviser",
            "senior analyst", "staff attorney", "program director",
            "community organizer", "spokesperson",
        )
        org_anchors = (
            "Retailers", "Media Companies", "Technology Companies",
            "Financial Firms", "Universities", "Hospitals", "Museums",
        )
        entities: list[Entity] = []
        story_suffixes = (
            "commission", "inquiry", "initiative", "proposal", "hearings",
            "testimony", "nomination", "investigation",
        )
        for _index in range(110):
            name = self._person_name()
            anchor = self._rng.choice(person_anchors)
            role = self._rng.choice(person_roles)
            last = name.split()[-1]
            suffix = self._rng.choice(story_suffixes)
            entities.append(
                self._make(
                    name,
                    _P,
                    (anchor,),
                    related_terms=(role, f"{last} {suffix}"),
                    description_words=("statement", "role", "career"),
                    prominence=self._rng.uniform(0.05, 0.3),
                )
            )
        for _index in range(50):
            stem = self._rng.choice(names.COMPANY_STEMS)
            area = self._rng.choice(names.UNIVERSITY_STEMS)
            name = f"{area} {stem} Associates"
            if name in self._used_names:
                continue
            anchor = self._rng.choice(org_anchors)
            entities.append(
                self._make(
                    name,
                    _O,
                    (anchor,),
                    related_terms=(f"{anchor.lower()} services",),
                    description_words=("firm", "clients", "staff"),
                    prominence=self._rng.uniform(0.05, 0.3),
                )
            )
        return entities

    # -- public API ------------------------------------------------------------------

    def build(self) -> tuple[Entity, ...]:
        """Construct the complete catalog."""
        entities: list[Entity] = []
        entities.extend(self._seed())
        entities.extend(self._locations())
        entities.extend(self._political_leaders())
        corporations = self._corporations()
        entities.extend(corporations)
        entities.extend(self._business_leaders(corporations))
        entities.extend(self._athletes())
        entities.extend(self._artists())
        entities.extend(self._professionals())
        entities.extend(self._institutions())
        entities.extend(self._teams_and_bands())
        entities.extend(self._events())
        entities.extend(self._minor_entities())
        return tuple(entities)


def build_entities(
    config: ReproConfig, taxonomy: FacetTaxonomy
) -> tuple[Entity, ...]:
    """Build the deterministic entity catalog for ``config``."""
    return EntityFactory(config, taxonomy).build()
