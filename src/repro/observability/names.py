"""Canonical registry of metric, span, and log-event names.

Every telemetry name the reproduction emits is declared here once —
either as a string constant (for fixed names) or as a tiny helper (for
the handful of families parameterized by a label or status code).  Emit
sites import from this module instead of repeating free-string
literals, which buys two things:

* a single place to read the whole observable surface of the program
  (dashboards and tests grep one file, not the tree), and
* machine-checkable hygiene — the contract extractor
  (:mod:`repro.devtools.contracts`) marks names resolved through this
  module as *declared*, and the OBS002 lint rule only hunts for typo
  near-misses among names that bypass the registry.

Naming convention: metric names are dot-separated
(``subsystem.event``), span names are colon-separated
(``subsystem:stage``), mirroring the split between counters (additive,
aggregated) and spans (hierarchical, traced).
"""

from __future__ import annotations

from typing import Final

# -- serving -----------------------------------------------------------------

#: Root span wrapped around every HTTP request.
SPAN_SERVING_REQUEST: Final = "serving.request"

#: Counter: total HTTP requests handled.
SERVING_REQUESTS: Final = "serving.requests"

#: Timer: wall-clock seconds per request (from the request span).
SERVING_REQUEST_SECONDS: Final = "serving.request_seconds"


def serving_status(status: int) -> str:
    """Per-HTTP-status counter (``serving.status.<code>``)."""
    return f"serving.status.{status}"


# -- incremental pipeline ----------------------------------------------------

#: Span: one append_batch call end to end.
SPAN_INCREMENTAL_BATCH: Final = "incremental:batch"

#: Span: annotation stage (extractor sweep over new documents).
SPAN_INCREMENTAL_ANNOTATION: Final = "incremental:annotation"

#: Span: statistical rescoring of touched terms.
SPAN_INCREMENTAL_RESCORE: Final = "incremental:rescore"

#: Span: contextualization (resource queries for new candidates).
SPAN_INCREMENTAL_CONTEXTUALIZATION: Final = "incremental:contextualization"

#: Span: facet-term selection over the updated statistics.
SPAN_INCREMENTAL_SELECTION: Final = "incremental:selection"

#: Span: hierarchy rebuild for the selected terms.
SPAN_INCREMENTAL_HIERARCHY: Final = "incremental:hierarchy"

#: Span: checkpoint snapshot write.
SPAN_INCREMENTAL_CHECKPOINT: Final = "incremental:checkpoint"

#: Counter: batches appended.
INCREMENTAL_BATCHES: Final = "incremental.batches"

#: Counter: documents ingested across all batches.
INCREMENTAL_DOCUMENTS: Final = "incremental.documents"

#: Counter: documents whose stored annotations were invalidated.
INCREMENTAL_DIRTY_DOCUMENTS: Final = "incremental.dirty_documents"

#: Counter: distinct terms whose statistics were touched.
INCREMENTAL_TOUCHED_TERMS: Final = "incremental.touched_terms"

#: Counter: pretest membership flips caused by a batch.
INCREMENTAL_PRETEST_CHANGES: Final = "incremental.pretest_changes"

#: Gauge: corpus size after the batch.
INCREMENTAL_CORPUS_SIZE: Final = "incremental.corpus_size"

#: Gauge: pretest set size after the batch.
INCREMENTAL_PRETEST_SIZE: Final = "incremental.pretest_size"

#: Counter: candidates rescored during the rescore stage.
INCREMENTAL_RESCORED_CANDIDATES: Final = "incremental.rescored_candidates"

#: Counter: terms scored during selection.
INCREMENTAL_SCORED_TERMS: Final = "incremental.scored_terms"

#: Counter: subsumption pair-cache hits during hierarchy rebuild.
INCREMENTAL_PAIR_CACHE_HITS: Final = "incremental.pair_cache_hits"

#: Counter: subsumption pair-cache misses during hierarchy rebuild.
INCREMENTAL_PAIR_CACHE_MISSES: Final = "incremental.pair_cache_misses"


# -- columnar data plane -----------------------------------------------------

#: Gauge: distinct terms interned by the columnar plane in one run.
COLUMNAR_INTERNED_TERMS: Final = "columnar.interned_terms"

#: Counter: shared read-only vocabulary segments published to workers.
COLUMNAR_SHARED_SEGMENTS: Final = "columnar.shared_segments"

#: Counter: bytes published through shared vocabulary segments.
COLUMNAR_SHARED_SEGMENT_BYTES: Final = "columnar.shared_segment_bytes"

#: Counter: times shared memory was unavailable and workers fell back
#: to receiving the pickled vocabulary.
COLUMNAR_PICKLE_FALLBACKS: Final = "columnar.pickle_fallbacks"


# -- external resources ------------------------------------------------------


def resource_metric(label: str, event: str) -> str:
    """Per-resource counter/timer/histogram (``resource.<label>.<event>``).

    ``label`` is :meth:`ExternalResource.metric_label`; ``event`` is one
    of the fixed event suffixes (``memory_hits``, ``persistent_hits``,
    ``misses``, ``errors``, ``coalesced_hits``, ``coalesce_retries``,
    ``coalesce_wait_seconds``, ``batch_queries``,
    ``batch_query_seconds``, ``batch_size``, ``query_seconds``,
    ``query_latency``).
    """
    return f"resource.{label}.{event}"


def resource_span(label: str) -> str:
    """Span name for one uncached resource call."""
    return f"resource:{label}"


def resource_batch_span(label: str) -> str:
    """Span name for one batched resource call."""
    return f"resource:{label}:batch"
