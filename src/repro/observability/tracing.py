"""Tracing: nested spans over the pipeline's execution.

A :class:`Span` covers one timed unit of work (the whole pipeline, one
stage, one work chunk, one uncached resource call) and carries tags,
counters, and child spans.  A :class:`Tracer` opens spans as context
managers, nesting them through a thread-local stack, and serializes the
finished forest to a JSONL file (one span per line, pre-order, with
``id``/``parent`` links) or to a human-readable tree.

:class:`NullTracer` is the zero-cost disabled implementation: opening a
span costs one attribute lookup and allocates nothing, which is what
lets instrumentation stay in the hot paths permanently.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from collections.abc import Iterator
from dataclasses import dataclass, field

from . import context


@dataclass
class Span:
    """One timed unit of work in the trace tree.

    ``start``/``end`` are wall-clock epoch seconds (``time.time()``),
    comparable across worker processes; ``counters`` accumulate via
    :meth:`add`, ``tags`` are set once at open (or via :meth:`set`).
    """

    name: str
    start: float = 0.0
    end: float = 0.0
    tags: dict[str, object] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    status: str = "ok"

    @classmethod
    def begin(cls, name: str, **tags: object) -> "Span":
        """Open a span stamped with the wall clock, outside a tracer.

        The sanctioned way for library code (worker chunks, resource
        calls) to build a span by hand: the wall-clock read stays inside
        the observability layer, so instrumented modules never touch
        ``time.time()`` themselves.  Pair with :meth:`finish`, and only
        call on a path already guarded by an active bundle/parent span —
        unconditional construction belongs to ``tracer.span(...)``,
        which is free when disabled.
        """
        return cls(name=name, start=time.time(), tags=dict(tags))

    def finish(self, status: str | None = None) -> "Span":
        """Stamp the end time (and optionally a status); returns self."""
        if status is not None:
            self.status = status
        self.end = time.time()
        return self

    @property
    def duration(self) -> float:
        """Wall-clock seconds covered by this span."""
        return max(0.0, self.end - self.start)

    def set(self, **tags: object) -> "Span":
        """Attach tags to the span; returns the span for chaining."""
        self.tags.update(tags)
        return self

    def add(self, counter: str, value: float = 1.0) -> None:
        """Increment a per-span counter."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Nested plain-dict form (children inline)."""
        record = self._record()
        record["children"] = [child.to_dict() for child in self.children]
        return record

    def _record(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration_ms": round(self.duration * 1000.0, 3),
            "status": self.status,
            "tags": dict(self.tags),
            "counters": dict(self.counters),
        }


class _NullSpan:
    """Inert stand-in yielded by :class:`NullTracer` spans."""

    __slots__ = ()

    def set(self, **tags: object) -> "_NullSpan":
        return self

    def add(self, counter: str, value: float = 1.0) -> None:
        return None


#: The singleton inert span handed out by disabled tracers.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans; thread-safe, process-local.

    Spans opened on the same thread nest automatically (the active span
    is kept on the shared observability context stack, so instrumented
    library code can attach children without holding a tracer
    reference).  Spans built elsewhere — e.g. chunk spans measured
    inside worker processes — are grafted in with :meth:`attach`.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        return context.current_span()

    @contextlib.contextmanager
    def span(
        self, name: str, parent: Span | None = None, **tags: object
    ) -> Iterator[Span]:
        """Open a span; nests under ``parent`` or the thread's active span."""
        span = Span(name=name, start=time.time(), tags=dict(tags))
        self.attach(span, parent=parent)
        with context.use_span(span):
            try:
                yield span
            except BaseException:
                span.status = "error"
                raise
            finally:
                span.end = time.time()

    def attach(self, span: Span, parent: Span | None = None) -> None:
        """Graft a (possibly pre-built) span under ``parent``.

        With no explicit parent, the thread's active span is used; with
        neither, the span becomes a new root.
        """
        target = parent if parent is not None else context.current_span()
        if target is not None:
            with self._lock:
                target.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- output ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """Serialize the trace forest: one span per line, pre-order."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in trace_jsonl_lines(self.roots):
                handle.write(line + "\n")

    def render(self, max_children: int | None = None) -> str:
        """Human-readable tree of the trace forest."""
        return render_spans(self.roots, max_children=max_children)


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False

    roots: list[Span] = []

    def current(self) -> Span | None:
        return None

    @contextlib.contextmanager
    def span(
        self, name: str, parent: Span | None = None, **tags: object
    ) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def attach(self, span: Span, parent: Span | None = None) -> None:
        return None

    def write_jsonl(self, path: str) -> None:
        return None

    def render(self, max_children: int | None = None) -> str:
        return ""


#: Shared disabled tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()


# -- serialization helpers ---------------------------------------------------------


def trace_jsonl_lines(roots: list[Span]) -> Iterator[str]:
    """Yield one JSON line per span, pre-order, with id/parent links."""
    next_id = 0

    def emit(span: Span, parent_id: int | None) -> Iterator[str]:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        record = span._record()
        record["id"] = span_id
        record["parent"] = parent_id
        yield json.dumps(record, sort_keys=True)
        for child in span.children:
            yield from emit(child, span_id)

    for root in roots:
        yield from emit(root, None)


def load_trace(path: str) -> list[Span]:
    """Rebuild the span forest from a JSONL trace file."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            span = Span(
                name=record["name"],
                start=float(record.get("start", 0.0)),
                tags=dict(record.get("tags", {})),
                counters=dict(record.get("counters", {})),
                status=record.get("status", "ok"),
            )
            span.end = span.start + float(record.get("duration_ms", 0.0)) / 1000.0
            by_id[record["id"]] = span
            parent_id = record.get("parent")
            if parent_id is None:
                roots.append(span)
            else:
                parent = by_id.get(parent_id)
                if parent is None:
                    roots.append(span)
                else:
                    parent.children.append(span)
    return roots


def render_spans(roots: list[Span], max_children: int | None = None) -> str:
    """Render a span forest as an indented tree with durations."""
    lines: list[str] = []

    def describe(span: Span) -> str:
        parts = [f"{span.name}  {span.duration * 1000:.1f} ms"]
        if span.status != "ok":
            parts.append(f"[{span.status}]")
        if span.tags:
            tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
            parts.append(tags)
        if span.counters:
            counters = " ".join(
                f"{k}={v:g}" for k, v in sorted(span.counters.items())
            )
            parts.append(f"({counters})")
        return "  ".join(parts)

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(describe(span))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + describe(span))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = span.children
        hidden = 0
        if max_children is not None and len(children) > max_children:
            hidden = len(children) - max_children
            children = children[:max_children]
        for i, child in enumerate(children):
            last = i == len(children) - 1 and hidden == 0
            walk(child, child_prefix, last, False)
        if hidden:
            lines.append(child_prefix + f"└─ … {hidden} more span(s)")

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines)
