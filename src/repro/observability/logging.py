"""Structured logging for the library and CLI.

Every log call is an **event with fields**, not an interpolated string:

    log = get_logger(__name__)
    log.info("extract.start", dataset="SNYT", documents=1000)

The ``text`` format renders ``event key=value …`` lines for humans; the
``json`` format renders one JSON object per line for machines.  The
level comes from ``configure_logging(level=…)``, the ``REPRO_LOG_LEVEL``
environment variable, or defaults to WARNING so library users see
nothing unless they opt in.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO

#: Root logger name; every module logger is a child of this.
ROOT_LOGGER = "repro"

#: Record attribute carrying the structured field dict.
_FIELDS_ATTR = "repro_fields"


class TextFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger event key=value …`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        rendered = " ".join(f"{k}={v}" for k, v in fields.items())
        base = (
            f"{self.formatTime(record, '%H:%M:%S')} "
            f"{record.levelname:<7} {record.name} {record.getMessage()}"
        )
        if rendered:
            base = f"{base} {rendered}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def _env_level(default: int = logging.WARNING) -> int:
    """Level from ``REPRO_LOG_LEVEL`` (name or number), if set."""
    raw = os.environ.get("REPRO_LOG_LEVEL")
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    resolved = logging.getLevelName(raw.upper())
    return resolved if isinstance(resolved, int) else default


def configure_logging(
    log_format: str = "text",
    level: int | str | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install a handler on the ``repro`` root logger (idempotent).

    Parameters
    ----------
    log_format:
        ``"text"`` (human) or ``"json"`` (one object per line).
    level:
        Explicit level; None reads ``REPRO_LOG_LEVEL`` (default WARNING).
    stream:
        Destination stream (default ``sys.stderr`` — stdout stays
        reserved for program output).
    """
    if log_format not in ("text", "json"):
        raise ValueError(f"log_format must be 'text' or 'json', got {log_format!r}")
    if level is None:
        level = _env_level()
    elif isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    root.propagate = False
    formatter = JsonFormatter() if log_format == "json" else TextFormatter()
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(formatter)
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    return root


class StructuredLogger:
    """Thin wrapper turning ``log.info(event, **fields)`` into records."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def raw(self) -> logging.Logger:
        """The underlying stdlib logger."""
        return self._logger

    def _log(self, level: int, event: str, fields: dict[str, object]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={_FIELDS_ATTR: fields})

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """Structured logger scoped under the ``repro`` root.

    ``name`` is typically ``__name__``; names outside the ``repro``
    namespace are nested under it so one handler covers everything.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(name))
