"""repro.observability — tracing, metrics, and structured logging.

The pipeline is instrumented permanently; this package decides whether
the instrumentation does anything.  An :class:`Observability` bundle
pairs a :class:`~repro.observability.tracing.Tracer` with a
:class:`~repro.observability.metrics.MetricsRegistry`; the shared
:data:`DISABLED` bundle (a :class:`~repro.observability.tracing.NullTracer`
and no registry) costs one attribute lookup per probe, so leaving it
off perturbs nothing — parallel output stays bit-for-bit identical to
serial either way.

Quickstart::

    from repro.observability import Observability

    obs = Observability.enabled()
    result = repro.run(corpus, observability=obs)
    print(obs.tracer.render())
    print(obs.metrics.format_table())
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from . import context
from .logging import StructuredLogger, configure_logging, get_logger
from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry, TimerStat
from .stats import ResourceStats, SpanTimings
from .tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    load_trace,
    render_spans,
    trace_jsonl_lines,
)


class Observability:
    """A tracer plus a metrics registry, either of which may be off."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    @classmethod
    def enabled(cls) -> "Observability":
        """A live tracer and a fresh registry — full instrumentation."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    @property
    def active(self) -> bool:
        """True when any instrumentation is actually recording."""
        return self.tracer.enabled or self.metrics is not None

    @contextlib.contextmanager
    def collect(self) -> Iterator[None]:
        """Make this bundle's registry the thread's active metrics sink."""
        with context.use_metrics(self.metrics):
            yield


#: Shared no-op bundle used whenever observability is not requested.
DISABLED = Observability()


__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DISABLED",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "ResourceStats",
    "Span",
    "SpanTimings",
    "StructuredLogger",
    "TimerStat",
    "Tracer",
    "configure_logging",
    "context",
    "get_logger",
    "load_trace",
    "render_spans",
    "trace_jsonl_lines",
]
