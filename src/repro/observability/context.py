"""Thread-local observability context.

Instrumented library code (resources, the selection/hierarchy stages)
must not need a tracer or registry handle threaded through every call
signature.  Instead the pipeline — and the batch engine, per work chunk
— push the active :class:`~repro.observability.metrics.MetricsRegistry`
and the active :class:`~repro.observability.tracing.Span` onto small
thread-local stacks; leaf code reads them back with
:func:`current_metrics` / :func:`current_span`.

When nothing is pushed (observability disabled, or code running outside
the pipeline), both getters return ``None`` after a single thread-local
attribute read — that is the entire disabled-mode overhead.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .metrics import MetricsRegistry
    from .tracing import Span

_state = threading.local()


def current_metrics() -> "MetricsRegistry | None":
    """The innermost active registry on this thread, or None."""
    stack = getattr(_state, "metrics", None)
    if not stack:
        return None
    return stack[-1]


@contextlib.contextmanager
def use_metrics(registry: "MetricsRegistry | None") -> Iterator[None]:
    """Make ``registry`` the thread's active metrics sink.

    ``None`` is accepted and leaves the context unchanged, so callers
    can write ``with use_metrics(obs.metrics):`` unconditionally.
    """
    if registry is None:
        yield
        return
    stack = getattr(_state, "metrics", None)
    if stack is None:
        stack = []
        _state.metrics = stack
    stack.append(registry)
    try:
        yield
    finally:
        stack.pop()


def current_span() -> "Span | None":
    """The innermost open span on this thread, or None."""
    stack = getattr(_state, "spans", None)
    if not stack:
        return None
    return stack[-1]


@contextlib.contextmanager
def use_span(span: "Span | None") -> Iterator[None]:
    """Make ``span`` the thread's active span (None = unchanged)."""
    if span is None:
        yield
        return
    stack = getattr(_state, "spans", None)
    if stack is None:
        stack = []
        _state.spans = stack
    stack.append(span)
    try:
        yield
    finally:
        stack.pop()
