"""Result-introspection types: per-stage timings and per-resource stats.

These are the structured objects carried by
:class:`~repro.core.pipeline.FacetExtractionResult`.  They live here —
not in ``core.pipeline`` — because they are observability data, produced
by the same instrumentation that feeds the tracer and the metrics
registry.  ``repro.core.pipeline`` re-exports the old names
(``StageTimings``, the ``cache_stats`` dict) as deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tracing import Span


@dataclass
class SpanTimings:
    """Wall-clock seconds per pipeline stage (the Section V-D numbers)."""

    annotation: float = 0.0
    contextualization: float = 0.0
    selection: float = 0.0
    hierarchy: float = 0.0

    @property
    def total(self) -> float:
        return self.annotation + self.contextualization + self.selection + self.hierarchy

    def as_dict(self) -> dict[str, float]:
        return {
            "annotation": self.annotation,
            "contextualization": self.contextualization,
            "selection": self.selection,
            "hierarchy": self.hierarchy,
            "total": self.total,
        }

    @classmethod
    def from_spans(cls, roots: list[Span]) -> "SpanTimings":
        """Recover stage timings from a recorded trace forest."""
        timings = cls()
        for root in roots:
            for span in root.walk():
                stage = str(span.tags.get("stage", ""))
                if span.name.startswith("stage:"):
                    stage = span.name.split(":", 1)[1]
                if hasattr(timings, stage) and stage in (
                    "annotation",
                    "contextualization",
                    "selection",
                    "hierarchy",
                ):
                    setattr(
                        timings, stage, getattr(timings, stage) + span.duration
                    )
        return timings


@dataclass(frozen=True)
class ResourceStats:
    """Exact counter snapshot for one resource's query engine.

    ``coalesced_hits`` counts lookups answered by waiting on another
    thread's in-flight query (the single-flight coalescer) — they paid a
    wait (``coalesce_wait_seconds``) but not a backend round trip.
    ``batch_queries`` counts bulk backend calls issued by the batched
    path; each one answers many misses at once.
    """

    memory_hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    coalesced_hits: int = 0
    coalesce_wait_seconds: float = 0.0
    batch_queries: int = 0

    @property
    def hits(self) -> int:
        """Lookups that avoided a backend query (any tier, coalesced)."""
        return self.memory_hits + self.persistent_hits + self.coalesced_hits

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered without a backend round trip."""
        queries = self.queries
        return self.hits / queries if queries else 0.0

    @property
    def memory_hit_rate(self) -> float:
        """Fraction of queries answered by the in-process LRU tier."""
        queries = self.queries
        return self.memory_hits / queries if queries else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "coalesced_hits": self.coalesced_hits,
            "coalesce_wait_seconds": self.coalesce_wait_seconds,
            "batch_queries": self.batch_queries,
            "hits": self.hits,
            "queries": self.queries,
            "hit_rate": self.hit_rate,
            "memory_hit_rate": self.memory_hit_rate,
        }
