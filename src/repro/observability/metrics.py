"""Process-wide metrics: counters, gauges, timers, simple histograms.

A :class:`MetricsRegistry` is a thread-safe bag of named instruments:

* **counters** — monotonically summed floats (``increment``);
* **gauges** — last-write-wins floats (``gauge``);
* **timers** — count/total/min/max aggregates of durations
  (``record_time`` or the ``time`` context manager);
* **histograms** — fixed-bound bucket counts (``observe``), defaulting
  to latency-friendly bounds in seconds.

Registries are picklable (the lock is recreated) and **mergeable**:
the batch engine gives every work chunk its own registry and merges
them into the parent in submission order, so aggregate values never
depend on worker scheduling.
"""

from __future__ import annotations

import bisect
import contextlib
import threading
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

#: Default histogram bounds (seconds): tuned for resource-call latency.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


@dataclass
class TimerStat:
    """count/total/min/max aggregate of observed durations (seconds)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    def combine(self, other: "TimerStat") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


@dataclass
class Histogram:
    """Fixed-bound bucket counts plus sum/count of observations."""

    bounds: tuple[float, ...]
    buckets: list[int]
    count: int = 0
    total: float = 0.0

    @classmethod
    def empty(cls, bounds: Sequence[float]) -> "Histogram":
        bounds = tuple(sorted(bounds))
        return cls(bounds=bounds, buckets=[0] * (len(bounds) + 1))

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def combine(self, other: "Histogram") -> None:
        if other.bounds == self.bounds:
            for i, n in enumerate(other.buckets):
                self.buckets[i] += n
            self.count += other.count
            self.total += other.total
        else:  # differing bounds: fold via each bucket's upper bound
            for i, n in enumerate(other.buckets):
                if not n:
                    continue
                upper = (
                    other.bounds[i] if i < len(other.bounds) else float("inf")
                )
                index = bisect.bisect_left(self.bounds, upper)
                self.buckets[index] += n
            self.count += other.count
            self.total += other.total

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
        }


class MetricsRegistry:
    """Thread-safe, mergeable, picklable instrument registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------------

    def increment(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to a counter (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def record_time(self, name: str, seconds: float) -> None:
        """Fold one duration into a timer aggregate."""
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = TimerStat()
            timer.record(seconds)

    @contextlib.contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a block into the named timer."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - start)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Fold one observation into a histogram (bounds set on first use)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram.empty(buckets)
            histogram.observe(value)

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters/timers/histograms combine commutatively; gauges take
        the other registry's value (last write wins), which is why the
        batch engine merges chunk registries in **submission order** —
        the result is then independent of worker scheduling.
        """
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            timers = {k: TimerStat(**vars(v)) for k, v in other._timers.items()}
            histograms = {
                k: Histogram(
                    bounds=v.bounds,
                    buckets=list(v.buckets),
                    count=v.count,
                    total=v.total,
                )
                for k, v in other._histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            self._gauges.update(gauges)
            for name, timer in timers.items():
                mine = self._timers.get(name)
                if mine is None:
                    self._timers[name] = timer
                else:
                    mine.combine(timer)
            for name, histogram in histograms.items():
                mine = self._histograms.get(name)
                if mine is None:
                    self._histograms[name] = histogram
                else:
                    mine.combine(histogram)

    # -- introspection -----------------------------------------------------------

    @property
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._counters.items()))

    @property
    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._gauges.items()))

    @property
    def timers(self) -> dict[str, TimerStat]:
        with self._lock:
            return {k: TimerStat(**vars(v)) for k, v in sorted(self._timers.items())}

    @property
    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return {
                k: Histogram(
                    bounds=v.bounds,
                    buckets=list(v.buckets),
                    count=v.count,
                    total=v.total,
                )
                for k, v in sorted(self._histograms.items())
            }

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def timer_value(self, name: str) -> TimerStat | None:
        with self._lock:
            timer = self._timers.get(name)
            return TimerStat(**vars(timer)) if timer is not None else None

    def as_dict(self) -> dict:
        """Plain-dict dump (sorted keys) — JSON-serializable."""
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "timers": {k: v.as_dict() for k, v in self.timers.items()},
            "histograms": {k: v.as_dict() for k, v in self.histograms.items()},
        }

    def format_table(self) -> str:
        """Human-readable dump, deterministically ordered."""
        lines: list[str] = ["metrics:"]
        counters = self.counters
        if counters:
            lines.append("  counters:")
            for name, value in counters.items():
                lines.append(f"    {name:<52} {value:>12g}")
        gauges = self.gauges
        if gauges:
            lines.append("  gauges:")
            for name, value in gauges.items():
                lines.append(f"    {name:<52} {value:>12g}")
        timers = self.timers
        if timers:
            lines.append("  timers:")
            for name, timer in timers.items():
                lines.append(
                    f"    {name:<52} n={timer.count:<6} "
                    f"total={timer.total:.4f}s mean={timer.mean * 1000:.2f}ms "
                    f"max={timer.max * 1000:.2f}ms"
                )
        histograms = self.histograms
        if histograms:
            lines.append("  histograms:")
            for name, histogram in histograms.items():
                lines.append(
                    f"    {name:<52} n={histogram.count:<6} "
                    f"sum={histogram.total:.4f}"
                )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    # -- pickling (process-backed worker pools) ----------------------------------

    def __getstate__(self) -> dict:
        with self._lock:
            state = self.__dict__.copy()
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
