"""Experiment harness: regenerate every table and figure of the paper.

Each experiment has an id (``EXP-T2`` = Table II, ``EXP-F4`` = Figure 4,
...), a runner in :mod:`repro.harness.tables` / :mod:`repro.harness.figures`,
and a registry entry in :mod:`repro.harness.experiments` used by the
benchmark suite.
"""

from .tables import (
    PilotStudyResult,
    run_pilot_study,
    run_recall_table,
    run_precision_table,
)
from .figures import figure4_terms, figure5_baseline_terms
from .experiments import EXPERIMENTS, Experiment, run_experiment
from .report import build_report, write_report

__all__ = [
    "PilotStudyResult",
    "run_pilot_study",
    "run_recall_table",
    "run_precision_table",
    "figure4_terms",
    "figure5_baseline_terms",
    "EXPERIMENTS",
    "Experiment",
    "run_experiment",
    "build_report",
    "write_report",
]
