"""Runners for Figure 4 and Figure 5 of the paper.

* Figure 4 — the most frequent facet terms identified by annotators
  (anything chosen by at least two annotators on some story).
* Figure 5 — what a plain subsumption baseline extracts from the raw
  database without the expansion pipeline: high-document-frequency
  newswire filler ("year", "time", "people", ...).
"""

from __future__ import annotations

from collections import Counter

from ..config import ReproConfig
from ..corpus.datasets import DatasetName, build_corpus
from ..core.annotate import annotate_database
from ..core.subsumption import build_subsumption_hierarchy
from ..eval.goldset import build_gold_set
from ..eval.metrics import match_key


def figure4_terms(
    config: ReproConfig | None = None,
    dataset: DatasetName | str = DatasetName.SNYT,
    top_n: int = 40,
) -> list[str]:
    """Most frequently used annotator facet terms (Figure 4)."""
    config = config or ReproConfig()
    corpus = build_corpus(dataset, config)
    gold = build_gold_set(corpus, config)
    counts: Counter[str] = Counter()
    surface: dict[str, str] = {}
    for terms in gold.per_document.values():
        for term in terms:
            key = match_key(term)
            counts[key] += 1
            surface.setdefault(key, term)
    return [surface[key].lower() for key, _ in counts.most_common(top_n)]


def figure5_baseline_terms(
    config: ReproConfig | None = None,
    dataset: DatasetName | str = DatasetName.SNYT,
    top_n: int = 25,
    vocabulary_cap: int = 150,
) -> list[str]:
    """Terms a plain subsumption baseline surfaces (Figure 5).

    Without expansion, the only high-document-frequency terms in a news
    database are generic filler words, and the subsumption roots are
    exactly those — the paper's motivation for the whole pipeline.
    """
    config = config or ReproConfig()
    corpus = build_corpus(dataset, config)
    sample = corpus.documents[: config.annotated_sample_size]
    annotated = annotate_database(sample, extractors=[])
    vocabulary = annotated.vocabulary
    frequent = [
        term
        for term, _ in vocabulary.most_common(vocabulary_cap)
        if " " not in term
    ]
    doc_sets = {
        term: {
            doc_id
            for doc_id, terms in annotated.term_sets.items()
            if term in terms
        }
        for term in frequent
    }
    hierarchy = build_subsumption_hierarchy(frequent, doc_sets)
    # The baseline's facet terms: the hierarchy's highest-frequency
    # entries (roots and their immediate children).
    shallow = [t for t in hierarchy.terms() if hierarchy.depth(t) <= 1]
    ranked = sorted(shallow, key=lambda t: (-vocabulary.df(t), t))
    return ranked[:top_n]
