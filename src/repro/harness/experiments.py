"""Experiment registry: one entry per paper table/figure/section.

Used by the benchmark suite (one benchmark per experiment) and by
``examples/reproduce_paper.py``.  Each runner returns a printable
result; ``run_experiment`` executes by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..builder import FacetPipelineBuilder
from ..config import ReproConfig
from ..core.interface import FacetedInterface
from ..corpus.datasets import DatasetName, build_corpus
from ..eval.efficiency import EfficiencyStudy
from ..eval.goldset import build_gold_set
from ..eval.user_study import UserStudy
from .figures import figure4_terms, figure5_baseline_terms
from .tables import (
    gold_set_summary,
    run_pilot_study,
    run_precision_table,
    run_recall_table,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    experiment_id: str
    title: str
    runner: Callable[[ReproConfig], Any]

    def run(self, config: ReproConfig | None = None) -> Any:
        return self.runner(config or ReproConfig())


def _sensitivity(config: ReproConfig) -> dict[str, dict[int, float]]:
    """Section V-B: gold-term discovery vs annotated sample size."""
    curves = {}
    sample = config.annotated_sample_size
    checkpoints = sorted({max(10, sample // 10), sample // 2, sample})
    for dataset in DatasetName:
        corpus = build_corpus(dataset, config)
        gold = build_gold_set(corpus, config)
        curves[dataset.value] = gold.discovery_curve(checkpoints)
    return curves


def _user_study(config: ReproConfig):
    """Section V-E: the five-user browsing study."""
    builder = FacetPipelineBuilder(config)
    corpus = build_corpus(DatasetName.SNYT, config)
    result = builder.with_top_k(400).build().run(corpus.documents)
    interface = FacetedInterface.from_result(result)
    return UserStudy(interface, builder.world, config).run()


def _efficiency(config: ReproConfig):
    """Section V-D: per-stage throughput."""
    corpus = build_corpus(DatasetName.SNYT, config)
    sample = corpus.documents[: min(200, len(corpus))]
    return EfficiencyStudy(config).run(sample)


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment("EXP-T1", "Table I: pilot-study facets",
                   lambda c: run_pilot_study(c)),
        Experiment("EXP-T2", "Table II: recall on SNYT",
                   lambda c: run_recall_table(DatasetName.SNYT, c)),
        Experiment("EXP-T3", "Table III: recall on SNB",
                   lambda c: run_recall_table(DatasetName.SNB, c)),
        Experiment("EXP-T4", "Table IV: recall on MNYT",
                   lambda c: run_recall_table(DatasetName.MNYT, c)),
        Experiment("EXP-T5", "Table V: precision on SNYT",
                   lambda c: run_precision_table(DatasetName.SNYT, c)),
        Experiment("EXP-T6", "Table VI: precision on SNB",
                   lambda c: run_precision_table(DatasetName.SNB, c)),
        Experiment("EXP-T7", "Table VII: precision on MNYT",
                   lambda c: run_precision_table(DatasetName.MNYT, c)),
        Experiment("EXP-F4", "Figure 4: frequent annotator facet terms",
                   lambda c: figure4_terms(c)),
        Experiment("EXP-F5", "Figure 5: baseline subsumption terms",
                   lambda c: figure5_baseline_terms(c)),
        Experiment("EXP-GOLD", "Section V-B: gold-set sizes",
                   lambda c: gold_set_summary(c)),
        Experiment("EXP-SENS", "Section V-B: discovery sensitivity",
                   _sensitivity),
        Experiment("EXP-EFF", "Section V-D: efficiency",
                   _efficiency),
        Experiment("EXP-US", "Section V-E: user study",
                   _user_study),
    )
}


def run_experiment(experiment_id: str, config: ReproConfig | None = None) -> Any:
    """Run one experiment by id (raises KeyError for unknown ids)."""
    return EXPERIMENTS[experiment_id].run(config)
