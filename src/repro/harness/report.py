"""Assemble benchmark results into one markdown report.

``python -m repro report`` (and the benchmark suite's artifacts under
``benchmarks/results/``) feed this module: it stitches every rendered
table/figure into a single human-readable reproduction report.
"""

from __future__ import annotations

from pathlib import Path

#: Result files in paper order with display titles.
_SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_pilot_facets", "Table I — pilot-study facets"),
    ("table2_recall_snyt", "Table II — recall (SNYT)"),
    ("table3_recall_snb", "Table III — recall (SNB)"),
    ("table4_recall_mnyt", "Table IV — recall (MNYT)"),
    ("table5_precision_snyt", "Table V — precision (SNYT)"),
    ("table6_precision_snb", "Table VI — precision (SNB)"),
    ("table7_precision_mnyt", "Table VII — precision (MNYT)"),
    ("fig4_annotator_terms", "Figure 4 — frequent annotator facet terms"),
    ("fig5_baseline_subsumption", "Figure 5 — plain subsumption baseline"),
    ("gold_set_sizes", "Section V-B — gold-set sizes"),
    ("discovery_sensitivity", "Section V-B — discovery sensitivity"),
    ("efficiency", "Section V-D — efficiency"),
    ("user_study", "Section V-E — user study"),
    ("ablation_statistics", "Ablation — LLR vs chi-square"),
    ("ablation_shifts", "Ablation — shift functions"),
    ("ablation_redirects", "Ablation — redirect exploitation"),
    ("ablation_topk", "Ablation — Wikipedia Graph top-k"),
    ("ablation_scoring", "Ablation — LLR vs KL-contribution"),
)


def build_report(results_dir: str | Path) -> str:
    """Markdown report from whatever results exist in ``results_dir``."""
    results_dir = Path(results_dir)
    lines = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/`; run "
        "`pytest benchmarks/ --benchmark-only` to refresh.",
        "",
    ]
    found = 0
    for stem, title in _SECTIONS:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            continue
        found += 1
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    if not found:
        lines.append(
            "_No results found — run the benchmark suite first._"
        )
    return "\n".join(lines)


def write_report(
    results_dir: str | Path, output_path: str | Path
) -> Path:
    """Write the report to ``output_path`` and return the path."""
    output_path = Path(output_path)
    output_path.write_text(build_report(results_dir) + "\n")
    return output_path
