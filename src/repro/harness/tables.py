"""Runners for Table I (pilot study) and Tables II-VII (recall/precision).

The recall and precision grids delegate to the studies in
:mod:`repro.eval`; the pilot study reimplements Section III: a dozen
annotators tag a day of stories, and the most commonly used facets —
with their prominent sub-facets — are tallied.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..builder import FacetPipelineBuilder
from ..config import ReproConfig
from ..corpus.datasets import DatasetName, build_corpus
from ..eval.annotators import AnnotatorPool
from ..eval.goldset import build_gold_set
from ..eval.precision import PrecisionStudy
from ..eval.recall import RecallStudy, StudyMatrix
from ..kb.world import build_world

#: Students recruited for the pilot study (Section III).
PILOT_ANNOTATORS = 12


@dataclass
class PilotStudyResult:
    """Facets identified by the pilot annotators (Table I)."""

    facet_counts: Counter = field(default_factory=Counter)
    subfacet_counts: dict[str, Counter] = field(default_factory=dict)

    def top_facets(self, n: int = 8) -> list[str]:
        """Most commonly identified top-level facets."""
        return [facet for facet, _ in self.facet_counts.most_common(n)]

    def top_subfacets(self, facet: str, n: int = 1) -> list[str]:
        """Most common sub-facets below one facet."""
        counter = self.subfacet_counts.get(facet, Counter())
        return [sub for sub, _ in counter.most_common(n)]

    def format_table(self) -> str:
        """Render in the layout of Table I."""
        lines = ["Facets (pilot study)"]
        for facet in self.top_facets():
            lines.append(facet)
            for sub in self.top_subfacets(facet):
                lines.append(f",-> {sub}")
        return "\n".join(lines)


def run_pilot_study(
    config: ReproConfig | None = None,
    sample_size: int | None = None,
) -> PilotStudyResult:
    """Reproduce the Section III pilot (Table I).

    Twelve annotators tag a day's worth of stories; tallies are taken
    over the taxonomy roots their terms fall under, with sub-facet
    counts one level below each root.
    """
    config = config or ReproConfig()
    world = build_world(config)
    corpus = build_corpus(DatasetName.SNYT, config, world)
    documents = list(corpus.documents)
    if sample_size is not None:
        documents = documents[:sample_size]
    pool = AnnotatorPool(world, _pilot_config(config))
    taxonomy = world.taxonomy
    result = PilotStudyResult()
    for _doc_id, terms in pool.annotate_corpus(documents).items():
        for term in terms:
            canonical = taxonomy.canonical(term)
            if canonical is None:
                continue
            root = taxonomy.root_of(canonical)
            result.facet_counts[root] += 1
            path = taxonomy.path(canonical)
            if len(path) >= 2:
                result.subfacet_counts.setdefault(root, Counter())[path[1]] += 1
    return result


def _pilot_config(config: ReproConfig) -> ReproConfig:
    """The pilot used 12 annotators instead of the Mechanical Turk 5."""
    return ReproConfig(
        seed=config.seed,
        scale=config.scale,
        wiki_graph_top_k=config.wiki_graph_top_k,
        annotators_per_story=PILOT_ANNOTATORS,
    )


def run_recall_table(
    dataset: DatasetName | str,
    config: ReproConfig | None = None,
    builder: FacetPipelineBuilder | None = None,
) -> StudyMatrix:
    """Tables II (SNYT), III (SNB), IV (MNYT)."""
    config = config or ReproConfig()
    corpus = build_corpus(dataset, config)
    return RecallStudy(config, builder=builder).run(corpus)


def run_precision_table(
    dataset: DatasetName | str,
    config: ReproConfig | None = None,
    builder: FacetPipelineBuilder | None = None,
) -> StudyMatrix:
    """Tables V (SNYT), VI (SNB), VII (MNYT)."""
    config = config or ReproConfig()
    corpus = build_corpus(dataset, config)
    return PrecisionStudy(config, builder=builder).run(corpus)


def gold_set_summary(config: ReproConfig | None = None) -> dict[str, int]:
    """Gold facet-term counts per dataset (Section V-B: 633/756/703)."""
    config = config or ReproConfig()
    counts = {}
    for dataset in DatasetName:
        corpus = build_corpus(dataset, config)
        counts[dataset.value] = len(build_gold_set(corpus, config))
    return counts
