"""Significant-term extraction (the "Yahoo Term Extraction" stand-in).

The real service takes a document and returns "a list of significant
words or phrases"; its internals are undocumented (footnote 5 of the
paper).  We implement the standard approach such services use: tf·idf
scoring of candidate words and phrases against a background corpus,
returning the top ``max_terms``.

The paper measures the service at 2-3 seconds per document, which made
it the bottleneck of term extraction (Section V-D); the stand-in carries
that figure as :attr:`SIMULATED_LATENCY_SECONDS` so the efficiency
benchmark can model a deployment that calls the real web service.
"""

from __future__ import annotations

import math
import time

from ..corpus.document import Document
from ..text.phrases import candidate_phrases
from ..text.stopwords import is_stopword
from ..text.tokenizer import word_tokens
from ..text.vocabulary import Vocabulary
from .base import ExtractorName, TermExtractor

#: The per-document latency the paper measured for the real web service.
SIMULATED_LATENCY_SECONDS = 2.5

#: Terms returned per document.
DEFAULT_MAX_TERMS = 10


class SignificantTermsExtractor(TermExtractor):
    """tf·idf key-word/key-phrase extraction against a background corpus.

    Parameters
    ----------
    background:
        Corpus statistics for idf.  When None, idf defaults to 1 and the
        extractor degrades to pure term frequency.
    max_terms:
        Number of terms returned per document.
    simulate_latency:
        When True, ``extract`` sleeps for ``latency_seconds`` to emulate
        the remote web service (used only by the efficiency study).
    """

    name = ExtractorName.YAHOO

    def __init__(
        self,
        background: Vocabulary | None = None,
        max_terms: int = DEFAULT_MAX_TERMS,
        simulate_latency: bool = False,
        latency_seconds: float = SIMULATED_LATENCY_SECONDS,
    ) -> None:
        if max_terms <= 0:
            raise ValueError(f"max_terms must be positive, got {max_terms}")
        self._background = background
        self._max_terms = max_terms
        self._simulate_latency = simulate_latency
        self._latency_seconds = latency_seconds

    def use_background(self, vocabulary: Vocabulary) -> None:
        """Adopt corpus statistics unless an explicit background was set."""
        if self._background is None:
            self._background = vocabulary

    def _idf(self, term: str) -> float:
        if self._background is None or self._background.document_count == 0:
            return 1.0
        df = self._background.df(term)
        n = self._background.document_count
        return math.log((n + 1) / (df + 1)) + 1.0

    def extract(self, document: Document) -> list[str]:
        if self._simulate_latency:
            time.sleep(self._latency_seconds)
        counts: dict[str, int] = {}
        words = [w for w in word_tokens(document.text) if not is_stopword(w)]
        for word in words:
            counts[word] = counts.get(word, 0) + 1
        for phrase in candidate_phrases(
            document.text, max_words=3, include_unigrams=False
        ):
            counts[phrase] = counts.get(phrase, 0) + 1
        scored = [
            # Weight phrases up slightly: services like Yahoo's favour
            # multi-word key phrases over bare words.
            (term, tf * self._idf(term) * (1.3 if " " in term else 1.0))
            for term, tf in counts.items()
            if len(term) > 2
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return [term for term, _ in scored[: self._max_terms]]
