"""Significant-term extraction (the "Yahoo Term Extraction" stand-in).

The real service takes a document and returns "a list of significant
words or phrases"; its internals are undocumented (footnote 5 of the
paper).  We implement the standard approach such services use: tf·idf
scoring of candidate words and phrases against a background corpus,
returning the top ``max_terms``.

The paper measures the service at 2-3 seconds per document, which made
it the bottleneck of term extraction (Section V-D); the stand-in carries
that figure as :attr:`SIMULATED_LATENCY_SECONDS` so the efficiency
benchmark can model a deployment that calls the real web service.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable

from ..corpus.document import Document
from ..text.interning import tokenize
from ..text.phrases import candidate_phrases
from ..text.stopwords import is_stopword
from ..text.vocabulary import Vocabulary
from .base import ExtractorName, TermExtractor

#: The per-document latency the paper measured for the real web service.
SIMULATED_LATENCY_SECONDS = 2.5

#: Terms returned per document.
DEFAULT_MAX_TERMS = 10


class SignificantTermsExtractor(TermExtractor):
    """tf·idf key-word/key-phrase extraction against a background corpus.

    Parameters
    ----------
    background:
        Corpus statistics for idf.  When None, idf defaults to 1 and the
        extractor degrades to pure term frequency.
    max_terms:
        Number of terms returned per document.
    simulate_latency:
        When True, ``extract`` sleeps for ``latency_seconds`` to emulate
        the remote web service (used only by the efficiency study).
    """

    name = ExtractorName.YAHOO

    def __init__(
        self,
        background: Vocabulary | None = None,
        max_terms: int = DEFAULT_MAX_TERMS,
        simulate_latency: bool = False,
        latency_seconds: float = SIMULATED_LATENCY_SECONDS,
    ) -> None:
        if max_terms <= 0:
            raise ValueError(f"max_terms must be positive, got {max_terms}")
        self._background = background
        self._adopted_background = False
        self._max_terms = max_terms
        self._simulate_latency = simulate_latency
        self._latency_seconds = latency_seconds

    def use_background(self, vocabulary: Vocabulary) -> None:
        """Adopt corpus statistics unless an explicit background was set."""
        if self._background is None:
            self._background = vocabulary
            self._adopted_background = True

    def rebind_background(self, vocabulary) -> None:
        """Swap an adopted background for an equivalent statistics view.

        Only adopted backgrounds move (an explicit one is caller-owned
        configuration); the replacement must answer ``df`` and
        ``document_count`` identically, which the columnar plane's
        shared-memory view does by construction.
        """
        if self._adopted_background:
            self._background = vocabulary

    @property
    def background(self) -> Vocabulary | None:
        """The background corpus currently scoring idf (None = flat idf)."""
        return self._background

    @property
    def background_adopted(self) -> bool:
        """True when the background came from the annotated corpus itself.

        An adopted background makes extraction corpus-dependent: adding
        documents changes idf, which can reorder every document's
        terms.  The incremental pipeline checks this flag to decide
        whether cached outputs stay valid across appends.
        """
        return self._adopted_background

    def _idf(self, term: str) -> float:
        if self._background is None or self._background.document_count == 0:
            return 1.0
        df = self._background.df(term)
        n = self._background.document_count
        return math.log((n + 1) / (df + 1)) + 1.0

    def candidate_counts(self, document: Document) -> list[tuple[str, int]]:
        """Candidate ``(term, tf)`` pairs of one document, scoring input.

        This is the tokenization half of :meth:`extract` — pure in the
        document, so callers (the incremental pipeline) may cache it and
        re-run only :meth:`score_candidates` when the background corpus
        statistics change.
        """
        counts: dict[str, int] = {}
        words = [
            token.lower
            for token in tokenize(document.text)
            if not is_stopword(token.lower)
        ]
        for word in words:
            counts[word] = counts.get(word, 0) + 1
        for phrase in candidate_phrases(
            document.text, max_words=3, include_unigrams=False
        ):
            counts[phrase] = counts.get(phrase, 0) + 1
        return list(counts.items())

    def score_candidates(
        self,
        candidates: list[tuple[str, int]],
        idf: "Callable[[str], float] | None" = None,
    ) -> list[str]:
        """Rank candidate counts by tf·idf and return the top terms.

        The scoring half of :meth:`extract`; ``idf`` defaults to the
        extractor's own background statistics.  Both halves together are
        exactly :meth:`extract`, so re-scoring cached candidates against
        an updated background reproduces a fresh extraction bit for bit.
        """
        idf_of = self._idf if idf is None else idf
        scored = [
            # Weight phrases up slightly: services like Yahoo's favour
            # multi-word key phrases over bare words.
            (term, tf * idf_of(term) * (1.3 if " " in term else 1.0))
            for term, tf in candidates
            if len(term) > 2
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return [term for term, _ in scored[: self._max_terms]]

    def extract(self, document: Document) -> list[str]:
        if self._simulate_latency:
            time.sleep(self._latency_seconds)
        return self.score_candidates(self.candidate_counts(document))
