"""Extractor interface."""

from __future__ import annotations

import abc
import enum

from ..corpus.document import Document
from ..text.vocabulary import Vocabulary


class ExtractorName(enum.Enum):
    """The three extractors of Section IV-A (table column headers)."""

    NAMED_ENTITIES = "NE"
    YAHOO = "Yahoo"
    WIKIPEDIA = "Wikipedia"


class TermExtractor(abc.ABC):
    """Identifies the important terms ``E_i(d)`` of a document."""

    #: Which paper extractor this implements.
    name: ExtractorName

    @abc.abstractmethod
    def extract(self, document: Document) -> list[str]:
        """Important terms of ``document`` (surface forms, de-duplicated)."""

    def use_background(self, vocabulary: Vocabulary) -> None:
        """Offer corpus statistics to the extractor before extraction.

        The annotation pass calls this with the original database's term
        statistics; extractors that score against a background (the
        Yahoo stand-in) override it, others ignore it.
        """

    def rebind_background(self, vocabulary) -> None:
        """Swap an *adopted* background for an equivalent statistics view.

        The columnar annotation pass uses this to hand process-pool
        workers a shared-memory view of the statistics adopted via
        :meth:`use_background`, and to restore the real vocabulary once
        the pass ends.  Extractors holding an explicitly-configured
        background (and extractors without one) ignore it.
        """

    def extract_many(self, documents: list[Document]) -> dict[str, list[str]]:
        """Extract for many documents: doc_id -> terms."""
        return {doc.doc_id: self.extract(doc) for doc in documents}
