"""Rule-based named-entity extraction (the LingPipe stand-in).

Chunks runs of capitalized tokens into entity candidates, with newswire
conventions handled explicitly:

* headline-cased sentences (most words capitalized) are skipped;
* a single capitalized word at sentence start only counts when it
  reappears capitalized elsewhere in the document;
* spans of particles ("of", "van", "de") join adjacent capitalized runs
  ("Bureau of Commerce").

Like a real NE tagger — and this drives the shape of Tables II-IV —
the extractor finds **only named entities**: topical common nouns
("election", "storm") are never returned.
"""

from __future__ import annotations

from collections import Counter
from itertools import compress

from ..corpus.document import Document
from ..text.interning import TextMemo, active_memo, sentences, tokenize
from ..text.phrases import capitalized_spans, join_span
from ..text.stopwords import is_common_opener, is_stopword
from .base import ExtractorName, TermExtractor

#: Sentences with at least this fraction of capitalized words are
#: treated as headlines and skipped.
HEADLINE_CAP_RATIO = 0.7

#: Maximum tokens in a named-entity span.
MAX_SPAN_TOKENS = 6


def _is_headline(sentence: str) -> bool:
    tokens = [t for t in tokenize(sentence) if not t.is_numeric]
    if len(tokens) < 4:
        return False
    capitalized = sum(1 for t in tokens if t.is_capitalized)
    return capitalized / len(tokens) >= HEADLINE_CAP_RATIO


#: Lower-case particles that may join adjacent capitalized runs; must
#: stay equal to the set in :func:`~repro.text.phrases.capitalized_spans`.
_PARTICLES = frozenset({"of", "de", "la", "van", "von", "al", "bin", "the"})


class NamedEntityExtractor(TermExtractor):
    """Capitalization-based NE chunker."""

    name = ExtractorName.NAMED_ENTITIES

    def extract(self, document: Document) -> list[str]:
        memo = active_memo()
        if memo is not None:
            return self._extract_columnar(document, memo)
        text = document.text
        body_sentences = [s for s in sentences(text) if not _is_headline(s)]
        # Count capitalized occurrences to vet sentence-initial singletons.
        cap_counts: Counter[str] = Counter()
        for sentence in body_sentences:
            for token in tokenize(sentence):
                if token.is_capitalized:
                    cap_counts[token.text] += 1

        entities: list[str] = []
        seen: set[str] = set()
        for sentence in body_sentences:
            for span in capitalized_spans(sentence):
                if len(span) > MAX_SPAN_TOKENS:
                    continue
                surface = join_span(span)
                if len(span) == 1:
                    token = span[0]
                    if is_stopword(token.text) or len(token.text) <= 2:
                        continue
                    if is_common_opener(token.text):
                        continue
                    at_sentence_start = token.start == 0
                    if at_sentence_start and cap_counts[token.text] < 2:
                        continue
                key = surface.lower()
                if key not in seen:
                    seen.add(key)
                    entities.append(surface)
        return entities

    def _extract_columnar(
        self, document: Document, memo: TextMemo
    ) -> list[str]:
        """The plain chunker over memoized sentence columns.

        One fused sweep per sentence replaces the three token passes of
        the plain path (headline test, capitalized-occurrence count,
        span chunking); every predicate reads a precomputed column, and
        the dedup key is the join of the span's lower-cased tokens —
        ``surface.lower()`` exactly, since lower-casing distributes over
        a space join.  Same entities, same order (pinned by
        ``tests/test_columnar.py`` and the differential matrix).
        """
        body: list = []
        cap_counts: Counter[str] = Counter()
        for sentence in memo.sentences(document.text):
            columns = memo.sentence_columns(sentence)
            caps = columns.caps
            word_count = len(columns.nums) - sum(columns.nums)
            if word_count >= 4 and sum(caps) / word_count >= HEADLINE_CAP_RATIO:
                continue
            body.append(columns)
            cap_counts.update(compress(columns.texts, caps))

        entities: list[str] = []
        seen: set[str] = set()
        for columns in body:
            texts = columns.texts
            lowers = columns.lowers
            starts = columns.starts
            ends = columns.ends
            caps = columns.caps
            nums = columns.nums
            count = len(texts)
            spans: list[list[int]] = []
            current: list[int] = []
            for index, cap in enumerate(caps):
                if not current:
                    # Empty run: the adjacency test is vacuously true and
                    # the particle branch cannot fire.
                    if cap and not nums[index]:
                        current.append(index)
                    continue
                adjacent = starts[index] - ends[current[-1]] <= 1
                if cap and not nums[index] and adjacent:
                    current.append(index)
                elif (
                    adjacent
                    and lowers[index] in _PARTICLES
                    and index + 1 < count
                    and caps[index + 1]
                    and starts[index + 1] - ends[index] <= 1
                ):
                    current.append(index)
                else:
                    spans.append(current)
                    current = []
                    if cap and not nums[index]:
                        current.append(index)
            if current:
                spans.append(current)
            for span in spans:
                if len(span) > MAX_SPAN_TOKENS:
                    continue
                if len(span) == 1:
                    index = span[0]
                    if columns.stops[index] or len(texts[index]) <= 2:
                        continue
                    if is_common_opener(lowers[index]):
                        continue
                    if starts[index] == 0 and cap_counts[texts[index]] < 2:
                        continue
                key = " ".join(lowers[index] for index in span)
                if key not in seen:
                    seen.add(key)
                    entities.append(" ".join(texts[index] for index in span))
        return entities
