"""Rule-based named-entity extraction (the LingPipe stand-in).

Chunks runs of capitalized tokens into entity candidates, with newswire
conventions handled explicitly:

* headline-cased sentences (most words capitalized) are skipped;
* a single capitalized word at sentence start only counts when it
  reappears capitalized elsewhere in the document;
* spans of particles ("of", "van", "de") join adjacent capitalized runs
  ("Bureau of Commerce").

Like a real NE tagger — and this drives the shape of Tables II-IV —
the extractor finds **only named entities**: topical common nouns
("election", "storm") are never returned.
"""

from __future__ import annotations

from collections import Counter

from ..corpus.document import Document
from ..text.phrases import capitalized_spans, join_span
from ..text.stopwords import is_common_opener, is_stopword
from ..text.tokenizer import sentences, tokenize
from .base import ExtractorName, TermExtractor

#: Sentences with at least this fraction of capitalized words are
#: treated as headlines and skipped.
HEADLINE_CAP_RATIO = 0.7

#: Maximum tokens in a named-entity span.
MAX_SPAN_TOKENS = 6


def _is_headline(sentence: str) -> bool:
    tokens = [t for t in tokenize(sentence) if not t.is_numeric]
    if len(tokens) < 4:
        return False
    capitalized = sum(1 for t in tokens if t.is_capitalized)
    return capitalized / len(tokens) >= HEADLINE_CAP_RATIO


class NamedEntityExtractor(TermExtractor):
    """Capitalization-based NE chunker."""

    name = ExtractorName.NAMED_ENTITIES

    def extract(self, document: Document) -> list[str]:
        text = document.text
        body_sentences = [s for s in sentences(text) if not _is_headline(s)]
        # Count capitalized occurrences to vet sentence-initial singletons.
        cap_counts: Counter[str] = Counter()
        for sentence in body_sentences:
            for token in tokenize(sentence):
                if token.is_capitalized:
                    cap_counts[token.text] += 1

        entities: list[str] = []
        seen: set[str] = set()
        for sentence in body_sentences:
            for span in capitalized_spans(sentence):
                if len(span) > MAX_SPAN_TOKENS:
                    continue
                surface = join_span(span)
                if len(span) == 1:
                    token = span[0]
                    if is_stopword(token.text) or len(token.text) <= 2:
                        continue
                    if is_common_opener(token.text):
                        continue
                    at_sentence_start = token.start == 0
                    if at_sentence_start and cap_counts[token.text] < 2:
                        continue
                key = surface.lower()
                if key not in seen:
                    seen.add(key)
                    entities.append(surface)
        return entities
