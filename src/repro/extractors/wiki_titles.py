"""Wikipedia-title term extraction (Section IV-A, "Wikipedia Terms").

Marks a document phrase as important whenever it matches a Wikipedia
page title, picking the longest title among overlapping candidates and
following redirect pages so that name variants resolve to the canonical
entry ("Hillary Clinton" -> "Hillary Rodham Clinton").
"""

from __future__ import annotations

from ..corpus.document import Document
from ..wikipedia.database import WikipediaDatabase
from ..wikipedia.titles import TitleMatcher
from .base import ExtractorName, TermExtractor


class WikipediaTitleExtractor(TermExtractor):
    """Longest-match title extraction over the simulated snapshot."""

    name = ExtractorName.WIKIPEDIA

    def __init__(
        self, database: WikipediaDatabase, use_redirects: bool = True
    ) -> None:
        self._matcher = TitleMatcher(database, use_redirects=use_redirects)

    def extract(self, document: Document) -> list[str]:
        # The paper "marks the term" in the document, i.e. the surface
        # form; resolution to the canonical page happens inside the
        # resources that consume the term (graph, synonyms).
        surfaces: list[str] = []
        seen: set[str] = set()
        for match in self._matcher.matches(document.text):
            key = match.surface.lower()
            if key not in seen:
                seen.add(key)
                surfaces.append(match.surface)
        return surfaces
