"""Important-term extractors (Step 1 of the pipeline, Figure 1).

The paper combines three extractors, each reproduced here:

* :class:`NamedEntityExtractor` — a rule-based named-entity tagger
  standing in for LingPipe (capitalized-sequence chunking with headline
  and dateline handling);
* :class:`SignificantTermsExtractor` — a tf·idf key-phrase extractor
  standing in for the "Yahoo Term Extraction" web service, including its
  simulated per-document latency (the Section V-D bottleneck);
* :class:`WikipediaTitleExtractor` — longest-match lookup of document
  phrases against simulated Wikipedia titles and redirects.
"""

from .base import ExtractorName, TermExtractor
from .named_entities import NamedEntityExtractor
from .significant_terms import SignificantTermsExtractor
from .wiki_titles import WikipediaTitleExtractor
from .registry import build_extractor, build_extractors

__all__ = [
    "ExtractorName",
    "TermExtractor",
    "NamedEntityExtractor",
    "SignificantTermsExtractor",
    "WikipediaTitleExtractor",
    "build_extractor",
    "build_extractors",
]
