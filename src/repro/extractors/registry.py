"""Factory helpers wiring extractors to their substrates."""

from __future__ import annotations

from ..errors import ExtractionError
from ..text.vocabulary import Vocabulary
from ..wikipedia.database import WikipediaDatabase
from .base import ExtractorName, TermExtractor
from .named_entities import NamedEntityExtractor
from .significant_terms import SignificantTermsExtractor
from .wiki_titles import WikipediaTitleExtractor


def build_extractor(
    name: ExtractorName | str,
    wikipedia: WikipediaDatabase | None = None,
    background: Vocabulary | None = None,
) -> TermExtractor:
    """Build one extractor by name.

    The Wikipedia extractor requires the ``wikipedia`` snapshot; the
    Yahoo stand-in benefits from ``background`` corpus statistics.
    """
    if isinstance(name, str):
        try:
            name = ExtractorName(name)
        except ValueError as exc:
            raise ExtractionError(f"unknown extractor: {name!r}") from exc
    if name is ExtractorName.NAMED_ENTITIES:
        return NamedEntityExtractor()
    if name is ExtractorName.YAHOO:
        return SignificantTermsExtractor(background=background)
    if name is ExtractorName.WIKIPEDIA:
        if wikipedia is None:
            raise ExtractionError(
                "the Wikipedia extractor needs a WikipediaDatabase"
            )
        return WikipediaTitleExtractor(wikipedia)
    raise ExtractionError(f"unhandled extractor: {name!r}")


def build_extractors(
    names: list[ExtractorName | str],
    wikipedia: WikipediaDatabase | None = None,
    background: Vocabulary | None = None,
) -> list[TermExtractor]:
    """Build several extractors at once."""
    return [
        build_extractor(name, wikipedia=wikipedia, background=background)
        for name in names
    ]
