"""repro — reproduction of Dakka & Ipeirotis, "Automatic Extraction of
Useful Facet Hierarchies from Text Databases" (ICDE 2008).

Quickstart::

    import repro
    from repro.corpus import build_snyt

    config = repro.ReproConfig(scale=0.1)
    result = repro.run(build_snyt(config), config=config)
    for facet in result.hierarchies[:5]:
        print(facet.name, facet.root.count)

Instrumented run (trace tree + metrics)::

    obs = repro.Observability.enabled()
    result = repro.run(corpus, scale=0.1, observability=obs)
    print(obs.tracer.render())
    print(obs.metrics.format_table())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from __future__ import annotations

from .api import open_index, run, serve
from .builder import FacetPipelineBuilder
from .config import DEFAULT_CONFIG, ParallelConfig, ReproConfig, ServingConfig
from .core.interface import FacetedInterface
from .core.pipeline import FacetExtractionResult, FacetExtractor
from .observability import (
    MetricsRegistry,
    Observability,
    ResourceStats,
    SpanTimings,
    Tracer,
)

__version__ = "1.3.0"

__all__ = [
    "ReproConfig",
    "ParallelConfig",
    "ServingConfig",
    "DEFAULT_CONFIG",
    "FacetExtractor",
    "FacetExtractionResult",
    "FacetedInterface",
    "FacetPipelineBuilder",
    "MetricsRegistry",
    "Observability",
    "ResourceStats",
    "SpanTimings",
    "Tracer",
    "open_index",
    "run",
    "serve",
    "__version__",
]
