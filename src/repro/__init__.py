"""repro — reproduction of Dakka & Ipeirotis, "Automatic Extraction of
Useful Facet Hierarchies from Text Databases" (ICDE 2008).

Quickstart::

    from repro import FacetPipelineBuilder
    from repro.config import ReproConfig
    from repro.corpus import build_snyt

    config = ReproConfig(scale=0.1)
    corpus = build_snyt(config)
    result = FacetPipelineBuilder(config).build().run(corpus.documents)
    for facet in result.hierarchies[:5]:
        print(facet.name, facet.root.count)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from __future__ import annotations

from .config import DEFAULT_CONFIG, ParallelConfig, ReproConfig
from .core.pipeline import FacetExtractionResult, FacetExtractor
from .core.interface import FacetedInterface
from .builder import FacetPipelineBuilder

__version__ = "1.1.0"

__all__ = [
    "ReproConfig",
    "ParallelConfig",
    "DEFAULT_CONFIG",
    "FacetExtractor",
    "FacetExtractionResult",
    "FacetedInterface",
    "FacetPipelineBuilder",
    "__version__",
]
