"""Synsets for the mini WordNet."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Synset:
    """A sense of a word with a pointer to its hypernym synset.

    ``lemma`` is the head word of the synset; ``hypernym`` names the
    lemma of the parent synset (None at the top of a chain).  A word may
    have several synsets (senses); lookups traverse all of them.
    """

    lemma: str
    hypernym: str | None = None
    sense: int = 1

    @property
    def key(self) -> str:
        """Unique synset identifier, e.g. ``"bank.n.2"``."""
        return f"{self.lemma}.n.{self.sense}"
