"""The mini WordNet lexicon and its builder.

Two layers of hypernym chains:

* a **hand-written core** for role nouns and newswire filler
  ("president -> leaders -> people", "year -> time period ->
  abstraction"), and
* **topic-derived chains**: every topic vocabulary word gains a sense
  whose hypernym chain climbs from the topic's primary facet term up its
  taxonomy path ("inning -> sports -> event").

Only single lower-case common nouns are covered — named entities and
multi-word phrases are deliberately absent, mirroring the coverage gap
of the real WordNet that the paper reports.
"""

from __future__ import annotations

from collections import defaultdict

from ..kb.world import World
from .synset import Synset

#: Hand-written hypernym chains (word -> chain bottom-up).
_CORE_CHAINS: dict[str, tuple[str, ...]] = {
    # Roles and people.
    "president": ("leaders", "people"),
    "minister": ("leaders", "people"),
    "senator": ("political leaders", "leaders", "people"),
    "governor": ("political leaders", "leaders", "people"),
    "executive": ("business leaders", "leaders", "people"),
    "chief": ("business leaders", "leaders", "people"),
    "commander": ("military leaders", "leaders", "people"),
    "player": ("athletes", "people"),
    "singer": ("musicians", "artists", "people"),
    "author": ("writers", "artists", "people"),
    "doctors": ("people",),
    "voter": ("people",),
    "candidate": ("people",),
    "journalist": ("journalists", "people"),
    "clergy": ("religious leaders", "leaders", "people"),
    # Institutions and things.
    "company": ("corporations", "markets"),
    "team": ("sports", "event"),
    "church": ("religion", "social phenomenon"),
    "school": ("schools", "education", "social phenomenon"),
    "hospital": ("hospitals", "institutes"),
    "university": ("universities", "institutes"),
    "court": ("courts", "institutes"),
    "museum": ("museums", "institutes"),
    # Phenomena.
    "storm": ("storms", "weather", "nature"),
    "hurricane": ("hurricanes", "natural disasters", "event"),
    "earthquake": ("earthquakes", "natural disasters", "event"),
    "flood": ("floods", "natural disasters", "event"),
    "drought": ("drought", "weather", "nature"),
    "virus": ("epidemics", "health", "social phenomenon"),
    "disease": ("health", "social phenomenon"),
    "vaccine": ("medicine", "health", "social phenomenon"),
    "election": ("elections", "political events", "event"),
    "summit": ("summits", "political events", "event"),
    "treaty": ("diplomacy", "politics", "social phenomenon"),
    "war": ("war", "conflicts", "event"),
    "attack": ("violence", "crime", "social phenomenon"),
    "robbery": ("crime", "social phenomenon"),
    "merger": ("mergers", "business", "markets"),
    "shares": ("stock market", "financial markets", "markets"),
    "mortgage": ("real estate", "economy", "markets"),
    "software": ("computers", "technology", "social phenomenon"),
    "website": ("internet", "technology", "social phenomenon"),
    "album": ("music", "culture", "social phenomenon"),
    "film": ("film", "culture", "social phenomenon"),
    "movie": ("film", "culture", "social phenomenon"),
    "novel": ("literature", "culture", "social phenomenon"),
    "emissions": ("pollution", "environment", "nature"),
    "climate": ("climate change", "environment", "nature"),
    "habitat": ("environment", "nature"),
    "anniversary": ("anniversaries", "history"),
    "memorial": ("history",),
    # Generic newswire filler: neutral, non-facet hypernyms.
    "year": ("time period", "abstraction"),
    "month": ("time period", "abstraction"),
    "week": ("time period", "abstraction"),
    "time": ("abstraction",),
    "people": ("group",),
    "state": ("region", "location"),
    "work": ("activity",),
    "home": ("building", "artifact"),
    "report": ("document", "artifact"),
    "game": ("activity",),
    "million": ("number", "abstraction"),
    "percent": ("proportion", "abstraction"),
    "help": ("activity",),
    "plan": ("idea", "abstraction"),
    "house": ("building", "artifact"),
    "world": ("location",),
    "call": ("communication", "abstraction"),
    "thing": ("entity",),
}


class Lexicon:
    """Word -> synsets table with chain traversal."""

    def __init__(self) -> None:
        self._senses: dict[str, list[Synset]] = defaultdict(list)
        self._chains: dict[str, tuple[str, ...]] = {}

    def add_chain(self, word: str, chain: tuple[str, ...]) -> None:
        """Register one sense of ``word`` with its bottom-up chain."""
        word = word.lower()
        for existing in self._senses[word]:
            if self._chains[existing.key] == chain:
                return
        sense = len(self._senses[word]) + 1
        synset = Synset(
            lemma=word,
            hypernym=chain[0] if chain else None,
            sense=sense,
        )
        self._senses[word].append(synset)
        self._chains[synset.key] = chain

    def synsets(self, word: str) -> list[Synset]:
        """All senses of ``word`` (empty for unknown words and phrases)."""
        if " " in word:
            return []  # no phrase coverage, as in the paper's account
        return list(self._senses.get(word.lower(), ()))

    def chain(self, synset: Synset) -> tuple[str, ...]:
        """Bottom-up hypernym chain of a synset."""
        return self._chains.get(synset.key, ())

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._senses

    def __len__(self) -> int:
        return len(self._senses)

    def words(self) -> tuple[str, ...]:
        return tuple(self._senses)


def build_lexicon(world: World) -> Lexicon:
    """Build the lexicon: hand-written core plus derived chains.

    Three derived layers, mirroring the real WordNet's breadth:

    * every topic vocabulary word gets one sense per topic facet term
      (cycled, so the topic's whole facet neighbourhood is reachable);
    * every *single-word* taxonomy term gets a sense whose chain climbs
      its own taxonomy path ("baseball -> sports -> event");
    * geographic taxonomy terms get instance chains ("france ->
      europe -> location") — the real WordNet does contain countries,
      even though it lacks people and organizations.
    """
    lexicon = Lexicon()
    for word, chain in _CORE_CHAINS.items():
        lexicon.add_chain(word, chain)
    taxonomy = world.taxonomy
    for topic in world.topics:
        anchors = topic.facet_terms
        for index, word in enumerate(topic.vocabulary):
            if " " in word:
                continue
            anchor = anchors[index % len(anchors)]
            path = taxonomy.path(anchor)  # root ... anchor
            chain = tuple(term.lower() for term in reversed(path))
            lexicon.add_chain(word, chain)
    for term in taxonomy.terms():
        if " " in term:
            continue
        path = taxonomy.path(term)
        if len(path) < 2:
            continue
        chain = tuple(t.lower() for t in reversed(path[:-1]))
        lexicon.add_chain(term.lower(), chain)
    return lexicon
