"""Hypernym lookup over the mini WordNet lexicon."""

from __future__ import annotations

from .lexicon import Lexicon


class HypernymLookup:
    """Query interface used by the WordNet context resource."""

    def __init__(self, lexicon: Lexicon) -> None:
        self._lexicon = lexicon

    def hypernyms(self, term: str, max_depth: int | None = None) -> list[str]:
        """Hypernyms of ``term`` across all senses, most specific first.

        Returns an empty list for unknown words, named entities, and
        phrases (the coverage gap the paper attributes to WordNet).
        ``max_depth`` limits how far up each chain to climb.
        """
        results: list[str] = []
        seen: set[str] = set()
        for synset in self._lexicon.synsets(term):
            chain = self._lexicon.chain(synset)
            if max_depth is not None:
                chain = chain[:max_depth]
            for hypernym in chain:
                if hypernym not in seen:
                    seen.add(hypernym)
                    results.append(hypernym)
        return results

    def hypernyms_many(
        self, terms: list[str], max_depth: int | None = None
    ) -> list[list[str]]:
        """Bulk :meth:`hypernyms`, one chain list per input term.

        Synset chains are memoized across the batch, so terms sharing
        senses (or repeated terms) climb each chain once.
        """
        chains: dict[str, tuple[str, ...]] = {}
        answers: list[list[str]] = []
        for term in terms:
            results: list[str] = []
            seen: set[str] = set()
            for synset in self._lexicon.synsets(term):
                chain = chains.get(synset.key)
                if chain is None:
                    chain = chains[synset.key] = self._lexicon.chain(synset)
                if max_depth is not None:
                    chain = chain[:max_depth]
                for hypernym in chain:
                    if hypernym not in seen:
                        seen.add(hypernym)
                        results.append(hypernym)
            answers.append(results)
        return answers

    def covers(self, term: str) -> bool:
        """True when the lexicon has at least one sense for ``term``."""
        return bool(self._lexicon.synsets(term))
