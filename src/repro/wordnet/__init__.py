"""Mini WordNet: synsets with hypernym chains for common nouns.

Stands in for the real WordNet (Fellbaum, 1998) used by the paper's
"WordNet Hypernyms" context resource.  Faithful to the original's
behaviour profile as the paper characterizes it:

* hypernyms are high-precision generalizations that "naturally form a
  hierarchy" (the highest-precision resource in Tables V-VII);
* coverage is limited to **single common nouns** — named entities and
  noun phrases are absent, which is why the paper reports very low
  recall when WordNet is paired with a named-entity extractor.
"""

from .synset import Synset
from .lexicon import Lexicon, build_lexicon
from .hypernyms import HypernymLookup

__all__ = ["Synset", "Lexicon", "build_lexicon", "HypernymLookup"]
